//! Epoch-size tuning: the Fig. 11 / Fig. 12 trade-off as a user-facing
//! workflow.
//!
//! Larger epochs let more stores coalesce in the cache before the
//! flush (fewer persists), but very large epochs batch the write
//! traffic into bursts that queue at the memory controller. This
//! example sweeps the epoch size for one workload and reports both
//! PPKI and runtime so the knee is visible.
//!
//! ```text
//! cargo run --release --example epoch_tuning
//! ```

use plp::core::{run_benchmark, SystemConfig, UpdateScheme};
use plp::trace::spec;

fn main() {
    let profile = spec::benchmark("gamess").expect("known benchmark");
    let instructions = 300_000;

    let baseline = run_benchmark(
        &profile,
        &SystemConfig::for_scheme(UpdateScheme::SecureWb),
        instructions,
        11,
    );

    println!(
        "epoch-size sweep for {} under the coalescing scheme",
        profile.name
    );
    println!();
    println!(
        "{:>6} {:>8} {:>8} {:>9} {:>12}",
        "epoch", "ppki", "norm", "epochs", "wpq-stall"
    );
    let mut best = (0usize, f64::INFINITY);
    for epoch in [4usize, 8, 16, 32, 64, 128, 256] {
        let mut cfg = SystemConfig::for_scheme(UpdateScheme::Coalescing);
        cfg.epoch_size = epoch;
        let r = run_benchmark(&profile, &cfg, instructions, 11);
        let norm = r.normalized_to(&baseline);
        if norm < best.1 {
            best = (epoch, norm);
        }
        println!(
            "{:>6} {:>8.2} {:>8.3} {:>9} {:>12}",
            epoch,
            r.persist_ppki(),
            norm,
            r.epochs,
            r.wpq_stall_cycles
        );
    }
    println!();
    if best.0 < 256 {
        println!(
            "PPKI falls monotonically with epoch size, but runtime does not:\n\
             the sweet spot here is epoch {} ({:.3}x baseline). The paper makes\n\
             the same observation at epoch 128 vs 256 for gamess/milc/zeusmp.",
            best.0, best.1
        );
    } else {
        println!(
            "PPKI falls monotonically with epoch size; note the WPQ stall\n\
             column exploding at large epochs — the write-traffic batching\n\
             that eventually turns runtime back up (the paper sees the\n\
             upturn at epoch 256 for gamess/milc/zeusmp on full-length runs)."
        );
    }
}
