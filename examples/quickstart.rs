//! Quickstart: simulate one benchmark under the paper's best scheme
//! and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use plp::core::{run_benchmark, SystemConfig, UpdateScheme};
use plp::trace::spec;

fn main() {
    // Pick a workload calibrated to the paper's Table V.
    let profile = spec::benchmark("gcc").expect("gcc is a known benchmark");

    // Baseline: a secure processor with write-back caches and no
    // persistency support (the paper's normalization point).
    let baseline = run_benchmark(
        &profile,
        &SystemConfig::for_scheme(UpdateScheme::SecureWb),
        200_000,
        42,
    );

    // The paper's best scheme: epoch persistency with out-of-order BMT
    // updates and LCA coalescing.
    let coalescing = run_benchmark(
        &profile,
        &SystemConfig::for_scheme(UpdateScheme::Coalescing),
        200_000,
        42,
    );

    println!("workload: {} (baseline IPC {:.2})", profile.name, profile.base_ipc);
    println!();
    println!("secure_WB : {baseline}");
    println!("coalescing: {coalescing}");
    println!();
    println!(
        "crash-recoverable persistency overhead: {:.1}%",
        (coalescing.normalized_to(&baseline) - 1.0) * 100.0
    );
    println!(
        "persists: {} across {} epochs ({:.2} per kilo-instruction)",
        coalescing.persists,
        coalescing.epochs,
        coalescing.persist_ppki()
    );
    println!(
        "BMT node updates: {} ({} saved by coalescing)",
        coalescing.engine.node_updates, coalescing.coalesced_saved_updates
    );
}
