//! Replay-attack demo: why counters need an integrity tree at all.
//!
//! The threat model (§II) gives the adversary full physical access to
//! NVMM. Suppose they snapshot a block's *entire* consistent tuple —
//! ciphertext, MAC **and** counter block — and later write the old
//! tuple back. The stateful MAC verifies (it is a genuine old tuple!),
//! and decryption yields a valid old plaintext. Only the Bonsai Merkle
//! Tree catches the replay: the persisted on-chip root no longer
//! matches a tree rebuilt over the (rolled-back) counters.
//!
//! ```text
//! cargo run --release --example replay_attack
//! ```

use plp::core::{run_with_crash, RecoveryChecker, SystemConfig, UpdateScheme};
use plp::trace::{spec, TraceGenerator};

fn main() {
    let profile = spec::benchmark("milc").expect("known benchmark");
    let mut cfg = SystemConfig::for_scheme(UpdateScheme::Sp);
    cfg.record_persists = true;
    let trace = TraceGenerator::new(profile.clone(), 4).generate(12_000);
    let (report, image, expected) = run_with_crash(&cfg, profile.base_ipc, &trace, None);
    let checker = RecoveryChecker::new(cfg.bmt, cfg.key);

    println!("clean shutdown: {}", checker.check(&image, &expected));
    println!();

    // Find a block persisted at least twice; the attacker replays its
    // first (older, fully consistent) tuple.
    let victim = report
        .records
        .iter()
        .find(|early| {
            report
                .records
                .iter()
                .filter(|r| r.addr == early.addr)
                .count()
                >= 2
        })
        .expect("some block is persisted twice");
    let old = victim.clone();
    println!(
        "adversary replays {}'s old tuple at {} (counter γ rolled back)",
        old.id, old.addr
    );

    let mut attacked = image.clone();
    attacked.data.insert(old.addr, old.ciphertext);
    attacked.macs.insert(old.addr, old.mac);
    attacked
        .counters
        .insert(old.addr.page().index(), old.counters_after.clone());

    let verdict = checker.check(&attacked, &expected);
    println!("after replay: {verdict}");
    assert!(verdict.bmt_failure, "the BMT must catch the replay");

    // Show why the MAC alone is not enough: verify the replayed tuple
    // in isolation — it passes, because it is internally consistent.
    let gamma = old.counters_after.value_for(old.addr);
    let mac_engine = plp::crypto::MacEngine::new(cfg.key);
    println!(
        "stateful MAC on the replayed tuple alone: {}",
        if mac_engine.verify(&old.ciphertext, old.addr, gamma, old.mac) {
            "VERIFIES (replay is invisible to the MAC)"
        } else {
            "fails"
        }
    );
    println!();
    println!(
        "this is §II's argument in running code: stateful MACs stop spoofing\n\
         and splicing, but only the tree root — kept in on-chip persistent\n\
         storage, updated in persist order (Invariant 2) — stops replay."
    );

    // And the crash-recovery cost model for this image:
    let cost = checker.recovery_cost(&image, &expected);
    println!();
    println!(
        "recovery pass for this image: {} counter blocks, {} tree hashes,\n\
         {} MAC checks (~{} cycles at a 40-cycle hash unit)",
        cost.counter_blocks,
        cost.hash_computations,
        cost.mac_verifications,
        cost.estimated_cycles(40)
    );
}
