//! Scheme shoot-out on a custom workload: a durable transaction log.
//!
//! The paper's introduction motivates secure persistent memory with
//! applications that keep crash-recoverable data structures directly
//! in memory. This example models one: an append-mostly transaction
//! log (highly sequential persists, small hot index that is re-written
//! constantly) built with [`plp::trace::WorkloadProfile::builder`],
//! then compares all six update schemes on it.
//!
//! ```text
//! cargo run --release --example txlog_shootout
//! ```

use plp::core::{run_benchmark, SystemConfig, UpdateScheme};
use plp::trace::WorkloadProfile;

fn main() {
    // A transaction-log engine: ~40 persisted stores per kilo-
    // instruction (log records + index updates), very high spatial
    // locality (appends), a small stack share, and a log window of
    // ~2000 pages (8 MB).
    let txlog = WorkloadProfile::builder("txlog")
        .base_ipc(1.2)
        .store_ppki(70.0, 40.0)
        .load_ppki(120.0)
        .locality(0.45, 2048, 24.0)
        .build();

    let instructions = 300_000;
    let baseline = run_benchmark(
        &txlog,
        &SystemConfig::for_scheme(UpdateScheme::SecureWb),
        instructions,
        3,
    );

    println!("workload: durable transaction log ({} instructions)", instructions);
    println!();
    println!(
        "{:<12} {:>10} {:>8} {:>9} {:>12} {:>10}",
        "scheme", "cycles", "norm", "persists", "node-updates", "wpq-stall"
    );
    println!(
        "{:<12} {:>10} {:>8} {:>9} {:>12} {:>10}",
        "secure_WB",
        baseline.total_cycles.get(),
        "1.00",
        baseline.persists,
        baseline.engine.node_updates,
        baseline.wpq_stall_cycles
    );
    for scheme in [
        UpdateScheme::Unordered,
        UpdateScheme::Sp,
        UpdateScheme::Pipeline,
        UpdateScheme::O3,
        UpdateScheme::Coalescing,
    ] {
        let r = run_benchmark(
            &txlog,
            &SystemConfig::for_scheme(scheme),
            instructions,
            3,
        );
        println!(
            "{:<12} {:>10} {:>8.2} {:>9} {:>12} {:>10}",
            scheme.name(),
            r.total_cycles.get(),
            r.normalized_to(&baseline),
            r.persists,
            r.engine.node_updates,
            r.wpq_stall_cycles
        );
    }
    println!();
    println!(
        "appends coalesce beautifully: within an epoch the log tail's pages\n\
         share low LCAs, so the coalescing engine strips most interior BMT\n\
         updates while keeping strict epoch ordering for the recovery observer."
    );
}
