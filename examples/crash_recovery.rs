//! Crash recovery demo: the difference between an engine that obeys
//! the paper's invariants (sp) and one that does not (unordered).
//!
//! A workload runs, power fails at a series of arbitrary points, and
//! each time the recovery procedure (1) recomputes the BMT root over
//! the persisted counters, (2) verifies every expected block's
//! stateful MAC and (3) decrypts and compares plaintexts.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use plp::core::{
    run_with_crash, ObserverExpectation, PersistImage, RecoveryChecker, SystemConfig,
    UpdateScheme,
};
use plp::events::Cycle;
use plp::trace::{spec, TraceGenerator};

fn main() {
    let profile = spec::benchmark("milc").expect("known benchmark");
    let trace = TraceGenerator::new(profile.clone(), 9).generate(15_000);

    for scheme in [UpdateScheme::Sp, UpdateScheme::Unordered] {
        let mut cfg = SystemConfig::for_scheme(scheme);
        cfg.record_persists = true;
        let (report, _, _) = run_with_crash(&cfg, profile.base_ipc, &trace, None);
        let checker = RecoveryChecker::new(cfg.bmt, cfg.key);

        // Crash at 16 points spread across the run.
        let span = report.total_cycles.get().max(1);
        let mut clean = 0;
        let mut failures = Vec::new();
        for k in 1..=16u64 {
            let t = Cycle::new(span * k / 16);
            let image = PersistImage::at_time(&report.records, t, cfg.bmt, cfg.key);
            let expected = ObserverExpectation::at_time(&report.records, t);
            let verdict = checker.check(&image, &expected);
            if verdict.is_clean() {
                clean += 1;
            } else {
                failures.push((t, verdict));
            }
        }

        println!("scheme {:<10} -> {clean}/16 crash points recover cleanly", scheme.name());
        for (t, v) in failures.iter().take(3) {
            println!("   crash at {t}: {v}");
        }
        if failures.len() > 3 {
            println!("   ... and {} more failing crash points", failures.len() - 3);
        }
        println!();
    }

    println!(
        "sp enforces Invariants 1 and 2 through the 2-step-persist WPQ, so every\n\
         crash point recovers; unordered persists tuple components independently\n\
         and the BMT root out of order, so some crash windows are torn — exactly\n\
         the paper's argument for why prior work under-estimated persistency cost."
    );
}
