#!/usr/bin/env bash
# Full verification gate: release build, the whole test suite, clippy
# with warnings promoted to errors, and a parallel smoke pass that
# regenerates every paper artefact through the run matrix. Run from
# the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

# Repo-wide custom lint pass: persist-math cast hygiene, no panics in
# library code, exhaustive UpdateScheme matches, banned nondeterminism.
# Writes the machine-readable report consumed by results/analysis.json
# consumers; any violation fails the gate with a per-rule summary.
cargo run -q -p plp-analyze --bin plp-lint -- --json results/analysis.json

# Smoke: every experiment spec end-to-end at reduced instruction count,
# uncached so it always exercises the simulator, parallel so it also
# exercises the worker pool. Byte-determinism of the output against a
# serial run is covered by crates/bench/tests/determinism.rs.
cargo run --release -q -p plp-bench --bin all -- 10000 7 --no-cache > /dev/null

echo "verify: OK"
