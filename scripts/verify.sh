#!/usr/bin/env bash
# Full verification gate: release build, the whole test suite, clippy
# with warnings promoted to errors, and a parallel smoke pass that
# regenerates every paper artefact through the run matrix. Run from
# the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Lint self-test: the fixture corpus under crates/analyze/tests/
# fixtures must match exactly — every fire/ mutant produces its
# seeded //~ ERROR markers (engine-contract, failpoint-coverage,
# shard-escape, narrowing, stale-allow, lexer modes) and every clean/
# fixture lints silent. This proves the semantic passes actually fire
# before we trust a clean repo-wide run below.
./target/release/plp-lint --self-test crates/analyze/tests/fixtures || {
  echo "verify: plp-lint fixture self-test failed"; exit 1
}

# Repo-wide custom lint pass: CFG/dataflow-backed persist-order
# contract on the engines, failpoint coverage of the persist drivers,
# shard-handle escape analysis, value-range-proved cast hygiene, the
# lexical rules, and the stale-allow audit. Writes the schema-2
# machine report; any violation fails the gate with a per-rule
# summary. The whole-workspace analysis must finish inside a 10s
# budget — it runs on every verify, so it has to stay cheap.
lint_t0=$(date +%s)
./target/release/plp-lint --json results/analysis.json
lint_t1=$(date +%s)
if [ $((lint_t1 - lint_t0)) -gt 10 ]; then
  echo "verify: plp-lint exceeded its 10s wall-clock budget ($((lint_t1 - lint_t0))s)"; exit 1
fi
grep -q '"schema": 2' results/analysis.json || {
  echo "verify: results/analysis.json is not schema 2"; exit 1
}
grep -q '"cfg_blocks":' results/analysis.json || {
  echo "verify: results/analysis.json lacks analysis-depth counters"; exit 1
}

# Smoke: every experiment spec end-to-end at reduced instruction count,
# uncached so it always exercises the simulator, parallel so it also
# exercises the worker pool. Byte-determinism of the output against a
# serial run is covered by crates/bench/tests/determinism.rs.
clean_out=$(mktemp)
cargo run --release -q -p plp-bench --bin all -- 10000 7 --no-cache > "$clean_out"

# Chaos smoke gate: the same sweep under a deterministic fault plan
# (worker panics, stalls, cache truncation/bit-flips/IO errors, seeded
# by 0xC0FFEE) must exit 0 — every fault recovered — with stdout
# byte-identical to the clean run. Running from a throwaway directory
# keeps planted cache corruption away from the real results/cache.
chaos_out=$(mktemp)
chaos_dir=$(mktemp -d)
repo_root=$(pwd)
(cd "$chaos_dir" && "$repo_root/target/release/all" 10000 7 --chaos 0xC0FFEE 2> chaos.err > "$chaos_out") || {
  echo "verify: chaos sweep failed (exit $?)"; cat "$chaos_dir/chaos.err" >&2; exit 1
}
cmp "$clean_out" "$chaos_out" || {
  echo "verify: chaos sweep stdout diverged from the clean run"; exit 1
}
rm -rf "$clean_out" "$chaos_out" "$chaos_dir"

# Sharded-topology gate. Three parts:
#   1. `all --streams 1 --shards 1` must be stdout byte-identical to
#      the plain run — the unit topology IS the unsharded simulator.
#   2. A reduced 4-streams x 4-shards sweep (sanitizer on, per-spec
#      default) must exit 0: every scheme's cross-shard run upholds
#      stream persist-order and root-of-roots epoch ordering.
#   3. The same sharded sweep under the chaos plan must still exit 0
#      with byte-identical stdout (supervisor recovery is
#      topology-blind).
# The shard_sweep binary additionally mutation-tests the new sanitizer
# rules and records per-shard throughput under results/.
unit_out=$(mktemp)
shard_out=$(mktemp)
shard_chaos_out=$(mktemp)
shard_dir=$(mktemp -d)
repo_root=$(pwd)
cargo run --release -q -p plp-bench --bin all -- 10000 7 --no-cache --streams 1 --shards 1 > "$unit_out"
clean_ref=$(mktemp)
cargo run --release -q -p plp-bench --bin all -- 10000 7 --no-cache > "$clean_ref"
cmp "$clean_ref" "$unit_out" || {
  echo "verify: --streams 1 --shards 1 stdout diverged from the unsharded run"; exit 1
}
(cd "$shard_dir" && "$repo_root/target/release/all" 6000 7 --streams 4 --shards 4 2> shard.err > "$shard_out") || {
  echo "verify: sharded 4x4 sweep failed (exit $?)"; cat "$shard_dir/shard.err" >&2; exit 1
}
(cd "$shard_dir" && "$repo_root/target/release/all" 6000 7 --streams 4 --shards 4 --chaos 0xC0FFEE 2> shard_chaos.err > "$shard_chaos_out") || {
  echo "verify: sharded 4x4 chaos sweep failed (exit $?)"; cat "$shard_dir/shard_chaos.err" >&2; exit 1
}
cmp "$shard_out" "$shard_chaos_out" || {
  echo "verify: sharded chaos sweep stdout diverged from the clean sharded run"; exit 1
}
./target/release/shard_sweep 6000 7 > /dev/null || {
  echo "verify: shard_sweep (scaling table + cross-shard mutation checks) failed"; exit 1
}
rm -rf "$unit_out" "$clean_ref" "$shard_out" "$shard_chaos_out" "$shard_dir"

# Crash-harness gate: a reduced real-process SIGKILL sweep (two
# failpoints, one hit, all seven swept schemes — the five correct
# ones plus the unordered strawman and the detect-only triad_nvm).
# Children are forked,
# killed mid-persist, and their file-backed device images replayed;
# the binary exits non-zero unless every correct engine recovers
# Clean/Repaired with model-matching counters and the unordered
# strawman demonstrably (but detectably) loses data. Also GCs stale
# crash images and quarantined cache entries. See DESIGN.md §11.
./target/release/crash_harness 8000 7 --points mid-tuple,post-root-seal --hits 5 > /dev/null || {
  echo "verify: crash-harness SIGKILL sweep failed"; exit 1
}

# Nested-crash (double-kill) gate: kill a run, kill its recovery at
# every recovery failpoint, and require a third process to recover
# completely — correct schemes counter-exact, the unordered strawman
# re-detecting exactly its original loss, every recovery failpoint
# verifiably fired, and the complete-id set monotone across the
# nesting. See DESIGN.md §14.
./target/release/crash_harness 8000 7 --double-kill --points mid-tuple > /dev/null || {
  echo "verify: double-kill nested-crash sweep failed"; exit 1
}

# Process-isolation gate: a reduced sweep where every run re-execs as
# its own rlimited child returning its report over a checksummed pipe
# frame must be stdout byte-identical to the in-process run. See
# DESIGN.md §14; chaos parity and the OOM verdict are covered by
# crates/bench/tests/isolation.rs.
iso_out=$(mktemp)
iso_ref=$(mktemp)
cargo run --release -q -p plp-bench --bin all -- 6000 7 --no-cache > "$iso_ref"
cargo run --release -q -p plp-bench --bin all -- 6000 7 --no-cache --isolate > "$iso_out" || {
  echo "verify: isolated sweep failed (exit $?)"; exit 1
}
cmp "$iso_ref" "$iso_out" || {
  echo "verify: isolated sweep stdout diverged from the in-process run"; exit 1
}
rm -f "$iso_out" "$iso_ref"

# No-kill identity: attaching the file-backed medium must not perturb
# the simulation — a child run with an image is stdout byte-identical
# to the same run purely in memory.
id_img="$(mktemp -u).img"
id_a=$(./target/release/crash_harness --child --scheme sp --benchmark gcc --instructions 4000 --seed 7)
id_b=$(./target/release/crash_harness --child --scheme sp --benchmark gcc --instructions 4000 --seed 7 --image "$id_img")
rm -f "$id_img"
[ "$id_a" = "$id_b" ] || {
  echo "verify: file-backed child stdout diverged from the in-memory run"; exit 1
}

# Perf gate: the hotpath microbench writes BENCH_hotpath.json and
# fails on a >10% per-scheme regression of the load-normalized
# relative cost (host ns/persist divided by a pure-CPU calibration
# workload timed around the same sample) against the committed
# baseline. Raw ns and wall-clock fields are informational — they
# track machine load — only relative_cost gates. The committed
# baseline is an envelope: per-scheme max of several fresh runs,
# inflated 1.15x, so ambient contention cannot trip the gate while a
# real hot-path regression (e.g. reverting the BMT arena to a map,
# ~2x) still does. Refresh it by running
#   target/release/hotpath --out /tmp/hp_N.json
# a few times and committing the per-scheme max * 1.15.
./target/release/hotpath --out BENCH_hotpath.json \
  --check results/BENCH_hotpath_baseline.json || {
  echo "verify: hotpath perf gate failed"; exit 1
}

# Recovery-axis gate: the runtime-vs-recovery Pareto sweep crashes
# every scheme at enumerated cut points across three tree heights and
# times full-device recovery. The simulation is fully deterministic,
# so the rendered table must be byte-identical to the committed
# results/recovery_pareto.txt and the flat JSON envelope must match
# results/BENCH_recovery_baseline.json exactly (recovery cycles) /
# within float-print tolerance (runtime overhead). The binary itself
# exits non-zero if any correct scheme's recovery at any cut yields
# undetected corruption or a stale rollback. See DESIGN.md §15.
rec_tbl=$(mktemp)
rec_json=$(mktemp)
./target/release/recovery_sweep 20000 7 --table "$rec_tbl" --out "$rec_json" \
  --check results/BENCH_recovery_baseline.json || {
  echo "verify: recovery sweep failed its envelope check"; exit 1
}
cmp "$rec_tbl" results/recovery_pareto.txt || {
  echo "verify: recovery Pareto table diverged from the committed artefact"; exit 1
}
rm -f "$rec_tbl" "$rec_json"

echo "verify: OK"
