#!/usr/bin/env bash
# Full verification gate: release build, the whole test suite, and
# clippy with warnings promoted to errors. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

echo "verify: OK"
