//! Property-based crash-recovery tests over the whole stack: random
//! workload shapes, random crash points — correct schemes always
//! recover; the functional security layer always detects tampering.

use plp::core::{
    run_with_crash, ObserverExpectation, PersistImage, RecoveryChecker, SystemConfig,
    UpdateScheme,
};
use plp::events::Cycle;
use plp::trace::{TraceGenerator, WorkloadProfile};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        1u64..=4,            // footprint scale
        20.0f64..120.0,      // store ppki (full)
        0.0f64..0.9,         // repeat fraction
        1.0f64..32.0,        // run length
    )
        .prop_map(|(fp, stores, repeat, run)| {
            WorkloadProfile::builder("prop")
                .base_ipc(1.0)
                .store_ppki(stores, stores * 0.4)
                .load_ppki(60.0)
                .locality(repeat, fp * 128, run)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariants 1+2, fuzzed: any workload, any crash point, every
    /// correct scheme recovers cleanly.
    #[test]
    fn correct_schemes_always_recover(
        profile in arb_profile(),
        seed in any::<u64>(),
        crash_frac in 0.0f64..1.0,
        scheme_pick in 0usize..4,
    ) {
        let scheme = [
            UpdateScheme::Sp,
            UpdateScheme::Pipeline,
            UpdateScheme::O3,
            UpdateScheme::Coalescing,
        ][scheme_pick];
        let mut cfg = SystemConfig::for_scheme(scheme);
        cfg.record_persists = true;
        let trace = TraceGenerator::new(profile, seed).generate(5_000);
        let (report, _, _) = run_with_crash(&cfg, 1.0, &trace, None);
        let t = Cycle::new((report.total_cycles.get() as f64 * crash_frac) as u64);
        let image = PersistImage::at_time(&report.records, t, cfg.bmt, cfg.key);
        let expected = ObserverExpectation::at_time(&report.records, t);
        let verdict = RecoveryChecker::new(cfg.bmt, cfg.key).check(&image, &expected);
        prop_assert!(verdict.is_clean(), "{scheme} at {t}: {verdict}");
    }

    /// Any single-bit corruption of any persisted component is caught
    /// by at least one verification step.
    #[test]
    fn any_corruption_is_detected(
        seed in any::<u64>(),
        victim_frac in 0.0f64..1.0,
        bit in 0usize..512,
        component in 0usize..3,
    ) {
        let mut cfg = SystemConfig::for_scheme(UpdateScheme::Sp);
        cfg.record_persists = true;
        let profile = WorkloadProfile::builder("fixed")
            .base_ipc(1.0)
            .store_ppki(50.0, 25.0)
            .load_ppki(50.0)
            .locality(0.3, 256, 8.0)
            .build();
        let trace = TraceGenerator::new(profile, seed).generate(4_000);
        let (report, mut image, expected) = run_with_crash(&cfg, 1.0, &trace, None);
        prop_assume!(!report.records.is_empty());

        // Corrupt one persisted item.
        let mut addrs: Vec<_> = image.data.keys().copied().collect();
        addrs.sort();
        prop_assume!(!addrs.is_empty());
        let victim = addrs[(victim_frac * (addrs.len() as f64 - 1.0)) as usize];
        match component {
            0 => {
                let mut bytes = *image.data[&victim].as_bytes();
                bytes[bit % 64] ^= 1 << (bit % 8);
                image.data.insert(victim, plp::crypto::DataBlock::from_bytes(bytes));
            }
            1 => {
                let tag = image.macs[&victim];
                image
                    .macs
                    .insert(victim, plp::crypto::MacTag::from_raw(tag.raw() ^ (1 << (bit % 64))));
            }
            _ => {
                // Bump a random persisted counter (replay-style attack).
                let page = victim.page().index();
                if let Some(cb) = image.counters.get_mut(&page) {
                    cb.bump(bit % 64);
                }
            }
        }

        let verdict = RecoveryChecker::new(cfg.bmt, cfg.key).check(&image, &expected);
        prop_assert!(
            !verdict.is_clean(),
            "corruption of component {component} on {victim} went undetected"
        );
    }

    /// Trace generation + simulation is a pure function of
    /// (profile, seed, config).
    #[test]
    fn stack_is_deterministic(profile in arb_profile(), seed in any::<u64>()) {
        let cfg = SystemConfig::for_scheme(UpdateScheme::Coalescing);
        let t1 = TraceGenerator::new(profile.clone(), seed).generate(3_000);
        let t2 = TraceGenerator::new(profile, seed).generate(3_000);
        prop_assert_eq!(&t1, &t2);
        let setup = plp::core::SimSetup::new(cfg).expect("valid configuration");
        let r1 = setup.run(&t1);
        let r2 = setup.run(&t2);
        prop_assert_eq!(r1.total_cycles, r2.total_cycles);
        prop_assert_eq!(r1.engine.node_updates, r2.engine.node_updates);
    }
}
