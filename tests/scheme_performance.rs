//! Cross-crate performance-shape tests: the orderings and scalings the
//! paper's evaluation establishes must hold in the reproduction.

use plp::core::{run_benchmark, RunReport, SystemConfig, UpdateScheme};
use plp::events::stats::geometric_mean;
use plp::events::Cycle;
use plp::trace::spec;

const INSTRUCTIONS: u64 = 120_000;
const SEED: u64 = 13;

fn run(bench: &str, cfg: &SystemConfig) -> RunReport {
    let profile = spec::benchmark(bench).expect("known benchmark");
    run_benchmark(&profile, cfg, INSTRUCTIONS, SEED)
}

fn gmean_overhead(scheme: UpdateScheme) -> f64 {
    let values: Vec<f64> = spec::all_benchmarks()
        .iter()
        .map(|p| {
            let base = run_benchmark(
                p,
                &SystemConfig::for_scheme(UpdateScheme::SecureWb),
                INSTRUCTIONS,
                SEED,
            );
            run_benchmark(p, &SystemConfig::for_scheme(scheme), INSTRUCTIONS, SEED)
                .normalized_to(&base)
        })
        .collect();
    geometric_mean(&values).expect("positive times")
}

/// Fig. 8 + Fig. 10 ordering: sp ≫ pipeline > o3 ≈ coalescing ≥ 1.
#[test]
fn scheme_ordering_across_all_benchmarks() {
    let sp = gmean_overhead(UpdateScheme::Sp);
    let pipe = gmean_overhead(UpdateScheme::Pipeline);
    let o3 = gmean_overhead(UpdateScheme::O3);
    let co = gmean_overhead(UpdateScheme::Coalescing);
    assert!(sp > 4.0, "sp gmean {sp} nowhere near the paper's 7.2x");
    assert!(sp > 2.5 * pipe, "pipelining speedup too small: {sp}/{pipe}");
    assert!(pipe > o3, "o3 {o3} should beat the in-order pipeline {pipe}");
    assert!(
        (co / o3 - 1.0).abs() < 0.15,
        "coalescing {co} should track o3 {o3}"
    );
    assert!(o3 < 2.5, "o3 gmean {o3} far above the paper's ~1.2x");
}

/// Fig. 9: sp overhead grows with MAC latency and collapses with ideal
/// metadata caches.
#[test]
fn sp_scales_with_mac_latency() {
    let base = run("gobmk", &SystemConfig::for_scheme(UpdateScheme::SecureWb));
    let mut previous = 0.0;
    for mac in [0u64, 20, 40, 80] {
        let mut cfg = SystemConfig::for_scheme(UpdateScheme::Sp);
        cfg.mac_latency = Cycle::new(mac);
        let norm = run("gobmk", &cfg).normalized_to(&base);
        assert!(
            norm > previous,
            "overhead must grow with MAC latency ({mac} cycles: {norm})"
        );
        previous = norm;
    }
    let mut ideal = SystemConfig::for_scheme(UpdateScheme::Sp);
    ideal.ideal_metadata = true;
    let norm = run("gobmk", &ideal).normalized_to(&base);
    assert!(
        norm < 1.1,
        "ideal metadata caches should erase the overhead, got {norm}"
    );
}

/// Fig. 11: PPKI decreases monotonically with epoch size.
#[test]
fn ppki_monotonic_in_epoch_size() {
    let mut previous = f64::INFINITY;
    for epoch in [4usize, 16, 64, 256] {
        let mut cfg = SystemConfig::for_scheme(UpdateScheme::O3);
        cfg.epoch_size = epoch;
        let ppki = run("gcc", &cfg).persist_ppki();
        assert!(
            ppki < previous,
            "PPKI must fall with epoch size (epoch {epoch}: {ppki})"
        );
        previous = ppki;
    }
}

/// §VII WPQ sweep: shrinking the WPQ can only hurt.
#[test]
fn wpq_size_monotonicity() {
    let mut previous = Cycle::MAX;
    for wpq in [4usize, 16, 64] {
        let mut cfg = SystemConfig::for_scheme(UpdateScheme::Coalescing);
        cfg.wpq_entries = wpq;
        let cycles = run("gcc", &cfg).total_cycles;
        assert!(
            cycles <= previous,
            "larger WPQ must not be slower (wpq {wpq}: {cycles})"
        );
        previous = cycles;
    }
}

/// The coalescing mechanism's raison d'être: strictly fewer BMT node
/// updates than o3 at identical persist counts.
#[test]
fn coalescing_reduces_updates_not_persists() {
    let o3 = run("gcc", &SystemConfig::for_scheme(UpdateScheme::O3));
    let co = run("gcc", &SystemConfig::for_scheme(UpdateScheme::Coalescing));
    assert_eq!(o3.persists, co.persists, "same persist stream");
    assert!(
        co.engine.node_updates < o3.engine.node_updates,
        "coalescing saved nothing"
    );
    assert!(
        co.coalesced_saved_updates > 0,
        "saved-update counter should be positive"
    );
}

/// Full-memory protection costs strictly more than non-stack (the
/// `_full` columns of Figs. 8 and 10).
#[test]
fn full_scope_costs_more() {
    for scheme in [UpdateScheme::Sp, UpdateScheme::Coalescing] {
        let nonstack = run("astar", &SystemConfig::for_scheme(scheme));
        let mut full_cfg = SystemConfig::for_scheme(scheme);
        full_cfg.scope = plp::core::ProtectionScope::Full;
        let full = run("astar", &full_cfg);
        assert!(
            full.total_cycles > nonstack.total_cycles,
            "{scheme}: full scope should cost more"
        );
        assert!(full.persists > nonstack.persists);
    }
}

/// The non-monotonic Fig. 12 effect exists somewhere in the sweep:
/// for at least one benchmark a larger epoch is slower than a smaller
/// one.
#[test]
fn epoch_size_runtime_is_not_monotonic_everywhere() {
    let mut found = false;
    'outer: for bench in ["gamess", "milc", "zeusmp", "tonto", "gcc"] {
        let mut previous = Cycle::MAX;
        for epoch in [16usize, 64, 256] {
            let mut cfg = SystemConfig::for_scheme(UpdateScheme::Coalescing);
            cfg.epoch_size = epoch;
            let cycles = run(bench, &cfg).total_cycles;
            if cycles > previous {
                found = true;
                break 'outer;
            }
            previous = cycles;
        }
    }
    assert!(
        found,
        "no benchmark showed the late-sweep epoch-size upturn"
    );
}

/// Determinism across the whole stack: same seed, same everything.
#[test]
fn end_to_end_determinism() {
    let a = run("leslie3d", &SystemConfig::for_scheme(UpdateScheme::Coalescing));
    let b = run("leslie3d", &SystemConfig::for_scheme(UpdateScheme::Coalescing));
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.engine.node_updates, b.engine.node_updates);
    assert_eq!(a.persists, b.persists);
    assert_eq!(a.nvm, b.nvm);
}
