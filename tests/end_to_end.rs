//! Whole-stack consistency checks across every benchmark and scheme:
//! the accounting identities that must hold no matter the workload.

use plp::core::{run_benchmark, SystemConfig, UpdateScheme};
use plp::trace::spec;

const INSTRUCTIONS: u64 = 40_000;

/// Every (benchmark, scheme) pair runs to completion with sane,
/// internally consistent statistics.
#[test]
fn every_benchmark_every_scheme() {
    let levels = SystemConfig::default().bmt.levels() as u64;
    for profile in spec::all_benchmarks() {
        for scheme in UpdateScheme::all_extended() {
            let r = run_benchmark(
                &profile,
                &SystemConfig::for_scheme(scheme),
                INSTRUCTIONS,
                3,
            );
            let label = format!("{}:{}", profile.name, scheme.name());

            assert!(r.total_cycles.get() > 0, "{label}: empty run");
            assert!(r.instructions >= INSTRUCTIONS, "{label}: trace truncated");
            assert!(r.ipc() > 0.0 && r.ipc() < 8.0, "{label}: IPC {}", r.ipc());

            let security_ops = r.persists + r.writebacks;
            match scheme {
                UpdateScheme::SecureWb => {
                    assert_eq!(r.persists, 0, "{label}: baseline has no ordered persists");
                }
                UpdateScheme::Coalescing => {
                    // Coalescing performs at most levels×ops and saved
                    // the difference.
                    assert!(
                        r.engine.node_updates + r.coalesced_saved_updates > 0
                            && r.engine.node_updates <= security_ops * levels,
                        "{label}: node-update accounting broken"
                    );
                }
                UpdateScheme::TriadNvm => {
                    // The walk truncates at the persisted floor: only
                    // the deepest levels are updated strictly.
                    let cfg = SystemConfig::for_scheme(scheme);
                    let walked = u64::from(cfg.bmt.levels() - cfg.triad_floor() + 1);
                    assert_eq!(
                        r.engine.node_updates,
                        security_ops * walked,
                        "{label}: every persist must walk exactly the strict suffix"
                    );
                }
                _ => {
                    assert_eq!(
                        r.engine.node_updates,
                        security_ops * levels,
                        "{label}: every persist must walk the full path"
                    );
                }
            }
            if scheme.is_epoch_based() && r.persists > 0 {
                assert!(r.epochs > 0, "{label}: persists without epochs");
            }
            assert_eq!(
                r.engine.persists, security_ops,
                "{label}: engine persist count mismatch"
            );
        }
    }
}

/// The measured PPKI tracks the Table V calibration targets.
#[test]
fn ppki_tracks_table5() {
    for profile in spec::all_benchmarks() {
        let sp = run_benchmark(
            &profile,
            &SystemConfig::for_scheme(UpdateScheme::Sp),
            200_000,
            7,
        );
        let target = profile.store_ppki_nonstack;
        let measured = sp.persist_ppki();
        assert!(
            (measured - target).abs() / target.max(1.0) < 0.15,
            "{}: sp PPKI {measured:.2} vs Table V {target:.2}",
            profile.name
        );
    }
}

/// Architectural BMT state stays self-consistent after any run.
#[test]
fn architectural_tree_is_consistent() {
    use plp::core::SimSetup;
    use plp::trace::TraceGenerator;
    let profile = spec::benchmark("gcc").unwrap();
    let trace = TraceGenerator::new(profile.clone(), 21).generate(30_000);
    for scheme in UpdateScheme::all_extended() {
        let setup = SimSetup::with_base_ipc(SystemConfig::for_scheme(scheme), profile.base_ipc)
            .expect("valid configuration");
        let sim = setup.simulation();
        let before = sim.architectural_root();
        let (r, finished) = sim.run_with_state(&trace);
        if r.persists + r.writebacks > 0 {
            assert_ne!(
                finished.architectural_root(),
                before,
                "{scheme}: persists must move the root"
            );
        }
    }
}

/// Custom workloads built through the builder run end to end.
#[test]
fn custom_workload_profile_runs() {
    use plp::trace::WorkloadProfile;
    let profile = WorkloadProfile::builder("adhoc")
        .base_ipc(0.9)
        .store_ppki(60.0, 25.0)
        .load_ppki(90.0)
        .locality(0.7, 512, 12.0)
        .build();
    let base = run_benchmark(
        &profile,
        &SystemConfig::for_scheme(UpdateScheme::SecureWb),
        INSTRUCTIONS,
        1,
    );
    let co = run_benchmark(
        &profile,
        &SystemConfig::for_scheme(UpdateScheme::Coalescing),
        INSTRUCTIONS,
        1,
    );
    assert!(co.persists > 0);
    assert!(co.normalized_to(&base) >= 1.0);
}
