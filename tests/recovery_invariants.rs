//! End-to-end crash-recovery invariants (the executable form of the
//! paper's Tables I and II), exercised through the full system stack:
//! trace generation → simulation → crash image → recovery check.

use plp::core::{
    run_with_crash, with_component_lost, with_component_reordered, ObserverExpectation,
    PersistImage, RecoveryChecker, SystemConfig, TupleComponent, UpdateScheme,
};
use plp::events::Cycle;
use plp::trace::{spec, TraceGenerator};

fn recorded_run(
    scheme: UpdateScheme,
    bench: &str,
    instructions: u64,
) -> (SystemConfig, plp::core::RunReport) {
    let mut cfg = SystemConfig::for_scheme(scheme);
    cfg.record_persists = true;
    let profile = spec::benchmark(bench).expect("known benchmark");
    let trace = TraceGenerator::new(profile.clone(), 5).generate(instructions);
    let (report, _, _) = run_with_crash(&cfg, profile.base_ipc, &trace, None);
    (cfg, report)
}

fn check_at(cfg: &SystemConfig, report: &plp::core::RunReport, t: Cycle) -> bool {
    let checker = RecoveryChecker::new(cfg.bmt, cfg.key);
    let image = PersistImage::at_time(&report.records, t, cfg.bmt, cfg.key);
    let expected = ObserverExpectation::at_time(&report.records, t);
    checker.check(&image, &expected).is_clean()
}

/// Every correct scheme recovers cleanly no matter when the crash
/// lands — Invariants 1 and 2 hold by construction of the 2SP WPQ and
/// the epoch seal.
#[test]
fn correct_schemes_recover_at_every_crash_point() {
    for scheme in [
        UpdateScheme::Sp,
        UpdateScheme::Pipeline,
        UpdateScheme::O3,
        UpdateScheme::Coalescing,
    ] {
        let (cfg, report) = recorded_run(scheme, "milc", 10_000);
        assert!(!report.records.is_empty(), "{scheme}: no persists recorded");
        let span = report.total_cycles.get();
        for k in 0..24u64 {
            let t = Cycle::new(span * k / 23);
            assert!(
                check_at(&cfg, &report, t),
                "{scheme}: recovery failed after crash at {t}"
            );
        }
    }
}

/// The unordered strawman has at least one torn crash window — the
/// paper's core negative result about prior work.
#[test]
fn unordered_scheme_has_torn_crash_windows() {
    let (cfg, report) = recorded_run(UpdateScheme::Unordered, "gcc", 10_000);
    let mut times: Vec<Cycle> = report
        .records
        .iter()
        .flat_map(|r| [r.times.data, r.times.root])
        .collect();
    times.sort();
    times.dedup();
    let torn = times.iter().any(|t| !check_at(&cfg, &report, *t));
    assert!(torn, "unordered persists never produced a torn state");
}

/// Table I: losing exactly one tuple component produces exactly the
/// paper's failure signature.
#[test]
fn table1_failure_taxonomy() {
    let (cfg, report) = recorded_run(UpdateScheme::Sp, "milc", 8_000);
    let victim = report.records.len() - 1; // last persist: never overwritten
    let crash_at = report.total_cycles + Cycle::new(1_000);
    let checker = RecoveryChecker::new(cfg.bmt, cfg.key);
    let expected = ObserverExpectation::at_time(&report.records, crash_at);

    for component in TupleComponent::ALL {
        let faulty = with_component_lost(&report.records, victim, component);
        let image = PersistImage::at_time(&faulty, crash_at, cfg.bmt, cfg.key);
        let rec = checker.check(&image, &expected);
        match component {
            TupleComponent::Root => {
                assert!(rec.bmt_failure, "lost R must fail BMT verification");
                assert!(rec.mac_failures.is_empty());
                assert!(rec.plaintext_failures.is_empty());
            }
            TupleComponent::Mac => {
                assert!(!rec.bmt_failure);
                assert!(!rec.mac_failures.is_empty(), "lost M must fail MAC");
                assert!(rec.plaintext_failures.is_empty());
            }
            TupleComponent::Counter => {
                assert!(rec.bmt_failure, "lost γ must fail BMT");
                assert!(!rec.mac_failures.is_empty(), "lost γ must fail MAC");
                assert!(
                    !rec.plaintext_failures.is_empty(),
                    "lost γ must garble the plaintext"
                );
            }
            TupleComponent::Ciphertext => {
                assert!(!rec.bmt_failure);
                assert!(!rec.mac_failures.is_empty(), "lost C must fail MAC");
                assert!(
                    !rec.plaintext_failures.is_empty(),
                    "lost C must lose the plaintext"
                );
            }
        }
    }
}

/// Table II: swapping two persists' component order and crashing
/// between them produces the paper's failure signatures.
#[test]
fn table2_ordering_violations() {
    let (cfg, report) = recorded_run(UpdateScheme::Sp, "milc", 8_000);
    let checker = RecoveryChecker::new(cfg.bmt, cfg.key);

    // Two *adjacent* persists to different pages, α1 before α2 — no
    // intervening persist may re-supply α1's page counter before the
    // crash point.
    let first = (report.records.len() / 2..report.records.len() - 1)
        .find(|&i| report.records[i].addr.page() != report.records[i + 1].addr.page())
        .expect("adjacent different-page persists");
    let second = first + 1;
    let t1 = report.records[first].completed_at();
    let t2 = report.records[second].completed_at();
    assert!(t1 < t2, "records must be ordered");
    let crash_at = Cycle::new((t1.get() + t2.get()) / 2);
    let expected = ObserverExpectation::at_time(&report.records, crash_at);

    // Counter order violated -> P1 not recoverable.
    let faulty = with_component_reordered(&report.records, first, second, TupleComponent::Counter);
    let rec = checker.check(
        &PersistImage::at_time(&faulty, crash_at, cfg.bmt, cfg.key),
        &expected,
    );
    assert!(!rec.plaintext_failures.is_empty());

    // MAC order violated -> MAC failure.
    let faulty = with_component_reordered(&report.records, first, second, TupleComponent::Mac);
    let rec = checker.check(
        &PersistImage::at_time(&faulty, crash_at, cfg.bmt, cfg.key),
        &expected,
    );
    assert!(!rec.mac_failures.is_empty());

    // Root order violated -> BMT failure.
    let faulty = with_component_reordered(&report.records, first, second, TupleComponent::Root);
    let rec = checker.check(
        &PersistImage::at_time(&faulty, crash_at, cfg.bmt, cfg.key),
        &expected,
    );
    assert!(rec.bmt_failure);
}

/// Recovery also covers epoch semantics: a crash mid-epoch exposes
/// only completed epochs to the observer, and that state verifies.
#[test]
fn epoch_crash_exposes_only_sealed_epochs() {
    let (cfg, report) = recorded_run(UpdateScheme::Coalescing, "gamess", 10_000);
    assert!(report.epochs > 2);
    // Every record of a sealed epoch carries the epoch's completion
    // time; pick a crash point right before one epoch's completion.
    let some_completion = report.records[report.records.len() / 2].completed_at();
    let crash_at = Cycle::new(some_completion.get().saturating_sub(1));
    assert!(check_at(&cfg, &report, crash_at));
    // The observer at that point expects only earlier epochs.
    let expected = ObserverExpectation::at_time(&report.records, crash_at);
    let all = ObserverExpectation::at_time(&report.records, Cycle::MAX);
    assert!(expected.plaintexts.len() < all.plaintexts.len());
}

/// Minor-counter overflow: hammering one page past 127 writes per
/// minor counter forces the split-counter page re-encryption path,
/// and recovery must still be clean everywhere — blocks encrypted
/// under the old major counter were re-encrypted with the overflow.
#[test]
fn counter_overflow_page_reencryption_recovers() {
    use plp::trace::WorkloadProfile;
    // A single-page workload: every store lands in the same 4 KiB
    // page, so minors overflow quickly.
    let profile = WorkloadProfile::builder("one-page")
        .base_ipc(1.0)
        .store_ppki(200.0, 200.0)
        .load_ppki(1.0)
        .locality(0.0, 1, 64.0)
        .build();
    let mut cfg = SystemConfig::for_scheme(UpdateScheme::Sp);
    cfg.record_persists = true;
    let trace = TraceGenerator::new(profile, 3).generate(60_000);
    let (report, _, _) = run_with_crash(&cfg, 1.0, &trace, None);
    assert!(
        report.page_overflows > 0,
        "the single-page hammer must overflow a minor counter \
         (persists: {})",
        report.persists
    );
    assert!(report.overflow_blocks > 0);

    // Recovery at many crash points, including ones straddling the
    // overflow, must be clean: the whole page was re-encrypted.
    let span = report.total_cycles.get();
    for k in 0..32u64 {
        let t = Cycle::new(span * k / 31);
        assert!(
            check_at(&cfg, &report, t),
            "overflow broke recovery at crash point {t}"
        );
    }
}

/// A *replay* — writing back a consistent old tuple (ciphertext +
/// MAC + counter block together) — passes the stateful MAC in
/// isolation but is caught by the BMT root. This is the §II argument
/// that the tree must cover counters.
#[test]
fn counter_replay_is_caught_by_the_tree() {
    let (cfg, report) = recorded_run(UpdateScheme::Sp, "milc", 8_000);
    let crash_at = report.total_cycles + Cycle::new(1_000);
    let mut image = PersistImage::at_time(&report.records, crash_at, cfg.bmt, cfg.key);
    let expected = ObserverExpectation::at_time(&report.records, crash_at);

    // A block persisted at least twice; roll its whole tuple back.
    let old = report
        .records
        .iter()
        .find(|early| report.records.iter().filter(|r| r.addr == early.addr).count() >= 2)
        .expect("a twice-persisted block")
        .clone();
    image.data.insert(old.addr, old.ciphertext);
    image.macs.insert(old.addr, old.mac);
    image
        .counters
        .insert(old.addr.page().index(), old.counters_after.clone());

    let checker = RecoveryChecker::new(cfg.bmt, cfg.key);
    // The rolled-back tuple is internally consistent...
    let gamma = old.counters_after.value_for(old.addr);
    let mac_engine = plp::crypto::MacEngine::new(cfg.key);
    assert!(
        mac_engine.verify(&old.ciphertext, old.addr, gamma, old.mac),
        "the replayed tuple must verify in isolation"
    );
    // ...but the tree sees the rollback.
    let verdict = checker.check(&image, &expected);
    assert!(verdict.bmt_failure, "replay went undetected: {verdict}");
}

/// An active adversary tampering with persisted ciphertext is caught
/// by the stateful MAC during recovery.
#[test]
fn tampered_image_fails_recovery() {
    let (cfg, report) = recorded_run(UpdateScheme::Sp, "milc", 6_000);
    let crash_at = report.total_cycles + Cycle::new(1_000);
    let mut image = PersistImage::at_time(&report.records, crash_at, cfg.bmt, cfg.key);
    let expected = ObserverExpectation::at_time(&report.records, crash_at);

    // Flip one byte of one persisted ciphertext block.
    let victim = *image.data.keys().next().expect("some persisted block");
    let mut bytes = *image.data[&victim].as_bytes();
    bytes[13] ^= 0x80;
    image
        .data
        .insert(victim, plp::crypto::DataBlock::from_bytes(bytes));

    let rec = RecoveryChecker::new(cfg.bmt, cfg.key).check(&image, &expected);
    assert!(rec.mac_failures.contains(&victim));
}
