//! Pinned crash-recovery regressions.
//!
//! Each test replays one concrete counterexample that property testing
//! found in the past (the parameters come from shrunk proptest
//! failures). Unlike a `.proptest-regressions` file, these replays do
//! not depend on any particular proptest RNG stream, so they keep
//! working across proptest versions and strategy changes.

use plp::core::{
    run_with_crash, ObserverExpectation, PersistImage, RecoveryChecker, SystemConfig,
    UpdateScheme,
};
use plp::events::Cycle;
use plp::trace::{TraceGenerator, WorkloadProfile};

/// Replays a (profile, seed, crash fraction, scheme) tuple through the
/// same path as the `correct_schemes_always_recover` property.
fn replay(profile: WorkloadProfile, seed: u64, crash_frac: f64, scheme: UpdateScheme) {
    let mut cfg = SystemConfig::for_scheme(scheme);
    cfg.record_persists = true;
    let trace = TraceGenerator::new(profile, seed).generate(5_000);
    let (report, _, _) = run_with_crash(&cfg, 1.0, &trace, None);
    let t = Cycle::new((report.total_cycles.get() as f64 * crash_frac) as u64);
    let image = PersistImage::at_time(&report.records, t, cfg.bmt, cfg.key);
    let expected = ObserverExpectation::at_time(&report.records, t);
    let verdict = RecoveryChecker::new(cfg.bmt, cfg.key).check(&image, &expected);
    assert!(verdict.is_clean(), "{scheme} at {t}: {verdict}");
}

/// Shrunk counterexample once recorded in
/// `crash_properties.proptest-regressions`: a store-heavy, highly
/// repetitive workload crashing the `pipeline` engine at ~70% of the
/// run.
#[test]
fn pipeline_recovers_store_heavy_repetitive_workload() {
    let profile = WorkloadProfile::builder("prop")
        .base_ipc(1.0)
        .store_ppki(53.868358961942576, 21.547343584777032)
        .load_ppki(60.0)
        .locality(0.7424701974058485, 256, 16.373232256169253)
        .build();
    replay(
        profile,
        17478386929309104237,
        0.6981282319444854,
        UpdateScheme::Pipeline,
    );
}

/// The same shape swept across every correct scheme and a spread of
/// crash fractions, so a reintroduced ordering bug is caught no matter
/// which engine it lands in.
#[test]
fn all_correct_schemes_recover_the_regression_workload() {
    for scheme in [
        UpdateScheme::Sp,
        UpdateScheme::Pipeline,
        UpdateScheme::O3,
        UpdateScheme::Coalescing,
    ] {
        for crash_frac in [0.0, 0.25, 0.6981282319444854, 0.95, 1.0] {
            let profile = WorkloadProfile::builder("prop")
                .base_ipc(1.0)
                .store_ppki(53.868358961942576, 21.547343584777032)
                .load_ppki(60.0)
                .locality(0.7424701974058485, 256, 16.373232256169253)
                .build();
            replay(profile, 17478386929309104237, crash_frac, scheme);
        }
    }
}
