//! Pinned crash-recovery regressions.
//!
//! Each test replays one concrete counterexample that property testing
//! found in the past (the parameters come from shrunk proptest
//! failures). Unlike a `.proptest-regressions` file, these replays do
//! not depend on any particular proptest RNG stream, so they keep
//! working across proptest versions and strategy changes.

use plp::core::{
    run_with_crash, ObserverExpectation, PersistImage, RecoveryChecker, SystemConfig,
    UpdateScheme,
};
use plp::events::Cycle;
use plp::trace::{TraceGenerator, WorkloadProfile};

/// Replays a (profile, seed, crash fraction, scheme) tuple through the
/// same path as the `correct_schemes_always_recover` property.
fn replay(profile: WorkloadProfile, seed: u64, crash_frac: f64, scheme: UpdateScheme) {
    let mut cfg = SystemConfig::for_scheme(scheme);
    cfg.record_persists = true;
    let trace = TraceGenerator::new(profile, seed).generate(5_000);
    let (report, _, _) = run_with_crash(&cfg, 1.0, &trace, None);
    let t = Cycle::new((report.total_cycles.get() as f64 * crash_frac) as u64);
    let image = PersistImage::at_time(&report.records, t, cfg.bmt, cfg.key);
    let expected = ObserverExpectation::at_time(&report.records, t);
    let verdict = RecoveryChecker::new(cfg.bmt, cfg.key).check(&image, &expected);
    assert!(verdict.is_clean(), "{scheme} at {t}: {verdict}");
}

/// Shrunk counterexample once recorded in
/// `crash_properties.proptest-regressions`: a store-heavy, highly
/// repetitive workload crashing the `pipeline` engine at ~70% of the
/// run.
#[test]
fn pipeline_recovers_store_heavy_repetitive_workload() {
    let profile = WorkloadProfile::builder("prop")
        .base_ipc(1.0)
        .store_ppki(53.868358961942576, 21.547343584777032)
        .load_ppki(60.0)
        .locality(0.7424701974058485, 256, 16.373232256169253)
        .build();
    replay(
        profile,
        17478386929309104237,
        0.6981282319444854,
        UpdateScheme::Pipeline,
    );
}

/// The same shape swept across every correct scheme and a spread of
/// crash fractions, so a reintroduced ordering bug is caught no matter
/// which engine it lands in. `phoenix` is pinned here too: its atomic
/// tuple times mean every enumerated crash instant recovers Clean.
#[test]
fn all_correct_schemes_recover_the_regression_workload() {
    for scheme in [
        UpdateScheme::Sp,
        UpdateScheme::Pipeline,
        UpdateScheme::O3,
        UpdateScheme::Coalescing,
        UpdateScheme::Phoenix,
    ] {
        for crash_frac in [0.0, 0.25, 0.6981282319444854, 0.95, 1.0] {
            let profile = WorkloadProfile::builder("prop")
                .base_ipc(1.0)
                .store_ppki(53.868358961942576, 21.547343584777032)
                .load_ppki(60.0)
                .locality(0.7424701974058485, 256, 16.373232256169253)
                .build();
            replay(profile, 17478386929309104237, crash_frac, scheme);
        }
    }
}

/// `triad_nvm` relaxes MAC and root persistence behind the data and
/// counter (the lazily-flushed upper tree), so a crash inside that lag
/// window strands pairs under a stale MAC. Pins the scheme's whole
/// verdict contract: a quiesced image recovers Clean, every in-window
/// crash is *detected* (BMT or MAC failure), and no crash instant —
/// in-window or not — ever yields a silently wrong plaintext.
#[test]
fn triad_nvm_losses_are_detected_and_confined_to_the_lag_window() {
    let mut cfg = SystemConfig::for_scheme(UpdateScheme::TriadNvm);
    cfg.record_persists = true;
    let profile = WorkloadProfile::builder("prop")
        .base_ipc(1.0)
        .store_ppki(53.868358961942576, 21.547343584777032)
        .load_ppki(60.0)
        .locality(0.7424701974058485, 256, 16.373232256169253)
        .build();
    let trace = TraceGenerator::new(profile, 17478386929309104237).generate(5_000);
    let (report, _, _) = run_with_crash(&cfg, 1.0, &trace, None);
    assert!(!report.records.is_empty());
    let checker = RecoveryChecker::new(cfg.bmt, cfg.key);

    // Quiescent image: past the last record's lagged root persist,
    // every window has drained and recovery is Clean.
    let settled = report
        .records
        .iter()
        .map(|r| r.times.root)
        .max()
        .unwrap()
        + Cycle::new(1);
    let image = PersistImage::at_time(&report.records, settled, cfg.bmt, cfg.key);
    let expected = ObserverExpectation::at_time(&report.records, settled);
    let verdict = checker.check(&image, &expected);
    assert!(verdict.is_clean(), "quiesced triad_nvm image: {verdict}");

    // Crash instants inside the lag window: the pair is durable, its
    // MAC and root are still in flight. Sample across the run.
    let stride = report.records.len() / 16 + 1;
    let mut windows = 0;
    for r in report.records.iter().step_by(stride) {
        let t = r.times.data;
        if r.times.mac <= t {
            continue; // window already drained at this instant
        }
        windows += 1;
        let image = PersistImage::at_time(&report.records, t, cfg.bmt, cfg.key);
        let expected = ObserverExpectation::at_time(&report.records, t);
        let verdict = checker.check(&image, &expected);
        assert!(
            !verdict.is_clean(),
            "a mid-window crash at {t} must be detected"
        );
        // Detected, never silent: a wrong plaintext is only acceptable
        // when the same block's MAC already flagged it (Table I's
        // "wrong plaintext, MAC failure" category).
        for addr in &verdict.plaintext_failures {
            assert!(
                verdict.mac_failures.contains(addr),
                "triad_nvm silently lost {addr:?} at {t}: {verdict}"
            );
        }
    }
    assert!(windows > 0, "the sweep never sampled a lag window");
}
