//! Property-based fault-injection tests: the detect-or-recover
//! contract, fuzzed over workload shapes, crash points, fault classes
//! and seeds.
//!
//! The contract under test (mirrors `fault_sweep`'s PASS gate):
//!
//! * a correct engine (`sp`, `pipeline`, `o3`, `coalescing`) hit by any
//!   *single* torn line write or bit flip either recovers fully
//!   (clean/repaired) or quarantines the damage — never a stale
//!   rollback, never silent garbage;
//! * the `unordered` strawman may lose data at a crash (Tables I/II),
//!   but the MAC + BMT machinery must still flag every non-authentic
//!   state: silent garbage is impossible for *every* scheme.

use plp::core::fault::{FaultInjector, FaultVerdict, RecoveryManager};
use plp::core::{
    run_with_crash, ObserverExpectation, PersistImage, SystemConfig, TupleComponent, UpdateScheme,
};
use plp::events::Cycle;
use plp::trace::{TraceGenerator, WorkloadProfile};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        1u64..=4,       // footprint scale
        20.0f64..120.0, // store ppki
        0.0f64..0.9,    // repeat fraction
        1.0f64..32.0,   // run length
    )
        .prop_map(|(fp, stores, repeat, run)| {
            WorkloadProfile::builder("prop")
                .base_ipc(1.0)
                .store_ppki(stores, stores * 0.4)
                .load_ppki(60.0)
                .locality(repeat, fp * 128, run)
                .build()
        })
}

/// Runs `scheme` on `profile`, crashes at `crash_frac` of the run and
/// returns the recovery ingredients.
fn crash_state(
    profile: WorkloadProfile,
    seed: u64,
    crash_frac: f64,
    scheme: UpdateScheme,
) -> (
    SystemConfig,
    Vec<plp::core::PersistRecord>,
    Cycle,
    PersistImage,
    ObserverExpectation,
) {
    let mut cfg = SystemConfig::for_scheme(scheme);
    cfg.record_persists = true;
    let trace = TraceGenerator::new(profile, seed).generate(5_000);
    let (report, _, _) = run_with_crash(&cfg, 1.0, &trace, None);
    let t = Cycle::new((report.total_cycles.get() as f64 * crash_frac) as u64);
    let image = PersistImage::at_time(&report.records, t, cfg.bmt, cfg.key);
    let expected = ObserverExpectation::at_time(&report.records, t);
    (cfg, report.records, t, image, expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any single torn line write against any correct engine, at any
    /// crash point, is either absorbed or quarantined — never accepted.
    #[test]
    fn correct_engines_detect_or_recover_any_torn_write(
        profile in arb_profile(),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        crash_frac in 0.0f64..1.0,
        scheme_pick in 0usize..4,
        component_pick in 0usize..3,
    ) {
        let scheme = [
            UpdateScheme::Sp,
            UpdateScheme::Pipeline,
            UpdateScheme::O3,
            UpdateScheme::Coalescing,
        ][scheme_pick];
        let component = [
            TupleComponent::Ciphertext,
            TupleComponent::Counter,
            TupleComponent::Mac,
        ][component_pick];
        let (cfg, records, t, mut image, expected) =
            crash_state(profile, seed, crash_frac, scheme);
        let manager = RecoveryManager::for_config(&cfg);

        let baseline = manager.recover(&image, &records, &expected);
        prop_assert_eq!(
            baseline.verdict(), FaultVerdict::Clean,
            "{} must crash cleanly before injection at {:?}", scheme, t
        );

        let spec = FaultInjector::new(fault_seed)
            .torn_write_component(&mut image, &records, t, component);
        prop_assume!(spec.is_some()); // nothing tearable this early
        let outcome = manager.recover(&image, &records, &expected);
        prop_assert!(
            !outcome.verdict().is_undetected(),
            "{} accepted a bad state after {}: {}",
            scheme, spec.unwrap(), outcome
        );
    }

    /// Any single bit flip — data, MAC, counter or the root register —
    /// is likewise detected or repaired by every correct engine.
    #[test]
    fn correct_engines_detect_or_recover_any_bit_flip(
        profile in arb_profile(),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        crash_frac in 0.0f64..1.0,
        scheme_pick in 0usize..4,
    ) {
        let scheme = [
            UpdateScheme::Sp,
            UpdateScheme::Pipeline,
            UpdateScheme::O3,
            UpdateScheme::Coalescing,
        ][scheme_pick];
        let (cfg, records, _t, mut image, expected) =
            crash_state(profile, seed, crash_frac, scheme);
        let manager = RecoveryManager::for_config(&cfg);

        let spec = FaultInjector::new(fault_seed).bit_flip(&mut image);
        prop_assume!(spec.is_some());
        let outcome = manager.recover(&image, &records, &expected);
        prop_assert!(
            !outcome.verdict().is_undetected(),
            "{} accepted a bad state after {}: {}",
            scheme, spec.unwrap(), outcome
        );
    }

    /// The unordered strawman loses data across crashes — but it must
    /// be *detected* loss or an authentic stale version. Decrypting
    /// garbage and calling it recovered is impossible while the MAC
    /// binds (C, A, γ): silent garbage means a forged tag.
    #[test]
    fn unordered_never_silently_recovers_garbage(
        profile in arb_profile(),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        crash_frac in 0.0f64..1.0,
        inject_pick in 0usize..2,
    ) {
        let (cfg, records, t, mut image, expected) =
            crash_state(profile, seed, crash_frac, UpdateScheme::Unordered);
        let manager = RecoveryManager::for_config(&cfg);
        if inject_pick == 1 {
            // A fault on top of the torn tuple state must not make
            // things *less* detectable either.
            let _ = FaultInjector::new(fault_seed).torn_write(&mut image, &records, t);
        }
        let outcome = manager.recover(&image, &records, &expected);
        prop_assert!(
            outcome.verdict() != FaultVerdict::UndetectedCorruption,
            "unordered silently recovered garbage at {:?}: {}", t, outcome
        );
    }
}
