//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, range / tuple /
//! collection / `any` strategies, the [`proptest!`] macro and the
//! `prop_assert*` family. Differences from the real crate, chosen to
//! keep the stub dependency-free:
//!
//! * **No shrinking** — a failing case reports its deterministic case
//!   seed instead of a minimal counterexample. Re-running the test
//!   reproduces it exactly (case seeds are a pure function of the test
//!   name and case index).
//! * **No persistence** — `*.proptest-regressions` files are not read;
//!   interesting cases should be promoted to explicit `#[test]`s.
//! * Case count defaults to [`DEFAULT_CASES`] and can be raised with
//!   the `PROPTEST_CASES` environment variable, like the real crate.

/// Default number of cases each property runs.
pub const DEFAULT_CASES: u32 = 32;

/// Deterministic splitmix64 generator driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a case seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The deterministic per-case seed: a pure function of the test name
/// and case index, so failures are reproducible without a persistence
/// file.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the name, then mix in the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's assumptions were not met; it does not count.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` environment
    /// override.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// Generates `Vec`s of `elem` values with a length drawn from
    /// `len`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Array strategies (`prop::array`).
pub mod array {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`uniform32`].
    #[derive(Debug, Clone)]
    pub struct Uniform32<S>(S);

    /// Generates `[T; 32]` arrays of values from `elem`.
    pub fn uniform32<S: Strategy>(elem: S) -> Uniform32<S> {
        Uniform32(elem)
    }

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];

        fn sample(&self, rng: &mut TestRng) -> [S::Value; 32] {
            core::array::from_fn(|_| self.0.sample(rng))
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("[{}:{}] {}", file!(), line!(), format!($($fmt)*)),
            ));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case unless the operands differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Rejects the current case (it does not count towards the case
/// budget) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests: each `fn name(binding in strategy, ...)`
/// runs the body against `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = config.resolved_cases();
            let mut accepted = 0u32;
            let mut attempt = 0u32;
            let max_attempts = cases.saturating_mul(16).max(64);
            while accepted < cases && attempt < max_attempts {
                let seed = $crate::case_seed(stringify!($name), attempt);
                attempt += 1;
                let mut __rng = $crate::TestRng::new(seed);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "property {} failed (case seed {:#018x}): {}",
                        stringify!($name),
                        seed,
                        msg
                    ),
                }
            }
            assert!(
                accepted >= cases,
                "property {}: too many rejected cases ({accepted}/{cases} accepted)",
                stringify!($name)
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = (0u64..100, 0.0f64..1.0).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::TestRng::new(7);
        let mut r2 = crate::TestRng::new(7);
        assert_eq!(s.sample(&mut r1).0, s.sample(&mut r2).0);
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let s = prop::collection::vec(0u64..10, 2..5);
        let mut rng = crate::TestRng::new(1);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_round_trip(x in 0u64..50, flag in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert_eq!(x, x);
            if flag {
                prop_assert_ne!(x, x + 1);
            }
        }
    }
}
