//! Offline stand-in for `serde_derive`.
//!
//! The simulator only ever *derives* `Serialize`/`Deserialize`; nothing
//! in the workspace serializes at runtime (there is no `serde_json`,
//! `bincode`, …). The companion `serde` stub blanket-implements both
//! traits for every type, so these derives only need to accept the
//! syntax — including `#[serde(...)]` helper attributes — and expand to
//! nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` field/container
/// attributes) and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` field/container
/// attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
