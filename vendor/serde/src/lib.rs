//! Offline stand-in for `serde`.
//!
//! This workspace derives `Serialize`/`Deserialize` on most model types
//! so that downstream users *could* persist them, but no code path in
//! the repository actually serializes at runtime (there is no
//! `serde_json`, `bincode`, …). The build container has no access to
//! crates.io, so this stub keeps the source-level API — trait names,
//! derive macros, the `ser`/`de` modules used by manual `with =`
//! helpers — while blanket-implementing the traits with diverging
//! bodies.
//!
//! If real serialization is ever needed, drop the real `serde` back
//! into `[workspace.dependencies]`; no source changes are required.

/// Serialization half of the stub API.
pub mod ser {
    /// Error raised by a serializer.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }

    /// A data format that can serialize values.
    pub trait Serializer: Sized {
        /// Output produced on success.
        type Ok;
        /// Error produced on failure.
        type Error: Error;
    }

    /// A value that can be serialized.
    pub trait Serialize {
        /// Serializes `self` (never called: no serializer exists in
        /// this workspace).
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    impl<T: ?Sized> Serialize for T {
        fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
            unreachable!("serde stub: no serializer exists in this workspace")
        }
    }
}

/// Deserialization half of the stub API.
pub mod de {
    /// Error raised by a deserializer.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }

    /// A data format that can deserialize values.
    pub trait Deserializer<'de>: Sized {
        /// Error produced on failure.
        type Error: Error;
    }

    /// A value that can be deserialized.
    pub trait Deserialize<'de>: Sized {
        /// Deserializes a value (never called: no deserializer exists
        /// in this workspace).
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    impl<'de, T> Deserialize<'de> for T {
        fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
            unreachable!("serde stub: no deserializer exists in this workspace")
        }
    }
}

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
// The derive macros live in a different namespace than the traits, so
// both re-exports coexist, exactly as in real serde.
pub use serde_derive::{Deserialize, Serialize};
