//! Offline stand-in for `rand`.
//!
//! Implements the slice of the `rand` API the workspace uses — a
//! deterministic [`rngs::SmallRng`] seeded from a `u64`, plus the
//! [`RngExt`] sampling helpers (`random`, `random_range`,
//! `random_bool`). The generator is xoshiro256++ with splitmix64 state
//! expansion, the same family real `rand` uses for `SmallRng` on
//! 64-bit targets, so statistical quality is comparable; the exact
//! streams differ, which only matters to code that bakes in
//! seed-specific expectations.

/// Types seedable from a plain `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to the full
    /// state size.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value type [`RngExt::random`] can produce.
pub trait StandardValue: Sized {
    /// Draws a uniformly distributed value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl StandardValue for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl StandardValue for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardValue for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A half-open or inclusive integer range [`RngExt::random_range`] can
/// sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws a uniform element of the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn draw(&self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn draw(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn draw(&self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait RngExt: RngCore + Sized {
    /// Draws a uniformly distributed value of `T`.
    fn random<T: StandardValue>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a uniform element of `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.draw(self)
    }

    /// Draws `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.random::<f64>() < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_tracks() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }
}
