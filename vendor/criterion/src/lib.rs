//! Offline stand-in for `criterion`.
//!
//! Supports the API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`criterion_group!`] and
//! [`criterion_main!`] — with a drastically simplified measurement
//! loop: a short warm-up, a fixed iteration budget and a median-of-runs
//! nanosecond report. Good enough to compare orders of magnitude and to
//! keep `cargo bench` / `cargo clippy --benches` working without
//! network access.

use std::time::Instant;

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] amortizes setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup per small batch of iterations.
    SmallInput,
    /// Setup per large batch of iterations.
    LargeInput,
    /// Setup once per iteration.
    PerIteration,
}

/// Runs one benchmark's measurement loops.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    /// Median nanoseconds per iteration across runs, filled by the
    /// measurement loop.
    ns_per_iter: f64,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            ns_per_iter: 0.0,
        }
    }

    /// Times `routine` over the iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..self.iters.min(8) {
            black_box(routine());
        }
        let mut runs = Vec::new();
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..self.iters {
                black_box(routine());
            }
            runs.push(start.elapsed().as_nanos() as f64 / self.iters as f64);
        }
        runs.sort_by(f64::total_cmp);
        self.ns_per_iter = runs[runs.len() / 2];
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters.min(4) {
            black_box(routine(setup()));
        }
        let mut runs = Vec::new();
        for _ in 0..5 {
            let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            runs.push(start.elapsed().as_nanos() as f64 / self.iters as f64);
        }
        runs.sort_by(f64::total_cmp);
        self.ns_per_iter = runs[runs.len() / 2];
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Overridable so CI can shrink bench time:
        // CRITERION_STUB_ITERS=1 cargo bench
        let iters = std::env::var("CRITERION_STUB_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100);
        Criterion { iters }
    }
}

impl Criterion {
    /// Runs `f` as the benchmark named `id` and prints its median
    /// time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.iters);
        f(&mut b);
        println!("{id:<40} {:>12.1} ns/iter", b.ns_per_iter);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        std::env::set_var("CRITERION_STUB_ITERS", "10");
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke/iter", |b| b.iter(|| ran = ran.wrapping_add(1)));
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        assert!(ran > 0);
    }
}
