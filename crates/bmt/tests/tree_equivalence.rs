//! Golden-model equivalence: the arena-backed `BonsaiTree` against the
//! original map-backed implementation.
//!
//! `GoldenTree` below is a frozen copy of the pre-arena tree: a
//! `HashMap<NodeLabel, NodeValue>` node store with per-level lazy
//! defaults, recomputing each ancestor by collecting its children into
//! a fresh `Vec`. It is deliberately naive — its job is to be obviously
//! correct, not fast. Every test drives both trees through the same
//! sequence of operations (updates, tampering, crash-and-rebuild) and
//! asserts the stores are indistinguishable: same root, same value for
//! *every* label in the tree, same populated-node count, same
//! consistency verdicts.

use std::collections::HashMap;

use plp_bmt::{BmtGeometry, BonsaiTree, NodeLabel, NodeValue};
use plp_crypto::{CounterBlock, SipKey};
use proptest::prelude::*;

fn key() -> SipKey {
    SipKey::new(0xfeed, 0xbeef)
}

/// The pre-arena map-backed tree, kept verbatim as the oracle.
struct GoldenTree {
    geometry: BmtGeometry,
    key: SipKey,
    nodes: HashMap<NodeLabel, NodeValue>,
    defaults: Vec<NodeValue>,
}

impl GoldenTree {
    fn new(geometry: BmtGeometry, master_key: SipKey) -> Self {
        let key = master_key.derive("bmt");
        let levels = geometry.levels_usize();
        let mut defaults = vec![0; levels];
        let fresh = CounterBlock::new();
        defaults[levels - 1] = key.hash_words(&fresh.content_words());
        for level in (1..levels).rev() {
            let children = vec![defaults[level]; geometry.arity_usize()];
            defaults[level - 1] = key.hash_words(&children);
        }
        GoldenTree {
            geometry,
            key,
            nodes: HashMap::new(),
            defaults,
        }
    }

    fn from_counters<'a>(
        geometry: BmtGeometry,
        master_key: SipKey,
        counters: impl IntoIterator<Item = (u64, &'a CounterBlock)>,
    ) -> Self {
        let mut tree = GoldenTree::new(geometry, master_key);
        for (page, cb) in counters {
            tree.update_leaf(page, cb);
        }
        tree
    }

    fn root(&self) -> NodeValue {
        self.node_value(NodeLabel::ROOT)
    }

    fn node_value(&self, label: NodeLabel) -> NodeValue {
        match self.nodes.get(&label) {
            Some(v) => *v,
            None => self.defaults[self.geometry.level_index(label)],
        }
    }

    fn populated_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn recompute_internal(&self, label: NodeLabel) -> NodeValue {
        let children: Vec<NodeValue> = (0..self.geometry.arity())
            .map(|i| self.node_value(self.geometry.child(label, i)))
            .collect();
        self.key.hash_words(&children)
    }

    fn update_leaf(&mut self, page: u64, cb: &CounterBlock) -> Vec<(NodeLabel, NodeValue)> {
        let leaf = self.geometry.leaf(page);
        let mut path = Vec::with_capacity(self.geometry.levels_usize());
        let leaf_value = self.key.hash_words(&cb.content_words());
        self.nodes.insert(leaf, leaf_value);
        path.push((leaf, leaf_value));
        let mut node = leaf;
        while let Some(parent) = self.geometry.parent(node) {
            let value = self.recompute_internal(parent);
            self.nodes.insert(parent, value);
            path.push((parent, value));
            node = parent;
        }
        path
    }

    fn set_node(&mut self, label: NodeLabel, value: NodeValue) {
        self.nodes.insert(label, value);
    }

    fn verify_consistent(&self) -> bool {
        let mut labels: Vec<NodeLabel> = self.nodes.keys().copied().collect();
        labels.sort_by_key(|l| std::cmp::Reverse(self.geometry.level(*l)));
        for label in labels {
            if self.geometry.level(label) >= self.geometry.levels() {
                continue;
            }
            if self.recompute_internal(label) != self.node_value(label) {
                return false;
            }
        }
        true
    }
}

/// Assert the two stores are indistinguishable from the outside:
/// root, populated count, and the value of every single label.
fn assert_stores_equal(golden: &GoldenTree, arena: &BonsaiTree, g: BmtGeometry) {
    assert_eq!(golden.root(), arena.root(), "roots diverged");
    assert_eq!(
        golden.populated_nodes(),
        arena.populated_nodes(),
        "populated-node counts diverged"
    );
    for raw in 0..g.node_count() {
        let label = NodeLabel::new(raw);
        assert_eq!(
            golden.node_value(label),
            arena.node_value(label),
            "node {label} diverged"
        );
    }
}

/// Small geometries keep the exhaustive all-labels sweep cheap while
/// still covering non-power-of-two arities and shallow/deep shapes.
fn arb_geometry() -> impl Strategy<Value = BmtGeometry> {
    (2u64..=8, 2u32..=4).prop_map(|(arity, levels)| BmtGeometry::new(arity, levels))
}

proptest! {
    #[test]
    fn update_sequences_agree(
        g in arb_geometry(),
        updates in prop::collection::vec((any::<u64>(), 0usize..64), 1..24),
    ) {
        let mut golden = GoldenTree::new(g, key());
        let mut arena = BonsaiTree::new(g, key());
        let mut counters: HashMap<u64, CounterBlock> = HashMap::new();
        let mut arena_path = Vec::new();
        for (page_seed, slot) in updates {
            let page = page_seed % g.leaf_count();
            let cb = counters.entry(page).or_default();
            cb.bump(slot);
            let golden_path = golden.update_leaf(page, cb);
            let root = arena.update_leaf_into(page, cb, &mut arena_path);
            // Identical per-level labels and values, leaf first.
            prop_assert_eq!(&golden_path, &arena_path);
            prop_assert_eq!(root, golden.root());
        }
        assert_stores_equal(&golden, &arena, g);
        prop_assert!(golden.verify_consistent());
        prop_assert!(arena.verify_consistent().is_ok());
    }

    #[test]
    fn crash_recovery_agrees(
        g in arb_geometry(),
        updates in prop::collection::vec((any::<u64>(), 0usize..64), 1..16),
        survivors in any::<u64>(),
    ) {
        // Build up counter state, then "crash": rebuild both trees from
        // an arbitrary surviving subset of persisted counter blocks, as
        // recovery does, and require identical rebuilt stores.
        let mut counters: HashMap<u64, CounterBlock> = HashMap::new();
        for (page_seed, slot) in updates {
            counters.entry(page_seed % g.leaf_count()).or_default().bump(slot);
        }
        let mut pages: Vec<u64> = counters.keys().copied().collect();
        pages.sort_unstable();
        let surviving: Vec<(u64, &CounterBlock)> = pages
            .iter()
            .enumerate()
            .filter(|(i, _)| survivors & (1 << (i % 64)) != 0)
            .map(|(_, p)| (*p, &counters[p]))
            .collect();
        let golden = GoldenTree::from_counters(g, key(), surviving.iter().copied());
        let arena = BonsaiTree::from_counters(g, key(), surviving.iter().copied());
        assert_stores_equal(&golden, &arena, g);

        // The recovery-time root check agrees on the full set too.
        let full_ok = arena
            .verify_counters_against_root(pages.iter().map(|p| (*p, &counters[p])), key())
            .is_ok();
        let golden_full = GoldenTree::from_counters(g, key(), pages.iter().map(|p| (*p, &counters[p])));
        prop_assert_eq!(full_ok, golden_full.root() == arena.root());
    }

    #[test]
    fn tamper_verdicts_agree(
        g in arb_geometry(),
        updates in prop::collection::vec((any::<u64>(), 0usize..64), 1..12),
        tamper in (any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        let mut golden = GoldenTree::new(g, key());
        let mut arena = BonsaiTree::new(g, key());
        let mut counters: HashMap<u64, CounterBlock> = HashMap::new();
        for (page_seed, slot) in updates {
            let page = page_seed % g.leaf_count();
            let cb = counters.entry(page).or_default();
            cb.bump(slot);
            golden.update_leaf(page, cb);
            arena.update_leaf(page, cb);
        }
        let (gate, label_seed, xor) = tamper;
        if gate % 2 == 0 {
            // Tamper identically: an arbitrary node, arbitrary delta.
            // (xor may be 0, i.e. a no-op "tamper" both must tolerate.)
            let label = NodeLabel::new(label_seed % g.node_count());
            let v = arena.node_value(label) ^ xor;
            golden.set_node(label, v);
            arena.set_node(label, v);
        }
        assert_stores_equal(&golden, &arena, g);
        prop_assert_eq!(golden.verify_consistent(), arena.verify_consistent().is_ok());
    }
}

/// The paper-default geometry is too big for the exhaustive sweep, so
/// pin root-level agreement on a hand-picked update set instead,
/// including the first and last leaf (arena boundary slots).
#[test]
fn paper_default_geometry_roots_agree() {
    let g = BmtGeometry::default();
    let mut golden = GoldenTree::new(g, key());
    let mut arena = BonsaiTree::new(g, key());
    let mut cb = CounterBlock::new();
    for page in [0, 1, 7, 8, 4096, g.leaf_count() - 1] {
        cb.bump((page % 64) as usize);
        golden.update_leaf(page, &cb);
        arena.update_leaf(page, &cb);
    }
    assert_eq!(golden.root(), arena.root());
    assert_eq!(golden.populated_nodes(), arena.populated_nodes());
    assert!(arena.verify_consistent().is_ok());
}
