//! Property-based tests for BMT structure and the WAW-safety argument.

use plp_bmt::{BmtGeometry, BonsaiTree, NodeLabel};
use plp_crypto::{CounterBlock, SipKey};
use proptest::prelude::*;

fn key() -> SipKey {
    SipKey::new(0xa5a5, 0x5a5a)
}

/// An arbitrary small geometry (kept small so exhaustive walks stay
/// cheap) and a leaf index within it.
fn arb_geometry() -> impl Strategy<Value = BmtGeometry> {
    (2u64..=8, 2u32..=5).prop_map(|(arity, levels)| BmtGeometry::new(arity, levels))
}

proptest! {
    #[test]
    fn parent_child_round_trip(g in arb_geometry(), raw in 0u64..500) {
        let node = NodeLabel::new(raw % g.node_count());
        if let Some(p) = g.parent(node) {
            // node is one of p's children
            let found = (0..g.arity()).any(|i| g.child(p, i) == node);
            prop_assert!(found);
            prop_assert_eq!(g.level(p) + 1, g.level(node));
        } else {
            prop_assert!(node.is_root());
        }
    }

    #[test]
    fn update_path_levels_descend(g in arb_geometry(), page_seed in any::<u64>()) {
        let page = page_seed % g.leaf_count();
        let path = g.update_path(g.leaf(page));
        prop_assert_eq!(path.len() as u32, g.levels());
        for (i, node) in path.iter().enumerate() {
            prop_assert_eq!(g.level(*node), g.levels() - i as u32);
        }
    }

    #[test]
    fn lca_is_common_and_lowest(g in arb_geometry(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = g.leaf(s1 % g.leaf_count());
        let b = g.leaf(s2 % g.leaf_count());
        let lca = g.lca(a, b);
        prop_assert_eq!(g.lca(b, a), lca, "LCA must be commutative");

        let anc_a: Vec<_> = std::iter::once(a).chain(g.ancestors(a)).collect();
        let anc_b: Vec<_> = std::iter::once(b).chain(g.ancestors(b)).collect();
        prop_assert!(anc_a.contains(&lca));
        prop_assert!(anc_b.contains(&lca));
        // Lowest: no common ancestor has a deeper level.
        for n in &anc_a {
            if anc_b.contains(n) {
                prop_assert!(g.level(*n) <= g.level(lca));
            }
        }
    }

    #[test]
    fn root_invariant_under_epoch_permutation(
        updates in prop::collection::vec((0u64..64, 0usize..64), 1..12),
        swap_seed in any::<u64>(),
    ) {
        // Apply the same set of (page, slot-bump) updates in two
        // different orders; when the last write per page is identical,
        // the root must be identical (§IV-B1). We make per-page counter
        // state explicit so both orders see identical final counters.
        let g = BmtGeometry::new(8, 3);
        let mut counters: std::collections::HashMap<u64, CounterBlock> =
            std::collections::HashMap::new();
        let mut final_state: Vec<(u64, CounterBlock)> = Vec::new();
        for (page, slot) in &updates {
            let cb = counters.entry(*page % g.leaf_count()).or_default();
            cb.bump(*slot);
        }
        for (page, cb) in &counters {
            final_state.push((*page, cb.clone()));
        }

        let mut order1 = final_state.clone();
        order1.sort_by_key(|(p, _)| *p);
        let mut order2 = order1.clone();
        // Deterministic pseudo-shuffle.
        let n = order2.len();
        for i in 0..n {
            let j = (swap_seed as usize + i * 7) % n;
            order2.swap(i, j);
        }

        let t1 = BonsaiTree::from_counters(g, key(), order1.iter().map(|(p, c)| (*p, c)));
        let t2 = BonsaiTree::from_counters(g, key(), order2.iter().map(|(p, c)| (*p, c)));
        prop_assert_eq!(t1.root(), t2.root());
    }

    #[test]
    fn incremental_tree_stays_consistent(
        updates in prop::collection::vec((0u64..512, 0usize..64), 1..20),
    ) {
        let g = BmtGeometry::new(8, 4);
        let mut tree = BonsaiTree::new(g, key());
        let mut counters: std::collections::HashMap<u64, CounterBlock> =
            std::collections::HashMap::new();
        for (page, slot) in updates {
            let cb = counters.entry(page).or_default();
            cb.bump(slot);
            tree.update_leaf(page, cb);
            prop_assert!(tree.verify_consistent().is_ok());
        }
        prop_assert!(tree
            .verify_counters_against_root(counters.iter().map(|(p, c)| (*p, c)), key())
            .is_ok());
    }

    #[test]
    fn single_node_tamper_breaks_verification(
        pages in prop::collection::vec(0u64..512, 1..8),
        tamper_choice in any::<u64>(),
    ) {
        let g = BmtGeometry::new(8, 4);
        let mut tree = BonsaiTree::new(g, key());
        let mut counters: std::collections::HashMap<u64, CounterBlock> =
            std::collections::HashMap::new();
        for page in &pages {
            let cb = counters.entry(*page).or_default();
            cb.bump(0);
            tree.update_leaf(*page, cb);
        }
        // Tamper with a random *internal* node on some update path.
        let victim_page = pages[(tamper_choice % pages.len() as u64) as usize];
        let path = g.update_path(g.leaf(victim_page));
        let internal = path[1 + (tamper_choice as usize % (path.len() - 1))
            .min(path.len() - 2)];
        tree.set_node(internal, tree.node_value(internal) ^ 0xdead);
        prop_assert!(tree.verify_consistent().is_err());
    }
}
