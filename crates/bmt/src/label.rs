//! Node labelling, ancestry and least-common-ancestor computation.
//!
//! The paper adopts the labelling scheme of Gassend et al. (§V-C): the
//! root is label 0 and the parent of node `n` is `(n - 1) / arity`. The
//! LCA of two leaves is found from the longest common suffix of their
//! update paths — equivalently, by lifting both labels to the same
//! level and walking up in lock-step.

use serde::{Deserialize, Serialize};

use crate::BmtGeometry;

/// A node's label in the breadth-first numbering of the tree (root = 0).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct NodeLabel(u64);

impl NodeLabel {
    /// The root's label.
    pub const ROOT: NodeLabel = NodeLabel(0);

    /// Creates a label from its raw numbering.
    pub const fn new(raw: u64) -> Self {
        NodeLabel(raw)
    }

    /// The raw numbering.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether this is the root.
    pub const fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for NodeLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl BmtGeometry {
    /// The parent of `node`; `None` for the root.
    pub fn parent(&self, node: NodeLabel) -> Option<NodeLabel> {
        if node.is_root() {
            None
        } else {
            Some(NodeLabel((node.raw() - 1) / self.arity()))
        }
    }

    /// The `i`-th child of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= arity` or the child would be below the leaf
    /// level.
    pub fn child(&self, node: NodeLabel, i: u64) -> NodeLabel {
        assert!(i < self.arity(), "child index {i} out of arity");
        let child = NodeLabel(node.raw() * self.arity() + 1 + i);
        assert!(
            self.level(child) <= self.levels(),
            "child below leaf level"
        );
        child
    }

    /// The 1-based level of `node` (root = 1, leaves = `levels`).
    pub fn level(&self, node: NodeLabel) -> u32 {
        let mut level = 1;
        let mut first_next = 1; // first label of level 2
        let mut width = self.arity();
        while node.raw() >= first_next {
            first_next += width;
            width *= self.arity();
            level += 1;
        }
        level
    }

    /// The 0-based level of `node` as a container index
    /// ([`BmtGeometry::level`]` - 1`).
    pub fn level_index(&self, node: NodeLabel) -> usize {
        // lint: allow(narrowing-cast) u32 to usize is lossless on every supported (>=32-bit) target
        (self.level(node) - 1) as usize
    }

    /// The leaf label covering page `page_index`.
    ///
    /// # Panics
    ///
    /// Panics if `page_index` is outside the tree.
    pub fn leaf(&self, page_index: u64) -> NodeLabel {
        assert!(
            page_index < self.leaf_count(),
            "page {page_index} outside tree coverage"
        );
        NodeLabel(self.level_offset(self.levels()) + page_index)
    }

    /// The page index covered by a leaf label.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is not at the leaf level.
    pub fn page_of_leaf(&self, leaf: NodeLabel) -> u64 {
        let offset = self.level_offset(self.levels());
        assert!(
            leaf.raw() >= offset && leaf.raw() < offset + self.leaf_count(),
            "{leaf} is not a leaf"
        );
        leaf.raw() - offset
    }

    /// The update path from `leaf` to the root, inclusive, ordered
    /// leaf-first (the order persists walk the tree in).
    pub fn update_path(&self, leaf: NodeLabel) -> Vec<NodeLabel> {
        let mut path = Vec::with_capacity(self.levels_usize());
        let mut node = leaf;
        path.push(node);
        while let Some(p) = self.parent(node) {
            path.push(p);
            node = p;
        }
        path
    }

    /// All strict ancestors of `node`, nearest first, ending at the
    /// root.
    pub fn ancestors(&self, node: NodeLabel) -> Vec<NodeLabel> {
        let mut out = Vec::new();
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// The least common ancestor of two nodes (§IV-B2: the coalescing
    /// point of two persists). The LCA of a node with itself is itself.
    pub fn lca(&self, a: NodeLabel, b: NodeLabel) -> NodeLabel {
        // Total by construction: the deeper node always has a parent
        // (its level exceeds the other's, so it is not the root), and
        // the lock-step walk meets at the root at the latest.
        let (mut a, mut b) = (a, b);
        let (mut la, mut lb) = (self.level(a), self.level(b));
        while la > lb {
            match self.parent(a) {
                Some(p) => a = p,
                None => return NodeLabel::ROOT,
            }
            la -= 1;
        }
        while lb > la {
            match self.parent(b) {
                Some(p) => b = p,
                None => return NodeLabel::ROOT,
            }
            lb -= 1;
        }
        while a != b {
            match (self.parent(a), self.parent(b)) {
                (Some(pa), Some(pb)) => (a, b) = (pa, pb),
                _ => return NodeLabel::ROOT,
            }
        }
        a
    }

    /// Number of update-path node updates *saved* when persists to `a`
    /// and `b` coalesce at their LCA: the shared suffix — LCA through
    /// root — is walked once instead of twice (Fig. 5: δ1/δ2 coalescing
    /// at X31 turns 8 node updates into 5, saving the 3 shared nodes).
    pub fn coalesced_savings(&self, a: NodeLabel, b: NodeLabel) -> u32 {
        let lca = self.lca(a, b);
        // The shared suffix spans levels 1..=level(LCA).
        self.level(lca)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> BmtGeometry {
        // Fig. 1's shape: 8-ary, 4 levels (X1 root .. X4 leaves).
        BmtGeometry::new(8, 4)
    }

    #[test]
    fn parent_child_inverse() {
        let g = g();
        let n = NodeLabel::new(3);
        for i in 0..8 {
            let c = g.child(n, i);
            assert_eq!(g.parent(c), Some(n));
        }
        assert_eq!(g.parent(NodeLabel::ROOT), None);
    }

    #[test]
    fn levels_match_fig1() {
        let g = g();
        assert_eq!(g.level(NodeLabel::ROOT), 1);
        assert_eq!(g.level(NodeLabel::new(1)), 2);
        assert_eq!(g.level(NodeLabel::new(8)), 2);
        assert_eq!(g.level(NodeLabel::new(9)), 3);
        assert_eq!(g.level(g.leaf(0)), 4);
        assert_eq!(g.level(g.leaf(511)), 4);
    }

    #[test]
    fn fig1_update_paths_intersect_at_root_only() {
        // Persist δ1 updates leaf X4-1 (page 0); δ2 updates X4-512
        // (page 511). Their paths share only the root.
        let g = g();
        let p1 = g.update_path(g.leaf(0));
        let p2 = g.update_path(g.leaf(511));
        assert_eq!(p1.len(), 4);
        assert_eq!(p2.len(), 4);
        let shared: Vec<_> = p1.iter().filter(|n| p2.contains(n)).collect();
        assert_eq!(shared, vec![&NodeLabel::ROOT]);
        assert_eq!(g.lca(g.leaf(0), g.leaf(511)), NodeLabel::ROOT);
    }

    #[test]
    fn fig1_nearby_leaves_share_lower_lca() {
        // The paper's example: a persist at X4-2 (page 1) and δ2 at
        // X4-512 share X3-1... actually page 1 shares its level-3
        // ancestor with page 0, not page 511. Check the text's example:
        // X4-2 and leaf X4-1 share the level-3 node.
        let g = g();
        let lca = g.lca(g.leaf(0), g.leaf(1));
        assert_eq!(g.level(lca), 3);
        // Pages in the same 64-page group share a level-2 ancestor.
        let lca2 = g.lca(g.leaf(0), g.leaf(63));
        assert_eq!(g.level(lca2), 2);
    }

    #[test]
    fn lca_of_self_is_self() {
        let g = g();
        let n = g.leaf(17);
        assert_eq!(g.lca(n, n), n);
    }

    #[test]
    fn lca_with_ancestor_is_ancestor() {
        let g = g();
        let leaf = g.leaf(100);
        let anc = g.ancestors(leaf)[1];
        assert_eq!(g.lca(leaf, anc), anc);
        assert_eq!(g.lca(anc, leaf), anc);
    }

    #[test]
    fn leaf_page_round_trip() {
        let g = g();
        for page in [0u64, 1, 63, 511] {
            assert_eq!(g.page_of_leaf(g.leaf(page)), page);
        }
    }

    #[test]
    fn ancestors_end_at_root() {
        let g = g();
        let a = g.ancestors(g.leaf(5));
        assert_eq!(a.len(), 3);
        assert_eq!(*a.last().unwrap(), NodeLabel::ROOT);
    }

    #[test]
    fn coalesced_savings_counts_shared_suffix() {
        let g = g();
        // LCA at level 3 -> shared suffix {X3, X2, X1} walked once: 3
        // node updates saved (Fig. 5's δ1/δ2 pair).
        assert_eq!(g.coalesced_savings(g.leaf(0), g.leaf(1)), 3);
        // LCA at root -> only the root update is saved.
        assert_eq!(g.coalesced_savings(g.leaf(0), g.leaf(511)), 1);
    }

    #[test]
    #[should_panic(expected = "outside tree")]
    fn leaf_bounds_checked() {
        let _ = g().leaf(512);
    }

    #[test]
    fn display() {
        assert_eq!(NodeLabel::new(7).to_string(), "n7");
    }
}
