//! Node labelling, ancestry and least-common-ancestor computation.
//!
//! The paper adopts the labelling scheme of Gassend et al. (§V-C): the
//! root is label 0 and the parent of node `n` is `(n - 1) / arity`. The
//! LCA of two leaves is found from the longest common suffix of their
//! update paths — equivalently, by lifting both labels to the same
//! level and walking up in lock-step.

use serde::{Deserialize, Serialize};

use crate::BmtGeometry;

/// A node's label in the breadth-first numbering of the tree (root = 0).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct NodeLabel(u64);

impl NodeLabel {
    /// The root's label.
    pub const ROOT: NodeLabel = NodeLabel(0);

    /// Creates a label from its raw numbering.
    pub const fn new(raw: u64) -> Self {
        NodeLabel(raw)
    }

    /// The raw numbering.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether this is the root.
    pub const fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for NodeLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl BmtGeometry {
    /// The parent of `node`; `None` for the root.
    pub fn parent(&self, node: NodeLabel) -> Option<NodeLabel> {
        if node.is_root() {
            None
        } else {
            Some(NodeLabel((node.raw() - 1) / self.arity()))
        }
    }

    /// The `i`-th child of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= arity` or the child would be below the leaf
    /// level.
    pub fn child(&self, node: NodeLabel, i: u64) -> NodeLabel {
        assert!(i < self.arity(), "child index {i} out of arity");
        let child = NodeLabel(node.raw() * self.arity() + 1 + i);
        assert!(
            self.level(child) <= self.levels(),
            "child below leaf level"
        );
        child
    }

    /// The 1-based level of `node` (root = 1, leaves = `levels`).
    ///
    /// A node at level `l` has `raw ∈ [(aˡ⁻¹−1)/(a−1), (aˡ−1)/(a−1))`,
    /// so `raw·(a−1)+1 ∈ [aˡ⁻¹, aˡ)` and the level is one integer
    /// logarithm — a single `lzcnt` for power-of-two arities — instead
    /// of the per-level accumulation loop this replaced. Engines call
    /// this once per node update, so it sits on the persist hot path.
    pub fn level(&self, node: NodeLabel) -> u32 {
        let x = node
            .raw()
            .saturating_mul(self.arity() - 1)
            .saturating_add(1);
        if self.arity().is_power_of_two() {
            x.ilog2() / self.arity().ilog2() + 1
        } else {
            x.ilog(self.arity()) + 1
        }
    }

    /// The 0-based level of `node` as a container index
    /// ([`BmtGeometry::level`]` - 1`).
    pub fn level_index(&self, node: NodeLabel) -> usize {
        (self.level(node) - 1) as usize
    }

    /// The leaf label covering page `page_index`.
    ///
    /// # Panics
    ///
    /// Panics if `page_index` is outside the tree.
    pub fn leaf(&self, page_index: u64) -> NodeLabel {
        assert!(
            page_index < self.leaf_count(),
            "page {page_index} outside tree coverage"
        );
        NodeLabel(self.level_offset(self.levels()) + page_index)
    }

    /// The page index covered by a leaf label.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is not at the leaf level.
    pub fn page_of_leaf(&self, leaf: NodeLabel) -> u64 {
        let offset = self.level_offset(self.levels());
        assert!(
            leaf.raw() >= offset && leaf.raw() < offset + self.leaf_count(),
            "{leaf} is not a leaf"
        );
        leaf.raw() - offset
    }

    /// The update path from `leaf` to the root, inclusive, ordered
    /// leaf-first (the order persists walk the tree in).
    ///
    /// Allocates a fresh `Vec`; hot paths use
    /// [`BmtGeometry::update_path_into`] with a reused scratch buffer
    /// instead.
    pub fn update_path(&self, leaf: NodeLabel) -> Vec<NodeLabel> {
        let mut path = Vec::with_capacity(self.levels_usize());
        self.update_path_into(leaf, &mut path);
        path
    }

    /// Writes the leaf-first update path of `leaf` into `path`
    /// (cleared first) without allocating once `path` has capacity —
    /// the scratch-buffer form engines thread through
    /// `EngineCtx::walk`.
    pub fn update_path_into(&self, leaf: NodeLabel, path: &mut Vec<NodeLabel>) {
        path.clear();
        let mut node = leaf;
        path.push(node);
        while let Some(p) = self.parent(node) {
            path.push(p);
            node = p;
        }
    }

    /// Allocation-free leaf-to-root walk: yields each node on `node`'s
    /// update path together with its 1-based level, `node` first and
    /// root last. This is the persist hot path's walk — engines consume
    /// the `(label, level)` pairs directly instead of materializing the
    /// path into a `Vec` and re-deriving each node's level.
    pub fn walk_up(&self, node: NodeLabel) -> impl Iterator<Item = (NodeLabel, u32)> {
        let arity = self.arity();
        let mut cur = Some((node.raw(), self.level(node)));
        std::iter::from_fn(move || {
            let (raw, level) = cur?;
            cur = if raw == 0 {
                None
            } else {
                Some(((raw - 1) / arity, level - 1))
            };
            Some((NodeLabel::new(raw), level))
        })
    }

    /// The ancestor of `node` at 1-based `level` (which must not be
    /// deeper than `node`'s own level), in O(1) index arithmetic: the
    /// in-level index of the ancestor `k` levels up is the node's
    /// in-level index divided by `arity^k`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or below `node`'s level.
    pub fn ancestor_at_level(&self, node: NodeLabel, level: u32) -> NodeLabel {
        let node_level = self.level(node);
        assert!(
            (1..=node_level).contains(&level),
            "level {level} is not an ancestor level of a level-{node_level} node"
        );
        let idx = node.raw() - self.level_offset(node_level);
        let lifted = idx / self.arity().pow(node_level - level);
        NodeLabel(self.level_offset(level) + lifted)
    }

    /// All strict ancestors of `node`, nearest first, ending at the
    /// root.
    pub fn ancestors(&self, node: NodeLabel) -> Vec<NodeLabel> {
        let mut out = Vec::new();
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// The least common ancestor of two nodes (§IV-B2: the coalescing
    /// point of two persists). The LCA of a node with itself is itself.
    ///
    /// Index arithmetic instead of the lock-step parent walk this
    /// replaced: both nodes lift to their common level by one division,
    /// and for power-of-two arities the number of remaining shared
    /// divisions falls out of the highest differing bit of the two
    /// in-level indices — O(1), which is what lets the coalescing
    /// engine compute a junction per persist without touching memory.
    pub fn lca(&self, a: NodeLabel, b: NodeLabel) -> NodeLabel {
        let (la, lb) = (self.level(a), self.level(b));
        let common = la.min(lb);
        let mut ia = (a.raw() - self.level_offset(la)) / self.arity().pow(la - common);
        let mut ib = (b.raw() - self.level_offset(lb)) / self.arity().pow(lb - common);
        let mut level = common;
        if self.arity().is_power_of_two() {
            let shift = self.arity().ilog2();
            let diff_bits = 64 - (ia ^ ib).leading_zeros();
            let lifts = diff_bits.div_ceil(shift);
            ia >>= lifts * shift;
            level -= lifts;
        } else {
            while ia != ib {
                ia /= self.arity();
                ib /= self.arity();
                level -= 1;
            }
        }
        NodeLabel(self.level_offset(level) + ia)
    }

    /// Number of update-path node updates *saved* when persists to `a`
    /// and `b` coalesce at their LCA: the shared suffix — LCA through
    /// root — is walked once instead of twice (Fig. 5: δ1/δ2 coalescing
    /// at X31 turns 8 node updates into 5, saving the 3 shared nodes).
    pub fn coalesced_savings(&self, a: NodeLabel, b: NodeLabel) -> u32 {
        let lca = self.lca(a, b);
        // The shared suffix spans levels 1..=level(LCA).
        self.level(lca)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> BmtGeometry {
        // Fig. 1's shape: 8-ary, 4 levels (X1 root .. X4 leaves).
        BmtGeometry::new(8, 4)
    }

    #[test]
    fn walk_up_matches_update_path_with_levels() {
        let g = g();
        for page in [0, 7, 311, 511] {
            let leaf = g.leaf(page);
            let pairs: Vec<_> = g.walk_up(leaf).collect();
            let path = g.update_path(leaf);
            assert_eq!(pairs.len(), path.len());
            for (i, (label, level)) in pairs.iter().enumerate() {
                assert_eq!(*label, path[i]);
                assert_eq!(*level, g.level(*label));
            }
            assert_eq!(pairs.last(), Some(&(NodeLabel::ROOT, 1)));
        }
    }

    #[test]
    fn parent_child_inverse() {
        let g = g();
        let n = NodeLabel::new(3);
        for i in 0..8 {
            let c = g.child(n, i);
            assert_eq!(g.parent(c), Some(n));
        }
        assert_eq!(g.parent(NodeLabel::ROOT), None);
    }

    #[test]
    fn levels_match_fig1() {
        let g = g();
        assert_eq!(g.level(NodeLabel::ROOT), 1);
        assert_eq!(g.level(NodeLabel::new(1)), 2);
        assert_eq!(g.level(NodeLabel::new(8)), 2);
        assert_eq!(g.level(NodeLabel::new(9)), 3);
        assert_eq!(g.level(g.leaf(0)), 4);
        assert_eq!(g.level(g.leaf(511)), 4);
    }

    #[test]
    fn fig1_update_paths_intersect_at_root_only() {
        // Persist δ1 updates leaf X4-1 (page 0); δ2 updates X4-512
        // (page 511). Their paths share only the root.
        let g = g();
        let p1 = g.update_path(g.leaf(0));
        let p2 = g.update_path(g.leaf(511));
        assert_eq!(p1.len(), 4);
        assert_eq!(p2.len(), 4);
        let shared: Vec<_> = p1.iter().filter(|n| p2.contains(n)).collect();
        assert_eq!(shared, vec![&NodeLabel::ROOT]);
        assert_eq!(g.lca(g.leaf(0), g.leaf(511)), NodeLabel::ROOT);
    }

    #[test]
    fn fig1_nearby_leaves_share_lower_lca() {
        // The paper's example: a persist at X4-2 (page 1) and δ2 at
        // X4-512 share X3-1... actually page 1 shares its level-3
        // ancestor with page 0, not page 511. Check the text's example:
        // X4-2 and leaf X4-1 share the level-3 node.
        let g = g();
        let lca = g.lca(g.leaf(0), g.leaf(1));
        assert_eq!(g.level(lca), 3);
        // Pages in the same 64-page group share a level-2 ancestor.
        let lca2 = g.lca(g.leaf(0), g.leaf(63));
        assert_eq!(g.level(lca2), 2);
    }

    #[test]
    fn lca_of_self_is_self() {
        let g = g();
        let n = g.leaf(17);
        assert_eq!(g.lca(n, n), n);
    }

    #[test]
    fn lca_with_ancestor_is_ancestor() {
        let g = g();
        let leaf = g.leaf(100);
        let anc = g.ancestors(leaf)[1];
        assert_eq!(g.lca(leaf, anc), anc);
        assert_eq!(g.lca(anc, leaf), anc);
    }

    #[test]
    fn leaf_page_round_trip() {
        let g = g();
        for page in [0u64, 1, 63, 511] {
            assert_eq!(g.page_of_leaf(g.leaf(page)), page);
        }
    }

    #[test]
    fn ancestors_end_at_root() {
        let g = g();
        let a = g.ancestors(g.leaf(5));
        assert_eq!(a.len(), 3);
        assert_eq!(*a.last().unwrap(), NodeLabel::ROOT);
    }

    #[test]
    fn coalesced_savings_counts_shared_suffix() {
        let g = g();
        // LCA at level 3 -> shared suffix {X3, X2, X1} walked once: 3
        // node updates saved (Fig. 5's δ1/δ2 pair).
        assert_eq!(g.coalesced_savings(g.leaf(0), g.leaf(1)), 3);
        // LCA at root -> only the root update is saved.
        assert_eq!(g.coalesced_savings(g.leaf(0), g.leaf(511)), 1);
    }

    #[test]
    fn ancestor_at_level_matches_parent_walk() {
        let g = g();
        for page in [0u64, 1, 63, 100, 511] {
            let leaf = g.leaf(page);
            let mut node = leaf;
            for level in (1..=g.levels()).rev() {
                assert_eq!(g.ancestor_at_level(leaf, level), node, "page {page} level {level}");
                if let Some(p) = g.parent(node) {
                    node = p;
                }
            }
        }
        // A node is its own ancestor at its own level.
        let mid = NodeLabel::new(5);
        assert_eq!(g.ancestor_at_level(mid, 2), mid);
        assert_eq!(g.ancestor_at_level(mid, 1), NodeLabel::ROOT);
    }

    #[test]
    #[should_panic(expected = "not an ancestor level")]
    fn ancestor_below_node_rejected() {
        let g = g();
        let _ = g.ancestor_at_level(NodeLabel::ROOT, 2);
    }

    #[test]
    fn update_path_into_reuses_buffer() {
        let g = g();
        let mut scratch = Vec::new();
        g.update_path_into(g.leaf(9), &mut scratch);
        assert_eq!(scratch, g.update_path(g.leaf(9)));
        let cap = scratch.capacity();
        g.update_path_into(g.leaf(200), &mut scratch);
        assert_eq!(scratch, g.update_path(g.leaf(200)));
        assert_eq!(scratch.capacity(), cap, "refill must not reallocate");
    }

    #[test]
    fn non_power_of_two_arity_agrees_with_parent_walk() {
        // The lca/level fast paths branch on power-of-two arity; pin
        // the general-arity branch against first principles.
        let g = BmtGeometry::new(3, 4);
        for raw in 0..g.node_count() {
            let node = NodeLabel::new(raw);
            let mut expect = 1;
            let mut first_next = 1;
            let mut width = g.arity();
            while raw >= first_next {
                first_next += width;
                width *= g.arity();
                expect += 1;
            }
            assert_eq!(g.level(node), expect, "level of n{raw}");
        }
        let (a, b) = (g.leaf(0), g.leaf(2));
        assert_eq!(g.lca(a, b), g.parent(a).unwrap());
        assert_eq!(g.lca(g.leaf(0), g.leaf(26)), NodeLabel::ROOT);
        assert_eq!(g.lca(a, a), a);
    }

    #[test]
    #[should_panic(expected = "outside tree")]
    fn leaf_bounds_checked() {
        let _ = g().leaf(512);
    }

    #[test]
    fn display() {
        assert_eq!(NodeLabel::new(7).to_string(), "n7");
    }
}
