//! Tree geometry: arity, level count and label arithmetic bases.

use plp_events::addr::PAGE_SIZE;
use serde::{Deserialize, Serialize};

/// The shape of a Bonsai Merkle Tree: a complete `arity`-ary tree with
/// `levels` node levels.
///
/// Levels are numbered the way the paper's PTT does (§V, Fig. 6):
/// **level 1 is the root**, level `levels` is the leaves. Each leaf
/// covers one 4 KiB encryption page's counter block.
///
/// # Example
///
/// ```
/// use plp_bmt::BmtGeometry;
///
/// // The paper's default: 8-ary, 9 levels.
/// let g = BmtGeometry::new(8, 9);
/// assert_eq!(g.leaf_count(), 8u64.pow(8));
/// assert_eq!(g.levels(), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BmtGeometry {
    arity: u64,
    levels: u32,
}

impl BmtGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if `arity < 2` or `levels == 0`, or if the tree would not
    /// fit in 64-bit labels.
    pub fn new(arity: u64, levels: u32) -> Self {
        assert!(arity >= 2, "tree arity must be at least 2");
        assert!(levels >= 1, "tree must have at least one level");
        // The total node count must fit comfortably in u64.
        // lint: allow(no-panic-lib) documented constructor validation of a static configuration
        let leaves = arity.checked_pow(levels - 1).expect("tree too large");
        leaves
            .checked_mul(arity)
            .and_then(|x| x.checked_div(arity - 1))
            // lint: allow(no-panic-lib) documented constructor validation of a static configuration
            .expect("tree too large");
        BmtGeometry { arity, levels }
    }

    /// The geometry covering `memory_bytes` of protected memory with
    /// the given arity: the smallest complete tree whose leaves cover
    /// all encryption pages.
    ///
    /// Note the paper quotes *9* levels for its 8 GB memory; a complete
    /// 8-ary tree over 8 GB/4 KiB = 2²¹ pages needs 8 node levels, so
    /// the paper evidently counts one more stage (the counter-block MAC
    /// itself). Use [`BmtGeometry::new`]`(8, 9)` to match the paper's
    /// stated update-path length, or this constructor for the minimal
    /// covering tree.
    ///
    /// # Panics
    ///
    /// Panics if `memory_bytes` is zero or `arity < 2`.
    pub fn for_memory(memory_bytes: u64, arity: u64) -> Self {
        assert!(memory_bytes > 0, "memory size must be positive");
        let pages = memory_bytes.div_ceil(PAGE_SIZE as u64).max(1);
        let mut levels = 1;
        let mut leaves = 1u64;
        while leaves < pages {
            leaves = leaves.saturating_mul(arity);
            levels += 1;
        }
        BmtGeometry::new(arity, levels)
    }

    /// The tree arity.
    pub fn arity(&self) -> u64 {
        self.arity
    }

    /// Number of node levels (root = level 1, leaves = level
    /// [`BmtGeometry::levels`]).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// [`BmtGeometry::levels`] as a container length.
    pub fn levels_usize(&self) -> usize {
        self.levels as usize
    }

    /// [`BmtGeometry::arity`] as a container length. Arities large
    /// enough to truncate on a 32-bit target are rejected by
    /// [`BmtGeometry::new`]'s node-count overflow check long before.
    pub fn arity_usize(&self) -> usize {
        // lint: allow(narrowing-cast) arity is validated small by the constructor
        self.arity as usize
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> u64 {
        self.arity.pow(self.levels - 1)
    }

    /// Total number of nodes in the tree.
    pub fn node_count(&self) -> u64 {
        // (arity^levels - 1) / (arity - 1)
        (self.leaf_count() * self.arity - 1) / (self.arity - 1)
    }

    /// First label (see [`crate::NodeLabel`]) at 1-based `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or exceeds [`BmtGeometry::levels`].
    pub fn level_offset(&self, level: u32) -> u64 {
        assert!(
            (1..=self.levels).contains(&level),
            "level {level} out of 1..={}",
            self.levels
        );
        (self.arity.pow(level - 1) - 1) / (self.arity - 1)
    }

    /// Number of nodes at 1-based `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn level_width(&self, level: u32) -> u64 {
        assert!(
            (1..=self.levels).contains(&level),
            "level {level} out of 1..={}",
            self.levels
        );
        self.arity.pow(level - 1)
    }

    /// The per-level container slot for 1-based `level` — the index
    /// into level-major arrays such as the tree's default table.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `level` is out of range.
    pub fn level_slot(&self, level: u32) -> usize {
        debug_assert!(
            (1..=self.levels).contains(&level),
            "level {level} out of 1..={}",
            self.levels
        );
        (level - 1) as usize
    }

    /// Bytes of memory protected by this tree (leaves × page size).
    pub fn covered_bytes(&self) -> u64 {
        self.leaf_count() * PAGE_SIZE as u64
    }
}

impl Default for BmtGeometry {
    /// The paper's default tree: 8-ary, 9 levels.
    fn default() -> Self {
        BmtGeometry::new(8, 9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default() {
        let g = BmtGeometry::default();
        assert_eq!(g.arity(), 8);
        assert_eq!(g.levels(), 9);
        assert_eq!(g.leaf_count(), 16_777_216);
    }

    #[test]
    fn node_counts() {
        let g = BmtGeometry::new(2, 3);
        assert_eq!(g.leaf_count(), 4);
        assert_eq!(g.node_count(), 7);
        let g8 = BmtGeometry::new(8, 2);
        assert_eq!(g8.node_count(), 9);
    }

    #[test]
    fn level_offsets_and_widths() {
        let g = BmtGeometry::new(8, 4);
        assert_eq!(g.level_offset(1), 0);
        assert_eq!(g.level_offset(2), 1);
        assert_eq!(g.level_offset(3), 9);
        assert_eq!(g.level_offset(4), 73);
        assert_eq!(g.level_width(1), 1);
        assert_eq!(g.level_width(4), 512);
    }

    #[test]
    fn for_memory_covers() {
        // 8 GB at 4 KiB pages = 2^21 leaves -> 8 node levels for arity 8.
        let g = BmtGeometry::for_memory(8 << 30, 8);
        assert_eq!(g.levels(), 8);
        assert!(g.covered_bytes() >= 8 << 30);
        // Tiny memory: single page, single-node tree.
        let t = BmtGeometry::for_memory(100, 8);
        assert_eq!(t.levels(), 1);
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_unary() {
        let _ = BmtGeometry::new(1, 3);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn level_bounds_checked() {
        let _ = BmtGeometry::new(8, 3).level_offset(4);
    }
}
