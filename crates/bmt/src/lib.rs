//! Bonsai Merkle Tree structures for secure NVMM.
//!
//! This crate provides the integrity-tree substrate of the paper:
//!
//! * [`BmtGeometry`] — tree shape, level arithmetic (root = level 1, as
//!   the paper's PTT numbers them), and the Gassend-style node
//!   labelling the paper adopts for coalescing (§V-C): root = 0,
//!   `parent(n) = (n-1)/arity`;
//! * [`NodeLabel`] — node identity plus ancestry, update-path and
//!   least-common-ancestor (LCA) computation;
//! * [`BonsaiTree`] — the sparse *functional* tree over split-counter
//!   blocks, with per-level default values so 16-million-leaf trees
//!   cost only their touched working set.
//!
//! Timing (who updates which node when) is the business of the engine
//! models in `plp-core`; this crate answers purely structural and
//! functional questions, including the crash-recovery check "do these
//! persisted counters hash to the persisted root?".
//!
//! # Example
//!
//! ```
//! use plp_bmt::{BmtGeometry, BonsaiTree};
//! use plp_crypto::{CounterBlock, SipKey};
//!
//! let g = BmtGeometry::new(8, 4);
//! // Two persists to nearby pages share a level-3 LCA (Fig. 1).
//! let lca = g.lca(g.leaf(0), g.leaf(1));
//! assert_eq!(g.level(lca), 3);
//!
//! let mut tree = BonsaiTree::new(g, SipKey::new(1, 2));
//! let mut cb = CounterBlock::new();
//! cb.bump(0);
//! tree.update_leaf(0, &cb);
//! assert!(tree.verify_consistent().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod geometry;
mod label;
mod tree;

pub use geometry::BmtGeometry;
pub use label::NodeLabel;
pub use tree::{BonsaiTree, IntegrityError, NodeValue};
