//! The arena-backed functional Bonsai Merkle Tree.
//!
//! The tree covers one counter block per leaf (one 4 KiB encryption
//! page). Node storage is a dense, level-major arena indexed directly
//! by the breadth-first label — the labelling of `crate::label` makes
//! `label.raw()` *itself* the arena index, so a node lookup is one
//! bitmap test and one array read with no hashing and no probing.
//! Only nodes that differ from the all-fresh-counters state are
//! *occupied*; every level has a memoized *default* value, so an
//! 8-ary, 9-level tree (16.7M leaves) still behaves sparsely: the
//! arena's zeroed pages stay untouched (and physically unmapped, via
//! the allocator's zeroed-page path) until a node is first written.
//!
//! This is the *functional* half of the BMT: it answers "what is the
//! root after these counter updates" and "is this tree internally
//! consistent". The *timing* half (who updates which node when, and in
//! what order) lives in the engine models of `plp-core`.

use plp_crypto::{CounterBlock, SipKey};
use serde::{Deserialize, Serialize};

use crate::{BmtGeometry, NodeLabel};

/// An 8-byte BMT node value ("64B to 8B hash", Fig. 1).
pub type NodeValue = u64;

/// A `u64` arena index as a container index. The arena length is the
/// geometry's node count, which [`BmtGeometry::new`] validated fits.
fn arena_slot(raw: u64) -> usize {
    // lint: allow(narrowing-cast) arena indices are node labels, validated to fit by the geometry constructor
    raw as usize
}

/// Dense, level-major node storage: one value slot per node label plus
/// an occupancy bitmap. Unoccupied slots read as the level default —
/// the lazy-default semantics the old map-backed store provided, kept
/// without the per-node hash-and-probe.
#[derive(Clone, Serialize, Deserialize)]
struct NodeArena {
    /// One slot per node, indexed by `NodeLabel::raw`.
    values: Vec<NodeValue>,
    /// One bit per node: whether `values[i]` holds an explicit value.
    occupied: Vec<u64>,
    /// Number of set occupancy bits.
    populated: usize,
}

impl NodeArena {
    fn new(node_count: u64) -> Self {
        let len = arena_slot(node_count);
        NodeArena {
            // `vec![0; n]` takes the allocator's zeroed-page path, so
            // the arena costs address space, not resident memory,
            // until nodes are actually written.
            values: vec![0; len],
            occupied: vec![0; len.div_ceil(64)],
            populated: 0,
        }
    }

    #[inline]
    fn get(&self, label: NodeLabel) -> Option<NodeValue> {
        let i = arena_slot(label.raw());
        if self.occupied[i >> 6] & (1u64 << (i & 63)) != 0 {
            Some(self.values[i])
        } else {
            None
        }
    }

    #[inline]
    fn set(&mut self, label: NodeLabel, value: NodeValue) {
        let i = arena_slot(label.raw());
        let (word, bit) = (i >> 6, 1u64 << (i & 63));
        if self.occupied[word] & bit == 0 {
            self.occupied[word] |= bit;
            self.populated += 1;
        }
        self.values[i] = value;
    }

    /// Occupied labels in descending raw order — deepest level first,
    /// which is the order the consistency check wants.
    fn labels_deepest_first(&self) -> impl Iterator<Item = NodeLabel> + '_ {
        self.occupied
            .iter()
            .enumerate()
            .rev()
            .filter(|(_, word)| **word != 0)
            .flat_map(|(w, word)| {
                (0u64..64)
                    .rev()
                    .filter(move |bit| word & (1u64 << bit) != 0)
                    .map(move |bit| NodeLabel::new((w as u64) * 64 + bit))
            })
    }
}

impl std::fmt::Debug for NodeArena {
    /// Compact: a 19M-slot arena must not dump into debug output.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeArena")
            .field("slots", &self.values.len())
            .field("populated", &self.populated)
            .finish()
    }
}

/// A keyed Bonsai Merkle Tree over counter blocks, stored in a dense
/// level-major arena with lazy per-level defaults.
///
/// # Example
///
/// ```
/// use plp_bmt::{BmtGeometry, BonsaiTree};
/// use plp_crypto::{CounterBlock, SipKey};
///
/// let geometry = BmtGeometry::new(8, 4);
/// let mut tree = BonsaiTree::new(geometry, SipKey::new(1, 2));
/// let root_before = tree.root();
///
/// let mut cb = CounterBlock::new();
/// cb.bump(0);
/// let root_after = tree.update_leaf(5, &cb);
/// assert_eq!(root_after, tree.root());
/// assert_ne!(tree.root(), root_before);
///
/// // The explicit update path, for callers that want the labels:
/// let mut path = Vec::new();
/// tree.update_leaf_into(5, &cb, &mut path);
/// assert_eq!(path.len(), 4); // leaf, two internals, root
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BonsaiTree {
    geometry: BmtGeometry,
    key: SipKey,
    store: NodeArena,
    /// Default node value per 1-based level (index `level - 1`).
    defaults: Vec<NodeValue>,
    /// Reusable arity-sized buffer for gathering a node's children
    /// before hashing — the allocation the per-update child `Vec`s of
    /// the map-backed store used to pay nine times per persist.
    child_scratch: Vec<NodeValue>,
}

impl BonsaiTree {
    /// Creates the all-fresh tree (every page's counter block new).
    pub fn new(geometry: BmtGeometry, master_key: SipKey) -> Self {
        let key = master_key.derive("bmt");
        let levels = geometry.levels_usize();
        let mut defaults = vec![0; levels];
        let fresh = CounterBlock::new();
        defaults[levels - 1] = Self::leaf_value_with(key, &fresh);
        for level in (1..levels).rev() {
            let children = vec![defaults[level]; geometry.arity_usize()];
            defaults[level - 1] = Self::internal_value_with(key, &children);
        }
        BonsaiTree {
            geometry,
            key,
            store: NodeArena::new(geometry.node_count()),
            defaults,
            child_scratch: vec![0; geometry.arity_usize()],
        }
    }

    /// Rebuilds a tree from a set of persisted counter blocks — the
    /// crash-recovery path ("recovering from a crash requires
    /// recomputing the BMT root", §III).
    pub fn from_counters<'a>(
        geometry: BmtGeometry,
        master_key: SipKey,
        counters: impl IntoIterator<Item = (u64, &'a CounterBlock)>,
    ) -> Self {
        let mut tree = BonsaiTree::new(geometry, master_key);
        for (page, cb) in counters {
            tree.update_leaf(page, cb);
        }
        tree
    }

    /// The tree geometry.
    pub fn geometry(&self) -> BmtGeometry {
        self.geometry
    }

    /// The current root value.
    pub fn root(&self) -> NodeValue {
        self.node_value(NodeLabel::ROOT)
    }

    /// The value of any node (stored or default).
    pub fn node_value(&self, label: NodeLabel) -> NodeValue {
        match self.store.get(label) {
            Some(v) => v,
            None => self.defaults[self.geometry.level_index(label)],
        }
    }

    /// Number of explicitly stored (non-default) nodes.
    pub fn populated_nodes(&self) -> usize {
        self.store.populated
    }

    /// Number of explicitly stored nodes at levels *shallower* than
    /// `floor` (1-based; levels `1..floor`) — the slice a scheme that
    /// durably persists levels `floor..=levels` must rebuild after a
    /// crash. `floor == 1` means the whole tree is durable: nothing to
    /// rebuild.
    pub fn populated_nodes_above(&self, floor: u32) -> usize {
        let cutoff = self.geometry.level_offset(floor);
        self.store
            .labels_deepest_first()
            .filter(|l| l.raw() < cutoff)
            .count()
    }

    fn leaf_value_with(key: SipKey, cb: &CounterBlock) -> NodeValue {
        key.hash_words(&cb.content_words())
    }

    fn internal_value_with(key: SipKey, children: &[NodeValue]) -> NodeValue {
        key.hash_words(children)
    }

    /// The leaf hash for a counter block under this tree's key.
    pub fn leaf_value(&self, cb: &CounterBlock) -> NodeValue {
        Self::leaf_value_with(self.key, cb)
    }

    fn recompute_internal(&self, label: NodeLabel) -> NodeValue {
        let children: Vec<NodeValue> = (0..self.geometry.arity())
            .map(|i| self.node_value(self.geometry.child(label, i)))
            .collect();
        Self::internal_value_with(self.key, &children)
    }

    /// Applies a counter-block update at `page`, recomputing the leaf
    /// and every ancestor up to the root, and returns the new root
    /// value. Allocation-free: children gather into the tree's own
    /// scratch buffer and ancestors come from index arithmetic (the
    /// children of node `n` are the contiguous labels
    /// `n·arity+1 ..= n·arity+arity`).
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the tree's coverage.
    pub fn update_leaf(&mut self, page: u64, cb: &CounterBlock) -> NodeValue {
        let leaf = self.geometry.leaf(page);
        let leaf_val = Self::leaf_value_with(self.key, cb);
        let BonsaiTree {
            geometry,
            key,
            store,
            defaults,
            child_scratch,
        } = self;
        store.set(leaf, leaf_val);
        let arity = geometry.arity();
        let mut cur = leaf.raw();
        let mut val = leaf_val;
        // The leaf sits at level `levels`; each parent is one shallower.
        let mut child_level = geometry.levels();
        while cur != 0 {
            let parent = (cur - 1) / arity;
            let first_child = parent * arity + 1;
            let child_default = defaults[geometry.level_slot(child_level)];
            for (i, slot) in child_scratch.iter_mut().enumerate() {
                *slot = store
                    .get(NodeLabel::new(first_child + i as u64))
                    .unwrap_or(child_default);
            }
            val = Self::internal_value_with(*key, child_scratch);
            store.set(NodeLabel::new(parent), val);
            cur = parent;
            child_level -= 1;
        }
        val
    }

    /// Like [`BonsaiTree::update_leaf`], but also records the update
    /// path as `(label, new_value)` pairs ordered leaf-first into
    /// `path` (cleared first) — exactly the per-level work the timing
    /// engines schedule (one MAC computation per entry). Returns the
    /// new root value.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the tree's coverage.
    pub fn update_leaf_into(
        &mut self,
        page: u64,
        cb: &CounterBlock,
        path: &mut Vec<(NodeLabel, NodeValue)>,
    ) -> NodeValue {
        let root = self.update_leaf(page, cb);
        path.clear();
        let mut node = self.geometry.leaf(page);
        loop {
            path.push((node, self.node_value(node)));
            match self.geometry.parent(node) {
                Some(p) => node = p,
                None => break,
            }
        }
        root
    }

    /// Overwrites a single node value without updating ancestors.
    ///
    /// This models *partial* persistence (a crash between tuple
    /// persists) and active tampering; the integrity checks exist to
    /// catch exactly the states this method can create.
    pub fn set_node(&mut self, label: NodeLabel, value: NodeValue) {
        self.store.set(label, value);
    }

    /// Checks that every stored internal node equals the hash of its
    /// children.
    ///
    /// # Errors
    ///
    /// Returns the lowest-level inconsistent node.
    pub fn verify_consistent(&self) -> Result<(), IntegrityError> {
        // The arena iterates occupied labels in descending raw order —
        // deepest levels first — so the error points at the lowest
        // inconsistency (most useful for diagnosing ordering bugs).
        for label in self.store.labels_deepest_first() {
            if self.geometry.level(label) >= self.geometry.levels() {
                continue;
            }
            if self.recompute_internal(label) != self.node_value(label) {
                return Err(IntegrityError { node: label });
            }
        }
        Ok(())
    }

    /// Verifies that a set of counter blocks matches this tree's root:
    /// rebuilds a fresh tree from `counters` and compares roots. This is
    /// the recovery-time check against the persistently-stored on-chip
    /// root.
    pub fn verify_counters_against_root<'a>(
        &self,
        counters: impl IntoIterator<Item = (u64, &'a CounterBlock)>,
        master_key: SipKey,
    ) -> Result<(), IntegrityError> {
        let rebuilt = BonsaiTree::from_counters(self.geometry, master_key, counters);
        if rebuilt.root() == self.root() {
            Ok(())
        } else {
            Err(IntegrityError {
                node: NodeLabel::ROOT,
            })
        }
    }
}

/// Integrity-verification failure: a node whose stored value does not
/// match recomputation ("BMT (verification) failure", Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegrityError {
    /// The inconsistent node.
    pub node: NodeLabel,
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BMT verification failure at {}", self.node)
    }
}

impl std::error::Error for IntegrityError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> BonsaiTree {
        BonsaiTree::new(BmtGeometry::new(8, 4), SipKey::new(77, 88))
    }

    fn bumped(slots: &[usize]) -> CounterBlock {
        let mut cb = CounterBlock::new();
        for &s in slots {
            cb.bump(s);
        }
        cb
    }

    #[test]
    fn fresh_tree_is_consistent_and_sparse() {
        let t = tree();
        assert_eq!(t.populated_nodes(), 0);
        assert!(t.verify_consistent().is_ok());
        // Root of an all-default tree equals the level-1 default.
        assert_eq!(t.root(), t.node_value(NodeLabel::ROOT));
    }

    #[test]
    fn populated_nodes_above_counts_the_rebuild_slice() {
        let mut t = tree();
        assert_eq!(t.populated_nodes_above(3), 0);
        // One update populates a 4-node path: root, one node at each
        // of levels 2 and 3, and the leaf.
        t.update_leaf(9, &bumped(&[3]));
        assert_eq!(t.populated_nodes(), 4);
        // Floor 3: rebuild levels 1..3 — root + one level-2 node.
        assert_eq!(t.populated_nodes_above(3), 2);
        // Floor at the leaves: everything but the leaf itself.
        assert_eq!(t.populated_nodes_above(4), 3);
        // Floor 1: the whole tree is durable, nothing to rebuild.
        assert_eq!(t.populated_nodes_above(1), 0);
        // A second distinct leaf under the same level-2 subtree grows
        // the shallow slice by at most one level-3 node... a different
        // page entirely grows it by a full extra path minus the shared
        // root.
        t.update_leaf(500, &bumped(&[1]));
        assert!(t.populated_nodes_above(4) > 3);
        assert_eq!(
            t.populated_nodes_above(4) + 2,
            t.populated_nodes(),
            "exactly the two leaves are below floor 4"
        );
    }

    #[test]
    fn update_changes_root_deterministically() {
        let mut t1 = tree();
        let mut t2 = tree();
        let cb = bumped(&[3]);
        t1.update_leaf(9, &cb);
        t2.update_leaf(9, &cb);
        assert_eq!(t1.root(), t2.root());
        assert_ne!(t1.root(), tree().root());
    }

    #[test]
    fn update_path_is_leaf_to_root() {
        let mut t = tree();
        let mut path = Vec::new();
        let root = t.update_leaf_into(0, &bumped(&[0]), &mut path);
        let g = t.geometry();
        assert_eq!(path.len(), 4);
        assert_eq!(g.level(path[0].0), 4);
        assert_eq!(path[3].0, NodeLabel::ROOT);
        assert_eq!(path[3].1, root);
        assert_eq!(root, t.root());
        for w in path.windows(2) {
            assert_eq!(g.parent(w[0].0), Some(w[1].0));
        }
        for (label, value) in &path {
            assert_eq!(t.node_value(*label), *value);
        }
        assert!(t.verify_consistent().is_ok());
    }

    #[test]
    fn update_counts_each_path_node_once() {
        let mut t = tree();
        t.update_leaf(0, &bumped(&[0]));
        assert_eq!(t.populated_nodes(), 4);
        // Re-updating the same leaf repopulates the same nodes.
        t.update_leaf(0, &bumped(&[0, 1]));
        assert_eq!(t.populated_nodes(), 4);
        // A disjoint subtree shares only the root.
        t.update_leaf(511, &bumped(&[2]));
        assert_eq!(t.populated_nodes(), 7);
    }

    #[test]
    fn different_pages_different_roots() {
        let cb = bumped(&[0]);
        let mut t1 = tree();
        let mut t2 = tree();
        t1.update_leaf(0, &cb);
        t2.update_leaf(1, &cb);
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    fn tamper_detected_by_consistency_check() {
        let mut t = tree();
        t.update_leaf(7, &bumped(&[1, 1]));
        assert!(t.verify_consistent().is_ok());
        // Flip an internal node on the update path.
        let g = t.geometry();
        let leaf = g.leaf(7);
        let victim = g.parent(leaf).unwrap();
        t.set_node(victim, t.node_value(victim) ^ 1);
        let err = t.verify_consistent().unwrap_err();
        // The *parent* of the tampered node is the one whose hash no
        // longer matches its children... unless the tampered node itself
        // also has stored children. Either way an error is raised.
        assert!(g.level(err.node) < 4);
    }

    #[test]
    fn stale_leaf_detected() {
        // Persisting the counter but not the root (Table I row 1): the
        // stored tree has the old root while counters moved on.
        let t = tree();
        let cb = bumped(&[0]);
        let err = t
            .verify_counters_against_root([(0u64, &cb)], SipKey::new(77, 88))
            .unwrap_err();
        assert_eq!(err.node, NodeLabel::ROOT);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn rebuild_matches_incremental() {
        let mut t = tree();
        let cb1 = bumped(&[0, 0, 5]);
        let cb2 = bumped(&[63]);
        t.update_leaf(2, &cb1);
        t.update_leaf(500, &cb2);
        let rebuilt = BonsaiTree::from_counters(
            t.geometry(),
            SipKey::new(77, 88),
            [(2u64, &cb1), (500u64, &cb2)],
        );
        assert_eq!(rebuilt.root(), t.root());
        assert!(t
            .verify_counters_against_root([(2u64, &cb1), (500u64, &cb2)], SipKey::new(77, 88))
            .is_ok());
    }

    #[test]
    fn update_order_within_epoch_is_root_invariant() {
        // The §IV-B1 WAW-safety argument: the final LCA value — and
        // hence the root — does not depend on the order two persists
        // update their common ancestors.
        let cb_a = bumped(&[1]);
        let cb_b = bumped(&[2, 2]);
        let mut t1 = tree();
        t1.update_leaf(0, &cb_a);
        t1.update_leaf(1, &cb_b);
        let mut t2 = tree();
        t2.update_leaf(1, &cb_b);
        t2.update_leaf(0, &cb_a);
        assert_eq!(t1.root(), t2.root());
    }

    #[test]
    fn same_leaf_last_writer_wins() {
        let mut t = tree();
        t.update_leaf(4, &bumped(&[0]));
        let final_cb = bumped(&[0, 0]);
        t.update_leaf(4, &final_cb);
        let mut direct = tree();
        direct.update_leaf(4, &final_cb);
        assert_eq!(t.root(), direct.root());
    }

    #[test]
    fn paper_default_geometry_tree_is_cheap_to_build() {
        // The 8-ary 9-level arena reserves 19M slots but must not touch
        // them: construction and a handful of updates stay fast and the
        // populated count tracks only explicit nodes.
        let mut t = BonsaiTree::new(BmtGeometry::default(), SipKey::new(1, 2));
        assert_eq!(t.populated_nodes(), 0);
        t.update_leaf(0, &bumped(&[0]));
        t.update_leaf(16_777_215, &bumped(&[1]));
        assert_eq!(t.populated_nodes(), 2 * 9 - 1);
        assert!(t.verify_consistent().is_ok());
    }

    #[test]
    fn debug_output_is_compact() {
        let t = tree();
        let dbg = format!("{t:?}");
        assert!(dbg.len() < 500, "debug dump leaked the arena: {} bytes", dbg.len());
        assert!(dbg.contains("populated"));
    }
}
