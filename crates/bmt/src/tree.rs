//! The sparse functional Bonsai Merkle Tree.
//!
//! The tree covers one counter block per leaf (one 4 KiB encryption
//! page). Only nodes that differ from the all-fresh-counters state are
//! stored; every level has a memoized *default* value, so an 8-ary,
//! 9-level tree (16.7M leaves) costs memory proportional only to the
//! touched working set.
//!
//! This is the *functional* half of the BMT: it answers "what is the
//! root after these counter updates" and "is this tree internally
//! consistent". The *timing* half (who updates which node when, and in
//! what order) lives in the engine models of `plp-core`.

use std::collections::HashMap;

use plp_crypto::{CounterBlock, SipKey};
use serde::{Deserialize, Serialize};

use crate::{BmtGeometry, NodeLabel};

/// An 8-byte BMT node value ("64B to 8B hash", Fig. 1).
pub type NodeValue = u64;

/// A sparse, keyed Bonsai Merkle Tree over counter blocks.
///
/// # Example
///
/// ```
/// use plp_bmt::{BmtGeometry, BonsaiTree};
/// use plp_crypto::{CounterBlock, SipKey};
///
/// let geometry = BmtGeometry::new(8, 4);
/// let mut tree = BonsaiTree::new(geometry, SipKey::new(1, 2));
/// let root_before = tree.root();
///
/// let mut cb = CounterBlock::new();
/// cb.bump(0);
/// let path = tree.update_leaf(5, &cb);
/// assert_eq!(path.len(), 4); // leaf, two internals, root
/// assert_ne!(tree.root(), root_before);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BonsaiTree {
    geometry: BmtGeometry,
    key: SipKey,
    nodes: HashMap<NodeLabel, NodeValue>,
    /// Default node value per 1-based level (index `level - 1`).
    defaults: Vec<NodeValue>,
}

impl BonsaiTree {
    /// Creates the all-fresh tree (every page's counter block new).
    pub fn new(geometry: BmtGeometry, master_key: SipKey) -> Self {
        let key = master_key.derive("bmt");
        let levels = geometry.levels_usize();
        let mut defaults = vec![0; levels];
        let fresh = CounterBlock::new();
        defaults[levels - 1] = Self::leaf_value_with(key, &fresh);
        for level in (1..levels).rev() {
            let children = vec![defaults[level]; geometry.arity_usize()];
            defaults[level - 1] = Self::internal_value_with(key, &children);
        }
        BonsaiTree {
            geometry,
            key,
            nodes: HashMap::new(),
            defaults,
        }
    }

    /// Rebuilds a tree from a set of persisted counter blocks — the
    /// crash-recovery path ("recovering from a crash requires
    /// recomputing the BMT root", §III).
    pub fn from_counters<'a>(
        geometry: BmtGeometry,
        master_key: SipKey,
        counters: impl IntoIterator<Item = (u64, &'a CounterBlock)>,
    ) -> Self {
        let mut tree = BonsaiTree::new(geometry, master_key);
        for (page, cb) in counters {
            tree.update_leaf(page, cb);
        }
        tree
    }

    /// The tree geometry.
    pub fn geometry(&self) -> BmtGeometry {
        self.geometry
    }

    /// The current root value.
    pub fn root(&self) -> NodeValue {
        self.node_value(NodeLabel::ROOT)
    }

    /// The value of any node (stored or default).
    pub fn node_value(&self, label: NodeLabel) -> NodeValue {
        if let Some(&v) = self.nodes.get(&label) {
            return v;
        }
        self.defaults[self.geometry.level_index(label)]
    }

    /// Number of explicitly stored (non-default) nodes.
    pub fn populated_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn leaf_value_with(key: SipKey, cb: &CounterBlock) -> NodeValue {
        key.hash_words(&cb.content_words())
    }

    fn internal_value_with(key: SipKey, children: &[NodeValue]) -> NodeValue {
        key.hash_words(children)
    }

    /// The leaf hash for a counter block under this tree's key.
    pub fn leaf_value(&self, cb: &CounterBlock) -> NodeValue {
        Self::leaf_value_with(self.key, cb)
    }

    fn recompute_internal(&self, label: NodeLabel) -> NodeValue {
        let children: Vec<NodeValue> = (0..self.geometry.arity())
            .map(|i| self.node_value(self.geometry.child(label, i)))
            .collect();
        Self::internal_value_with(self.key, &children)
    }

    /// Applies a counter-block update at `page`, recomputing the leaf
    /// and every ancestor up to the root.
    ///
    /// Returns the update path as `(label, new_value)` pairs ordered
    /// leaf-first — exactly the per-level work the timing engines
    /// schedule (one MAC computation per entry).
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the tree's coverage.
    pub fn update_leaf(&mut self, page: u64, cb: &CounterBlock) -> Vec<(NodeLabel, NodeValue)> {
        let leaf = self.geometry.leaf(page);
        let mut path = Vec::with_capacity(self.geometry.levels_usize());
        let leaf_val = self.leaf_value(cb);
        self.nodes.insert(leaf, leaf_val);
        path.push((leaf, leaf_val));
        let mut cur = leaf;
        while let Some(parent) = self.geometry.parent(cur) {
            let val = self.recompute_internal(parent);
            self.nodes.insert(parent, val);
            path.push((parent, val));
            cur = parent;
        }
        path
    }

    /// Overwrites a single node value without updating ancestors.
    ///
    /// This models *partial* persistence (a crash between tuple
    /// persists) and active tampering; the integrity checks exist to
    /// catch exactly the states this method can create.
    pub fn set_node(&mut self, label: NodeLabel, value: NodeValue) {
        self.nodes.insert(label, value);
    }

    /// Checks that every stored internal node equals the hash of its
    /// children.
    ///
    /// # Errors
    ///
    /// Returns the lowest-level inconsistent node.
    pub fn verify_consistent(&self) -> Result<(), IntegrityError> {
        // Check deepest levels first so the error points at the lowest
        // inconsistency (most useful for diagnosing ordering bugs).
        let mut labels: Vec<_> = self
            .nodes
            .keys()
            .copied()
            .filter(|l| self.geometry.level(*l) < self.geometry.levels())
            .collect();
        labels.sort_by_key(|l| std::cmp::Reverse(self.geometry.level(*l)));
        for label in labels {
            if self.recompute_internal(label) != self.node_value(label) {
                return Err(IntegrityError { node: label });
            }
        }
        Ok(())
    }

    /// Verifies that a set of counter blocks matches this tree's root:
    /// rebuilds a fresh tree from `counters` and compares roots. This is
    /// the recovery-time check against the persistently-stored on-chip
    /// root.
    pub fn verify_counters_against_root<'a>(
        &self,
        counters: impl IntoIterator<Item = (u64, &'a CounterBlock)>,
        master_key: SipKey,
    ) -> Result<(), IntegrityError> {
        let rebuilt = BonsaiTree::from_counters(self.geometry, master_key, counters);
        if rebuilt.root() == self.root() {
            Ok(())
        } else {
            Err(IntegrityError {
                node: NodeLabel::ROOT,
            })
        }
    }
}

/// Integrity-verification failure: a node whose stored value does not
/// match recomputation ("BMT (verification) failure", Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegrityError {
    /// The inconsistent node.
    pub node: NodeLabel,
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BMT verification failure at {}", self.node)
    }
}

impl std::error::Error for IntegrityError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> BonsaiTree {
        BonsaiTree::new(BmtGeometry::new(8, 4), SipKey::new(77, 88))
    }

    fn bumped(slots: &[usize]) -> CounterBlock {
        let mut cb = CounterBlock::new();
        for &s in slots {
            cb.bump(s);
        }
        cb
    }

    #[test]
    fn fresh_tree_is_consistent_and_sparse() {
        let t = tree();
        assert_eq!(t.populated_nodes(), 0);
        assert!(t.verify_consistent().is_ok());
        // Root of an all-default tree equals the level-1 default.
        assert_eq!(t.root(), t.node_value(NodeLabel::ROOT));
    }

    #[test]
    fn update_changes_root_deterministically() {
        let mut t1 = tree();
        let mut t2 = tree();
        let cb = bumped(&[3]);
        t1.update_leaf(9, &cb);
        t2.update_leaf(9, &cb);
        assert_eq!(t1.root(), t2.root());
        assert_ne!(t1.root(), tree().root());
    }

    #[test]
    fn update_path_is_leaf_to_root() {
        let mut t = tree();
        let path = t.update_leaf(0, &bumped(&[0]));
        let g = t.geometry();
        assert_eq!(path.len(), 4);
        assert_eq!(g.level(path[0].0), 4);
        assert_eq!(path[3].0, NodeLabel::ROOT);
        for w in path.windows(2) {
            assert_eq!(g.parent(w[0].0), Some(w[1].0));
        }
        assert!(t.verify_consistent().is_ok());
    }

    #[test]
    fn different_pages_different_roots() {
        let cb = bumped(&[0]);
        let mut t1 = tree();
        let mut t2 = tree();
        t1.update_leaf(0, &cb);
        t2.update_leaf(1, &cb);
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    fn tamper_detected_by_consistency_check() {
        let mut t = tree();
        t.update_leaf(7, &bumped(&[1, 1]));
        assert!(t.verify_consistent().is_ok());
        // Flip an internal node on the update path.
        let g = t.geometry();
        let leaf = g.leaf(7);
        let victim = g.parent(leaf).unwrap();
        t.set_node(victim, t.node_value(victim) ^ 1);
        let err = t.verify_consistent().unwrap_err();
        // The *parent* of the tampered node is the one whose hash no
        // longer matches its children... unless the tampered node itself
        // also has stored children. Either way an error is raised.
        assert!(g.level(err.node) < 4);
    }

    #[test]
    fn stale_leaf_detected() {
        // Persisting the counter but not the root (Table I row 1): the
        // stored tree has the old root while counters moved on.
        let t = tree();
        let cb = bumped(&[0]);
        let err = t
            .verify_counters_against_root([(0u64, &cb)], SipKey::new(77, 88))
            .unwrap_err();
        assert_eq!(err.node, NodeLabel::ROOT);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn rebuild_matches_incremental() {
        let mut t = tree();
        let cb1 = bumped(&[0, 0, 5]);
        let cb2 = bumped(&[63]);
        t.update_leaf(2, &cb1);
        t.update_leaf(500, &cb2);
        let rebuilt = BonsaiTree::from_counters(
            t.geometry(),
            SipKey::new(77, 88),
            [(2u64, &cb1), (500u64, &cb2)],
        );
        assert_eq!(rebuilt.root(), t.root());
        assert!(t
            .verify_counters_against_root([(2u64, &cb1), (500u64, &cb2)], SipKey::new(77, 88))
            .is_ok());
    }

    #[test]
    fn update_order_within_epoch_is_root_invariant() {
        // The §IV-B1 WAW-safety argument: the final LCA value — and
        // hence the root — does not depend on the order two persists
        // update their common ancestors.
        let cb_a = bumped(&[1]);
        let cb_b = bumped(&[2, 2]);
        let mut t1 = tree();
        t1.update_leaf(0, &cb_a);
        t1.update_leaf(1, &cb_b);
        let mut t2 = tree();
        t2.update_leaf(1, &cb_b);
        t2.update_leaf(0, &cb_a);
        assert_eq!(t1.root(), t2.root());
    }

    #[test]
    fn same_leaf_last_writer_wins() {
        let mut t = tree();
        t.update_leaf(4, &bumped(&[0]));
        let final_cb = bumped(&[0, 0]);
        t.update_leaf(4, &final_cb);
        let mut direct = tree();
        direct.update_leaf(4, &final_cb);
        assert_eq!(t.root(), direct.root());
    }
}
