//! Golden CFG shapes and the token-partition property.
//!
//! The golden tests pin the exact block/edge/loop structure the
//! builder produces for the control shapes the semantic passes lean
//! on (early return, conditional loop, `continue`, `match`, `?`).
//! The partition test proves a structural invariant over arbitrary
//! code: inside a function body, every token is owned by *at most
//! one* atom, and the tokens no atom owns are pure structure
//! (braces, arrows, keywords) — so no expression text is ever lost
//! or double-counted by the dataflow layer.

use plp_analyze::cfg;
use plp_analyze::syntax::{self, TokenKind};

/// Renders the first function's CFG as a deterministic text form.
fn render(src: &str) -> String {
    let tokens = syntax::lex(src);
    let parsed = syntax::parse(src, &tokens);
    assert!(!parsed.functions.is_empty(), "no function parsed");
    let f = &parsed.functions[0];
    let g = cfg::build(f).expect("cfg builds");
    let mut out = String::new();
    for (i, b) in g.blocks.iter().enumerate() {
        let atoms: Vec<String> = b
            .atoms
            .iter()
            .map(|a| format!("{:?}@{}", a.kind, a.line))
            .collect();
        let succs: Vec<String> = b
            .succs
            .iter()
            .map(|(t, k)| format!("b{t}:{k:?}"))
            .collect();
        out.push_str(&format!(
            "b{i}[{}] -> {}\n",
            atoms.join(","),
            succs.join(",")
        ));
    }
    for lp in &g.loops {
        out.push_str(&format!(
            "loop header=b{} body=b{} after=b{}\n",
            lp.header, lp.body_entry, lp.after
        ));
    }
    out
}

#[test]
fn golden_early_return() {
    let got = render(concat!(
        "fn f(x: u64) -> u64 {\n",     // 1
        "    if x == 0 {\n",           // 2
        "        return 1;\n",         // 3
        "    }\n",                     // 4
        "    x + 1\n",                 // 5
        "}\n",
    ));
    println!("GOLDEN early_return:\n{got}");
    insta_like(&got, "early_return");
}

#[test]
fn golden_conditional_loop_with_continue() {
    let got = render(concat!(
        "fn f(n: u64) -> u64 {\n",     // 1
        "    let mut acc = 0;\n",      // 2
        "    for i in 0..n {\n",       // 3
        "        if i == 3 {\n",       // 4
        "            continue;\n",     // 5
        "        }\n",                 // 6
        "        acc += i;\n",         // 7
        "    }\n",                     // 8
        "    acc\n",                   // 9
        "}\n",
    ));
    println!("GOLDEN loop_continue:\n{got}");
    insta_like(&got, "loop_continue");
}

#[test]
fn golden_match_arms() {
    let got = render(concat!(
        "fn f(x: u64) -> u64 {\n",     // 1
        "    match x {\n",             // 2
        "        0 => 1,\n",           // 3
        "        1 => 2,\n",           // 4
        "        _ => 3,\n",           // 5
        "    }\n",                     // 6
        "}\n",
    ));
    println!("GOLDEN match_arms:\n{got}");
    insta_like(&got, "match_arms");
}

#[test]
fn golden_question_mark() {
    let got = render(concat!(
        "fn f(x: Option<u64>) -> Option<u64> {\n", // 1
        "    let v = probe(x)?;\n",                // 2
        "    Some(v + 1)\n",                       // 3
        "}\n",
    ));
    println!("GOLDEN question:\n{got}");
    insta_like(&got, "question");
}

/// Golden store, captured from the builder and reviewed by hand:
/// b1 is always the exit; `Back`/`ZeroTrip`/`LoopBypass` edges carry
/// the loop stances the dataflow layer filters on.
fn insta_like(got: &str, name: &str) {
    let want = match name {
        "early_return" => concat!(
            "b0[Cond@2] -> b3:Normal,b2:Normal\n",
            "b1[] -> \n",
            "b2[Plain@5] -> b1:Normal\n",
            "b3[Return@3] -> b1:Normal\n",
            "b4[] -> b2:Normal\n",
        ),
        "loop_continue" => concat!(
            "b0[Plain@2] -> b2:Normal\n",
            "b1[] -> \n",
            "b2[LoopHeader@3] -> b4:Normal,b3:ZeroTrip\n",
            "b3[Plain@9] -> b1:Normal\n",
            "b4[Cond@4] -> b6:Normal,b5:Normal\n",
            "b5[Plain@7] -> b2:Back,b3:LoopBypass\n",
            "b6[Continue@5] -> b2:Back\n",
            "b7[] -> b5:Normal\n",
            "loop header=b2 body=b4 after=b3\n",
        ),
        "match_arms" => concat!(
            "b0[Cond@2] -> b3:Normal,b4:Normal,b5:Normal\n",
            "b1[] -> \n",
            "b2[] -> b1:Normal\n",
            "b3[Plain@3] -> b2:Normal\n",
            "b4[Plain@4] -> b2:Normal\n",
            "b5[Plain@5] -> b2:Normal\n",
        ),
        "question" => concat!(
            "b0[Plain@2] -> b1:Normal,b2:Normal\n",
            "b1[] -> \n",
            "b2[Plain@3] -> b1:Normal\n",
        ),
        other => panic!("unknown golden {other}"),
    };
    assert_eq!(got, want, "golden CFG {name} drifted");
}

/// Structural tokens an atom never owns: block delimiters, arm
/// arrows, and the control keywords the builder models as edges.
fn structural(text: &str) -> bool {
    matches!(
        text,
        "{" | "}" | "=>" | "," | "else" | "unsafe" | ";"
    )
}

#[test]
fn token_partition_over_own_sources() {
    // Run the invariant over this crate's own source files — real
    // code with every statement shape the parser supports.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut files = Vec::new();
    let mut stack = vec![dir];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let p = entry.unwrap().path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    assert!(files.len() >= 10, "expected the crate's sources");
    let mut fns = 0usize;
    for path in files {
        let src = std::fs::read_to_string(&path).unwrap();
        let ts = syntax::lex(&src);
        let parsed = syntax::parse(&src, &ts);
        for f in &parsed.functions {
            let Some(g) = cfg::build(f) else { continue };
            fns += 1;
            let body = f.body.as_ref().unwrap();
            let mut owner = vec![0u32; ts.tokens.len()];
            for (_, _, a) in g.atoms() {
                for &(s, e) in &a.own {
                    for slot in owner.iter_mut().take(e).skip(s) {
                        *slot += 1;
                    }
                }
            }
            for (i, n) in owner.iter().enumerate() {
                let tok = &ts.tokens[i];
                if i < body.span.0 || i >= body.span.1 {
                    continue;
                }
                let text = &src[tok.start..tok.end];
                assert!(
                    *n <= 1,
                    "{}: token {i} `{text}` owned by {n} atoms in fn {} (line {})",
                    path.display(),
                    f.name,
                    tok.line,
                );
                if *n == 0 && tok.kind == TokenKind::Ident {
                    assert!(
                        structural(text) || keywordish(text),
                        "{}: unowned non-structural token `{text}` in fn {} (line {})",
                        path.display(),
                        f.name,
                        tok.line,
                    );
                }
            }
        }
    }
    assert!(fns >= 100, "partition checked only {fns} functions");
}

/// Keywords the statement grammar consumes without assigning to an
/// atom's expression (headers, binders, arms).
fn keywordish(text: &str) -> bool {
    matches!(
        text,
        "if" | "else"
            | "match"
            | "for"
            | "while"
            | "loop"
            | "let"
            | "mut"
            | "in"
            | "return"
            | "break"
            | "continue"
            | "unsafe"
    )
}

/// Deterministic xorshift64* PRNG — the property test must produce
/// the same programs on every run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Emits a random statement sequence; `depth` bounds nesting and
/// `in_loop` legalizes `continue`/`break`.
fn gen_block(rng: &mut Rng, depth: u32, in_loop: bool, out: &mut String, indent: usize) {
    let pad = "    ".repeat(indent);
    let n = 1 + rng.below(3);
    for _ in 0..n {
        let pick = rng.below(if depth == 0 { 3 } else { 8 });
        match pick {
            0 => out.push_str(&format!("{pad}let v{} = x + {};\n", rng.below(9), rng.below(99))),
            1 => out.push_str(&format!("{pad}acc += {};\n", rng.below(99))),
            2 => {
                if in_loop && rng.below(2) == 0 {
                    out.push_str(&format!("{pad}{};\n", ["continue", "break"][rng.below(2) as usize]));
                } else {
                    out.push_str(&format!("{pad}return acc + {};\n", rng.below(9)));
                }
            }
            3 => {
                out.push_str(&format!("{pad}if x == {} {{\n", rng.below(9)));
                gen_block(rng, depth - 1, in_loop, out, indent + 1);
                if rng.below(2) == 0 {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    gen_block(rng, depth - 1, in_loop, out, indent + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            4 => {
                out.push_str(&format!("{pad}for i in 0..{} {{\n", 1 + rng.below(9)));
                gen_block(rng, depth - 1, true, out, indent + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            5 => {
                out.push_str(&format!("{pad}while acc < {} {{\n", rng.below(99)));
                gen_block(rng, depth - 1, true, out, indent + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            6 => {
                out.push_str(&format!("{pad}match x % 3 {{\n"));
                out.push_str(&format!("{pad}    0 => {{\n"));
                gen_block(rng, depth - 1, in_loop, out, indent + 2);
                out.push_str(&format!("{pad}    }}\n"));
                out.push_str(&format!("{pad}    _ => {{\n"));
                gen_block(rng, depth - 1, in_loop, out, indent + 2);
                out.push_str(&format!("{pad}    }}\n"));
                out.push_str(&format!("{pad}}}\n"));
            }
            _ => out.push_str(&format!("{pad}acc = helper(acc, {});\n", rng.below(9))),
        }
    }
}

#[test]
fn generated_programs_build_sound_cfgs() {
    let mut rng = Rng(0x5eed_1234_5678_9abc);
    for case in 0..60 {
        let mut src = String::from("fn f(x: u64) -> u64 {\n    let mut acc = x;\n");
        gen_block(&mut rng, 3, false, &mut src, 1);
        src.push_str("    acc\n}\n");
        let ts = syntax::lex(&src);
        let parsed = syntax::parse(&src, &ts);
        assert_eq!(parsed.functions.len(), 1, "case {case}:\n{src}");
        let f = &parsed.functions[0];
        let g = cfg::build(f).unwrap_or_else(|| panic!("case {case}: no cfg\n{src}"));
        // Edges stay in range, and the atom partition holds.
        for b in &g.blocks {
            for &(t, _) in &b.succs {
                assert!(t < g.blocks.len(), "case {case}: edge out of range");
            }
        }
        let mut owner = vec![0u32; ts.tokens.len()];
        for (_, _, a) in g.atoms() {
            for &(s, e) in &a.own {
                for slot in owner.iter_mut().take(e).skip(s) {
                    *slot += 1;
                }
            }
        }
        assert!(
            owner.iter().all(|&n| n <= 1),
            "case {case}: token owned twice\n{src}"
        );
        // The dataflow engines terminate and agree on basic sanity:
        // nothing must-hits when no atom generates.
        let never = |_: &cfg::Atom<'_>| false;
        let table = plp_analyze::dataflow::must_hit_from(&g, &never, true);
        assert!(!table[g.entry], "case {case}: vacuous must-hit");
        let always = |_: &cfg::Atom<'_>| true;
        if !g.blocks[g.entry].atoms.is_empty() {
            let t2 = plp_analyze::dataflow::must_hit_from(&g, &always, true);
            assert!(t2[g.entry], "case {case}: must-hit missed a generating entry");
        }
    }
}
