//@ path: crates/core/src/shard.rs
//! Aux context: declares the stepping API so the escape pass can
//! derive the shard-handle owner type (`Simulation`).

pub struct Simulation {
    pub cycle: u64,
}

impl Simulation {
    pub(crate) fn step_store(&mut self, addr: u64) -> u64 {
        self.cycle += addr;
        self.cycle
    }
}
