//@ path: crates/core/src/engine/triad_fx.rs
//! E001 mutant shaped like the triad_nvm truncated walk: the node
//! prepared at the persisted floor escapes unnoted when the walk
//! bails into the relaxed upper region, hiding the floor update from
//! the sanitizer tap.

pub struct TriadMutant {
    pub busy_until: u64,
    pub lag: u64,
}

impl TriadMutant {
    pub fn persist(&mut self, ctx: &mut EngineCtx, floor: u64, t: u64) -> u64 {
        let node = ctx.node_ready(floor); //~ ERROR engine-contract PLP-E001
        if floor > 1 {
            // Relaxed region: defer the upper tree — but the floor
            // node itself was prepared and is never reported.
            self.lag = t + floor;
            return t;
        }
        ctx.note_update(node, t);
        self.busy_until = t;
        t
    }
}
