//@ path: crates/core/src/fx_allow.rs
//! A002/A003 mutants: an allow directive suppressing nothing, and
//! one naming a rule that does not exist.

// lint: allow(no-panic-lib) nothing panics below anymore //~ ERROR unused-allow PLP-A002
pub fn calm() -> u64 {
    7
}

// lint: allow(no-such-rule) typo in the rule name //~ ERROR unused-allow PLP-A003
pub fn fine() -> u64 {
    9
}
