//@ path: crates/core/src/fx_lexer.rs
//! Lexer-mode mutant: a real violation after a gauntlet of tricky
//! literals still fires — proving the scanner resynchronizes after
//! raw strings, byte strings, escapes, and nested block comments.

pub fn tricky(x: Option<u64>) -> u64 {
    let s = "/* not a comment */ \" // also not";
    let r = r#"raw "quoted" text"#;
    let b = b"byte \"string\"";
    let c = '\"';
    let n = '\n';
    /* block /* nested */ still closed here */
    let _ = (s, r, b, c, n);
    x.unwrap() //~ ERROR no-panic-lib PLP-L001
}
