//@ path: crates/core/src/engine/fx_missing_note.rs
//! E001 mutant: the prepared node is never noted on the bail-out
//! path — `node_ready` can reach the exit without `note_update`.

pub struct Mutant {
    pub busy_until: u64,
}

impl Mutant {
    pub fn persist(&mut self, ctx: &mut EngineCtx, t: u64, full: bool) -> u64 {
        let node = ctx.node_ready(t); //~ ERROR engine-contract PLP-E001
        if full {
            return t;
        }
        ctx.note_update(node, t);
        self.busy_until = t;
        t
    }
}
