//@ path: crates/core/src/engine/fx_continue.rs
//! E003 mutant: a `continue` jumps back to the walk-loop header
//! before the iteration's `note_update`, silently dropping a level.

pub struct Mutant {
    pub inflight: Vec<u64>,
}

impl Mutant {
    pub fn persist(&mut self, ctx: &mut EngineCtx, levels: u64, skip: u64) -> u64 {
        let mut done = 0;
        for lvl in 0..levels {
            if lvl == skip {
                continue; //~ ERROR engine-contract PLP-E003
            }
            ctx.note_update(lvl, lvl);
            done = lvl;
        }
        self.inflight.push(done);
        done
    }
}
