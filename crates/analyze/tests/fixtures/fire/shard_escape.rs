//@ path: crates/core/src/shard.rs
//! S002/S003/S004 mutants: the coordinator hands the per-shard
//! stepping capability out — as a mutable handle return, a parked
//! mutable field, and an escaping stepping closure.

pub struct Simulation {
    pub cycle: u64,
}

impl Simulation {
    pub(crate) fn step_store(&mut self, addr: u64) -> u64 {
        self.cycle += addr;
        self.cycle
    }
}

pub fn borrow_shard(pool: &mut Vec<Simulation>, i: usize) -> &mut Simulation { //~ ERROR no-cross-shard-state PLP-S002
    &mut pool[i]
}

pub struct ParkedHandle<'a> { //~ ERROR no-cross-shard-state PLP-S003
    pub sim: &'a mut Simulation,
}

pub fn make_stepper(sim: &mut Simulation) -> impl FnMut(u64) + '_ {
    move |a| { //~ ERROR no-cross-shard-state PLP-S004
        sim.step_store(a);
    }
}
