//@ path: crates/core/src/crash.rs
//! F001 mutant (recovery driver): the fixpoint fast path returns
//! before crossing any recovery failpoint, so the double-kill sweep
//! can never interrupt it.

pub struct Recovery {
    pub repairs: u64,
}

impl Recovery {
    pub fn recover_image(&mut self, torn: bool) -> u64 { //~ ERROR failpoint-coverage PLP-F001
        if !torn {
            return self.repairs;
        }
        self.fp_hit(1);
        self.repairs += 1;
        self.repairs
    }

    fn fp_hit(&mut self, _slot: u64) {}
}
