//@ path: crates/core/src/fx_replay.rs
//@ aux: handles
//! S003 fires outside the coordinator too: a struct parking a
//! mutable shard handle re-exports the stepping capability even
//! though this file never names the stepping API textually.

pub struct Replay<'a> { //~ ERROR no-cross-shard-state PLP-S003
    pub shard: &'a mut Simulation,
    pub at: u64,
}
