//@ path: crates/core/src/engine/fx_skipped_seal.rs
//! E002 mutant: an early return between the note and the seal leaves
//! the exit path with noted-but-unsealed updates.

pub struct Mutant {
    pub busy_until: u64,
}

impl Mutant {
    pub fn persist(&mut self, ctx: &mut EngineCtx, t: u64, full: bool) -> u64 {
        ctx.note_update(1, t);
        if full {
            return t; //~ ERROR engine-contract PLP-E002
        }
        self.busy_until = t;
        t
    }
}
