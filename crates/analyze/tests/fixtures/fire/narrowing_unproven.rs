//@ path: crates/core/src/fx_narrow.rs
//! C001 mutants: narrowing casts the value-range prover cannot
//! justify from declared types, reaching definitions, or bounds.

pub fn truncate_label(label: u64) -> u32 {
    label as u32 //~ ERROR narrowing-cast PLP-C001
}

pub fn fold_signed(x: i64) -> i32 {
    x as i32 //~ ERROR narrowing-cast PLP-C001
}

pub fn index_from(len: usize) -> u32 {
    len as u32 //~ ERROR narrowing-cast PLP-C001
}
