//@ path: crates/core/src/system.rs
//! F001 mutant: the fast path returns before crossing any named
//! failpoint, so no crash sweep can ever interrupt it.

pub struct System {
    pub now: u64,
}

impl System {
    pub fn persist_block(&mut self, addr: u64, fast: bool) -> u64 { //~ ERROR failpoint-coverage PLP-F001
        if fast {
            return self.now + addr;
        }
        self.fp_hit(addr);
        self.now
    }

    fn fp_hit(&mut self, _addr: u64) {}
}
