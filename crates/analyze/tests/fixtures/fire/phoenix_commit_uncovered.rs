//@ path: crates/core/src/system.rs
//! F001 mutant shaped like the phoenix dual-copy root commit: the
//! shadow-copy fast path (the standby copy is already current) returns
//! before crossing any named failpoint, so no crash sweep can land
//! inside the commit.

pub struct System {
    pub now: u64,
    pub active_copy: u64,
}

impl System {
    pub fn persist_block(&mut self, addr: u64, shadow_current: bool) -> u64 { //~ ERROR failpoint-coverage PLP-F001
        if shadow_current {
            // Flip the active copy without visiting a failpoint.
            self.active_copy ^= 1;
            return self.now + addr;
        }
        self.fp_hit(addr);
        self.active_copy ^= 1;
        self.now
    }

    fn fp_hit(&mut self, _addr: u64) {}
}
