//@ path: crates/core/src/engine/triad_fx.rs
//! Clean triad_nvm-shaped engine: the walk is truncated at the
//! persisted floor, but every level it does visit is prepared *and*
//! noted in-iteration, and the relaxed-region lag is sealed into
//! engine state before any exit.

pub struct Triad {
    pub busy_until: u64,
    pub lag: u64,
}

impl Triad {
    pub fn persist(&mut self, ctx: &mut EngineCtx, levels: u64, floor: u64, t: u64) -> u64 {
        if levels == 0 {
            return t;
        }
        let mut done = t;
        // Strict region only: floor..=levels, deepest first.
        for lvl in floor..levels {
            let node = ctx.node_ready(lvl);
            ctx.note_update(node, t);
            done = t + lvl;
        }
        // The relaxed upper tree persists behind the lag register.
        self.lag = done + floor;
        self.busy_until = done;
        done
    }
}
