//@ path: crates/core/src/engine/fx_ok.rs
//! Clean engine: a guard return before any work, every prepared node
//! noted in-iteration, a continue only after the note, and the walk
//! sealed into engine state before the exit.

pub struct Engine {
    pub busy_until: u64,
    pub inflight: Vec<u64>,
}

impl Engine {
    pub fn persist(&mut self, ctx: &mut EngineCtx, levels: u64, t: u64) -> u64 {
        if levels == 0 {
            return t;
        }
        let mut done = t;
        for lvl in 0..levels {
            let node = ctx.node_ready(lvl);
            ctx.note_update(node, t);
            if lvl == 3 {
                continue;
            }
            done = t + lvl;
        }
        self.busy_until = done;
        done
    }

    pub fn seal_only(&mut self, ctx: &mut EngineCtx, t: u64) -> u64 {
        ctx.note_update(0, t);
        self.inflight.push(t);
        t
    }
}
