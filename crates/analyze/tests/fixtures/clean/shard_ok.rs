//@ path: crates/core/src/shard.rs
//! Clean coordinator: shared (non-mut) handle access, owned shard
//! storage, and a stepping closure that stays local to its function.

pub struct Simulation {
    pub cycle: u64,
}

impl Simulation {
    pub(crate) fn step_store(&mut self, addr: u64) -> u64 {
        self.cycle += addr;
        self.cycle
    }
}

pub struct Pool {
    pub shards: Vec<Simulation>,
}

impl Pool {
    pub fn peek(&self, i: usize) -> &Simulation {
        &self.shards[i]
    }

    pub fn advance(&mut self, addrs: &[u64]) -> u64 {
        let mut last = 0;
        for a in addrs {
            let sim = &mut self.shards[0];
            last = sim.step_store(*a);
        }
        last
    }
}
