//@ path: crates/core/src/crash.rs
//! Clean recovery driver: `recover_image` crosses the pre-repair
//! failpoint as its first act, so every repair path — including the
//! fixpoint early return — is interruptible by the double-kill sweep.

pub struct Recovery {
    pub repairs: u64,
}

impl Recovery {
    pub fn recover_image(&mut self, torn: bool) -> u64 {
        self.fp_hit(0);
        if !torn {
            return self.repairs;
        }
        for frame in 0..4 {
            self.fp_hit(frame);
            self.repairs += 1;
        }
        self.fp_hit(2);
        self.repairs
    }

    fn fp_hit(&mut self, _slot: u64) {}
}
