//@ path: crates/bmt/src/fx_lexer_ok.rs
//! Clean lexer fixture: violation-shaped text appears only inside
//! literals and comments, so nothing may fire — multi-hash raw
//! strings, byte strings, char escapes, nested block comments.

pub fn literals() -> usize {
    let a = "x.unwrap() is only text here";
    let b = r##"panic!("not real") and "# partial close"##;
    let c = b"Instant::now bytes";
    let d = '\'';
    let e = "escaped \" quote then unimplemented! text";
    /* a block comment mentioning step_store( and .unwrap() */
    // line comment: thread_rng and SystemTime are only words here
    let _ = d;
    a.len() + b.len() + c.len() + e.len()
}
