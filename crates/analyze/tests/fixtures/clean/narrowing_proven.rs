//@ path: crates/bmt/src/fx_narrow_ok.rs
//! Clean narrowing: every cast here is provable — from parameter
//! types, literal values, `%`/`&` bounds, `.min` clamps, struct field
//! types, callee return types, and reaching definitions.

pub struct Geometry {
    pub levels: u32,
}

impl Geometry {
    pub fn level_slot(&self, level: u32) -> usize {
        (level - 1) as usize
    }

    pub fn levels_usize(&self) -> usize {
        self.levels as usize
    }
}

pub fn from_param(v: u32) -> usize {
    v as usize
}

pub fn from_literal_def() -> u16 {
    let x = 4096;
    x as u16
}

pub fn bucket(x: u64) -> u32 {
    (x % 1024) as u32
}

pub fn masked(x: u64) -> u16 {
    (x & 0xfff) as u16
}

pub fn clamped(x: u64) -> u32 {
    x.min(65535) as u32
}

fn width() -> u16 {
    64
}

pub fn from_call() -> usize {
    width() as usize
}
