//@ path: crates/core/src/system.rs
//! Clean phoenix-shaped driver: both halves of the dual-copy root
//! commit cross a named failpoint — the standby refresh through a
//! fully-covered callee, the flip path directly — so every commit
//! instant is reachable by the crash sweeps.

pub struct System {
    pub now: u64,
    pub active_copy: u64,
}

impl System {
    pub fn persist_block(&mut self, addr: u64, shadow_current: bool) -> u64 {
        if shadow_current {
            self.commit_flip(addr);
            return self.now;
        }
        self.fp_hit(addr);
        self.active_copy ^= 1;
        self.now
    }

    pub fn seal_epoch(&mut self, t: u64) -> u64 {
        let mut last = t;
        for copy in 0..2 {
            self.fp_hit(copy);
            last = t + copy;
        }
        self.active_copy ^= 1;
        last
    }

    fn commit_flip(&mut self, addr: u64) {
        self.fp_hit(addr);
        self.active_copy ^= 1;
        self.now += 1;
    }

    fn fp_hit(&mut self, _addr: u64) {}
}
