//@ path: crates/core/src/system.rs
//! Clean driver: both persist drivers cross a named failpoint on
//! every path — directly, inside the walk loop (optimistic stance),
//! or through a callee whose every path crosses one.

pub struct System {
    pub now: u64,
}

impl System {
    pub fn persist_block(&mut self, addr: u64, fast: bool) -> u64 {
        if fast {
            self.checked_apply(addr);
            return self.now;
        }
        self.fp_hit(addr);
        self.now
    }

    pub fn seal_epoch(&mut self, t: u64) -> u64 {
        let mut last = t;
        for i in 0..4 {
            self.fp_hit(i);
            last = t + i;
        }
        last
    }

    fn checked_apply(&mut self, addr: u64) {
        self.fp_hit(addr);
        self.now += 1;
    }

    fn fp_hit(&mut self, _addr: u64) {}
}
