//! The fixture corpus is the lint's proof obligation: `fire/`
//! mutants must produce exactly their `//~ ERROR` markers, `clean/`
//! fixtures must be silent, strictly in both directions.

use std::collections::BTreeSet;
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn corpus_matches_exactly() {
    let st = plp_analyze::lint::selftest::run_corpus(&corpus_dir()).expect("corpus readable");
    assert!(st.fixtures >= 20, "corpus shrank: {} fixtures", st.fixtures);
    assert!(st.expected >= 17, "markers shrank: {}", st.expected);
    let msgs: Vec<String> = st
        .mismatches
        .iter()
        .map(|m| format!("{}: {}", m.fixture, m.detail))
        .collect();
    assert!(msgs.is_empty(), "fixture mismatches:\n{}", msgs.join("\n"));
}

#[test]
fn every_semantic_code_has_a_fire_fixture() {
    let dir = corpus_dir().join("fire");
    let mut codes = BTreeSet::new();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let text = std::fs::read_to_string(entry.unwrap().path()).unwrap();
        for line in text.lines() {
            if let Some(at) = line.find("//~ ERROR ") {
                if let Some(code) = line[at..].split_whitespace().nth(3) {
                    codes.insert(code.to_string());
                }
            }
        }
    }
    for want in [
        "PLP-E001", "PLP-E002", "PLP-E003", "PLP-F001", "PLP-S002", "PLP-S003", "PLP-S004",
        "PLP-C001", "PLP-A002", "PLP-A003", "PLP-L001",
    ] {
        assert!(codes.contains(want), "no fire fixture exercises {want}");
    }
}

#[test]
fn clean_fixtures_carry_no_markers() {
    let dir = corpus_dir().join("clean");
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            !text.contains("//~ ERROR"),
            "{}: clean fixtures must expect nothing",
            path.display()
        );
    }
}
