//! Dataflow analyses over [`crate::cfg`] graphs.
//!
//! Three engines cover everything the semantic passes need:
//!
//! * [`reaching_defs`] — classic forward may-analysis: which
//!   definitions of each local can reach a program point. Runs over
//!   *every* edge (pessimistic: a zero-trip loop is a real path), so
//!   it never loses a definition.
//! * [`must_hit_from`] — backward all-paths analysis: from a block's
//!   start, does every path to the function exit pass a generating
//!   atom first? Diverging paths (infinite loops, `let … else` panic
//!   arms) are vacuously true — they never reach the exit.
//! * [`forward_state`] — a single-bit forward analysis with a caller
//!   supplied transfer function and may-meet (`OR`), used for the
//!   needs-seal obligation.
//!
//! Both directional engines take the loop stance (`optimistic`)
//! described in the cfg module docs.

use crate::cfg::{Atom, BlockId, Cfg};

/// One definition site of a local variable.
#[derive(Debug, Clone)]
pub struct DefSite<'a> {
    /// Variable name.
    pub var: &'a str,
    /// Block containing the defining atom.
    pub block: BlockId,
    /// Atom index within the block.
    pub atom: usize,
    /// Initializer expression; `None` means unknown value (plain
    /// assignment, `for` pattern, un-initialized `let`).
    pub init: Option<&'a crate::syntax::ExprInfo>,
    /// Declared type annotation at the def, if any.
    pub ty: Option<&'a str>,
}

/// Reaching-definitions result.
#[derive(Debug, Clone)]
pub struct ReachingDefs<'a> {
    /// Every definition site in the function.
    pub defs: Vec<DefSite<'a>>,
    /// Per-block IN bitsets over `defs`.
    ins: Vec<BitSet>,
}

impl<'a> ReachingDefs<'a> {
    /// Definitions of `var` that can reach the atom at
    /// `(block, atom_idx)` (the state *before* that atom executes).
    pub fn reaching(&self, cfg: &Cfg<'a>, block: BlockId, atom_idx: usize, var: &str) -> Vec<&DefSite<'a>> {
        let mut live = self.ins[block].clone();
        for (i, a) in cfg.blocks[block].atoms.iter().enumerate() {
            if i >= atom_idx {
                break;
            }
            self.transfer(a, block, i, &mut live);
        }
        self.defs
            .iter()
            .enumerate()
            .filter(|&(d, site)| site.var == var && live.get(d))
            .map(|(_, site)| site)
            .collect()
    }

    /// Applies one atom's kill/gen to `live`.
    fn transfer(&self, atom: &Atom<'a>, block: BlockId, idx: usize, live: &mut BitSet) {
        let Some(def) = &atom.def else { return };
        for (d, site) in self.defs.iter().enumerate() {
            if site.var == def.name {
                live.set(d, site.block == block && site.atom == idx);
            }
        }
    }
}

/// Computes reaching definitions for `cfg` (all edges, pessimistic).
pub fn reaching_defs<'a>(cfg: &Cfg<'a>) -> ReachingDefs<'a> {
    let mut defs = Vec::new();
    for (b, i, atom) in cfg.atoms() {
        if let Some(d) = &atom.def {
            defs.push(DefSite {
                var: d.name,
                block: b,
                atom: i,
                init: d.init,
                ty: d.ty,
            });
        }
    }
    let n = cfg.blocks.len();
    let mut rd = ReachingDefs {
        defs,
        ins: vec![BitSet::new(0); n],
    };
    let words = rd.defs.len();
    let mut ins = vec![BitSet::new(words); n];
    let mut outs = vec![BitSet::new(words); n];
    // Worklist iteration to fixpoint; the lattice is finite so this
    // terminates. Bounded as belt-and-braces against graph bugs.
    let mut changed = true;
    let mut rounds = 0usize;
    while changed && rounds < 4 * n + 16 {
        changed = false;
        rounds += 1;
        for b in 0..n {
            let mut input = BitSet::new(words);
            for &(p, _) in &cfg.blocks[b].preds {
                input.union(&outs[p]);
            }
            let mut out = input.clone();
            for (i, a) in cfg.blocks[b].atoms.iter().enumerate() {
                if let Some(d) = &a.def {
                    for (dix, site) in rd.defs.iter().enumerate() {
                        if site.var == d.name {
                            out.set(dix, site.block == b && site.atom == i);
                        }
                    }
                }
            }
            if input != ins[b] || out != outs[b] {
                ins[b] = input;
                outs[b] = out;
                changed = true;
            }
        }
    }
    rd.ins = ins;
    rd
}

/// Backward all-paths analysis: `result[b]` is true iff every path
/// from the *start* of block `b` to the exit passes an atom for which
/// `is_gen` holds. Blocks that cannot reach the exit (diverging) are
/// vacuously true.
pub fn must_hit_from<'a>(
    cfg: &Cfg<'a>,
    is_gen: &dyn Fn(&Atom<'a>) -> bool,
    optimistic: bool,
) -> Vec<bool> {
    let n = cfg.blocks.len();
    // Greatest fixpoint: start true everywhere except the exit and
    // intersect over successors. Cycles that never reach the exit
    // stay true (diverging = vacuous).
    let mut hit = vec![true; n];
    hit[cfg.exit] = false;
    let mut changed = true;
    let mut rounds = 0usize;
    while changed && rounds < 4 * n + 16 {
        changed = false;
        rounds += 1;
        for b in 0..n {
            if b == cfg.exit {
                continue;
            }
            let v = block_hits(cfg, b, is_gen, optimistic, &hit);
            if v != hit[b] {
                hit[b] = v;
                changed = true;
            }
        }
    }
    hit
}

/// One block's value for [`must_hit_from`]: true if the block contains
/// a gen atom, else the AND over its (stance-filtered) successors;
/// no successors means diverging, vacuously true.
fn block_hits<'a>(
    cfg: &Cfg<'a>,
    b: BlockId,
    is_gen: &dyn Fn(&Atom<'a>) -> bool,
    optimistic: bool,
    hit: &[bool],
) -> bool {
    if cfg.blocks[b].atoms.iter().any(is_gen) {
        return true;
    }
    let mut any = false;
    for s in cfg.succs(b, optimistic) {
        any = true;
        if !hit[s] {
            return false;
        }
    }
    // No successors: diverging block (or a dead tail after
    // return/break); no path reaches the exit from here.
    let _ = any;
    true
}

/// Like [`must_hit_from`], but asks the question *after* the atom at
/// `(block, atom_idx)`: must every onward path hit a gen atom before
/// the exit?
pub fn must_hit_after<'a>(
    cfg: &Cfg<'a>,
    table: &[bool],
    is_gen: &dyn Fn(&Atom<'a>) -> bool,
    optimistic: bool,
    block: BlockId,
    atom_idx: usize,
) -> bool {
    if cfg.blocks[block].atoms[atom_idx + 1..].iter().any(is_gen) {
        return true;
    }
    let mut any = false;
    for s in cfg.succs(block, optimistic) {
        any = true;
        if s == cfg.exit || !table[s] {
            return false;
        }
    }
    let _ = any;
    true
}

/// Forward single-bit analysis with OR-meet. `transfer` folds one
/// atom into the state. Returns per-block `(in, out)` states; the
/// state arriving at [`Cfg::exit`]'s IN is the function-exit state.
pub fn forward_state<'a, F>(cfg: &Cfg<'a>, optimistic: bool, transfer: F) -> (Vec<bool>, Vec<bool>)
where
    F: Fn(&Atom<'a>, bool) -> bool,
{
    let n = cfg.blocks.len();
    let mut ins = vec![false; n];
    let mut outs = vec![false; n];
    let mut changed = true;
    let mut rounds = 0usize;
    while changed && rounds < 4 * n + 16 {
        changed = false;
        rounds += 1;
        for b in 0..n {
            let mut input = false;
            for &(p, k) in &cfg.blocks[b].preds {
                let dropped = if optimistic {
                    k == crate::cfg::EdgeKind::ZeroTrip
                } else {
                    k == crate::cfg::EdgeKind::LoopBypass
                };
                if !dropped {
                    input |= outs[p];
                }
            }
            if b == cfg.entry {
                // Entry keeps its initial false unless something loops
                // back into it (it never does; entry has no preds).
            }
            let mut state = input;
            for a in &cfg.blocks[b].atoms {
                state = transfer(a, state);
            }
            if input != ins[b] || state != outs[b] {
                ins[b] = input;
                outs[b] = state;
                changed = true;
            }
        }
    }
    (ins, outs)
}

/// Dense bitset over definition indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// All-zeros set over `len` bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Tests bit `i`.
    pub fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Sets bit `i` to `v`.
    pub fn set(&mut self, i: usize, v: bool) {
        if let Some(w) = self.words.get_mut(i / 64) {
            if v {
                *w |= 1u64 << (i % 64);
            } else {
                *w &= !(1u64 << (i % 64));
            }
        }
    }

    /// In-place union.
    pub fn union(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{build, Cfg};
    use crate::syntax::{lex, parse};

    fn cfg_of(src: &'static str) -> Cfg<'static> {
        let ts = Box::leak(Box::new(lex(src)));
        let parsed = Box::leak(Box::new(parse(src, ts)));
        build(&parsed.functions[0]).expect("body")
    }

    fn has_call<'a>(a: &Atom<'a>, name: &str) -> bool {
        a.expr
            .is_some_and(|e| e.calls.iter().any(|c| c.name == name))
    }

    #[test]
    fn reaching_defs_branch_merge() {
        let cfg = cfg_of("fn f(c: bool) { let x = 1; if c { x = 300; } use_it(x); }");
        let rd = reaching_defs(&cfg);
        let (b, i, _) = cfg
            .atoms()
            .find(|(_, _, a)| has_call(a, "use_it"))
            .expect("use site");
        let reach = rd.reaching(&cfg, b, i, "x");
        assert_eq!(reach.len(), 2, "both defs reach the merge");
    }

    #[test]
    fn reaching_defs_kill_on_redefinition() {
        let cfg = cfg_of("fn f() { let x = 1; let x = 2; use_it(x); }");
        let rd = reaching_defs(&cfg);
        let (b, i, _) = cfg
            .atoms()
            .find(|(_, _, a)| has_call(a, "use_it"))
            .expect("use site");
        let reach = rd.reaching(&cfg, b, i, "x");
        assert_eq!(reach.len(), 1);
        assert_eq!(reach[0].atom, 1);
    }

    #[test]
    fn for_pattern_defines_unknown() {
        let cfg = cfg_of("fn f(n: u32) { let i = 1; for i in 0..n { use_it(i); } }");
        let rd = reaching_defs(&cfg);
        let (b, i, _) = cfg
            .atoms()
            .find(|(_, _, a)| has_call(a, "use_it"))
            .expect("use site");
        let reach = rd.reaching(&cfg, b, i, "i");
        // Inside the body only the loop-pattern def (unknown value)
        // reaches: the header redefines `i` on every entry.
        assert_eq!(reach.len(), 1);
        assert!(reach[0].init.is_none());
    }

    #[test]
    fn must_hit_sees_all_paths() {
        let src = "fn f(c: bool) { if c { seal(); } other(); }";
        let cfg = cfg_of(src);
        let gen = |a: &Atom<'_>| has_call(a, "seal");
        let table = must_hit_from(&cfg, &gen, true);
        assert!(!table[cfg.entry], "else path skips seal");
        let src2 = "fn g(c: bool) { if c { seal(); } else { seal(); } other(); }";
        let cfg2 = cfg_of(src2);
        let table2 = must_hit_from(&cfg2, &gen, true);
        assert!(table2[cfg2.entry]);
    }

    #[test]
    fn optimistic_loops_assume_one_iteration() {
        let src = "fn f(n: u32) { for i in 0..n { seal(i); } }";
        let cfg = cfg_of(src);
        let gen = |a: &Atom<'_>| has_call(a, "seal");
        assert!(must_hit_from(&cfg, &gen, true)[cfg.entry]);
        assert!(!must_hit_from(&cfg, &gen, false)[cfg.entry]);
    }

    #[test]
    fn diverging_paths_are_vacuous() {
        let src = "fn f(c: bool) { if c { panic_like_halt(); loop { } } seal(); }";
        let cfg = cfg_of(src);
        let gen = |a: &Atom<'_>| has_call(a, "seal");
        // The infinite loop never reaches the exit, so the only path
        // that matters crosses seal().
        assert!(must_hit_from(&cfg, &gen, true)[cfg.entry]);
    }

    #[test]
    fn must_hit_after_scans_rest_of_block() {
        let src = "fn f() { ready(); note(); }";
        let cfg = cfg_of(src);
        let gen = |a: &Atom<'_>| has_call(a, "note");
        let table = must_hit_from(&cfg, &gen, true);
        let (b, i, _) = cfg
            .atoms()
            .find(|(_, _, a)| has_call(a, "ready"))
            .expect("ready");
        assert!(must_hit_after(&cfg, &table, &gen, true, b, i));
        let src2 = "fn f() { note(); ready(); }";
        let cfg2 = cfg_of(src2);
        let table2 = must_hit_from(&cfg2, &gen, true);
        let (b2, i2, _) = cfg2
            .atoms()
            .find(|(_, _, a)| has_call(a, "ready"))
            .expect("ready");
        assert!(!must_hit_after(&cfg2, &table2, &gen, true, b2, i2));
    }

    #[test]
    fn forward_state_tracks_set_then_clear() {
        let src = "fn f(c: bool) { note(); if c { seal(); } }";
        let cfg = cfg_of(src);
        let (ins, _) = forward_state(&cfg, true, |a: &Atom<'_>, s| {
            if has_call(a, "note") {
                true
            } else if has_call(a, "seal") {
                false
            } else {
                s
            }
        });
        // One path (c false) arrives at exit still needing the seal.
        assert!(ins[cfg.exit]);
        let src2 = "fn f() { note(); seal(); }";
        let cfg2 = cfg_of(src2);
        let (ins2, _) = forward_state(&cfg2, true, |a: &Atom<'_>, s| {
            if has_call(a, "note") {
                true
            } else if has_call(a, "seal") {
                false
            } else {
                s
            }
        });
        assert!(!ins2[cfg2.exit]);
    }
}
