//! Workspace lint gate.
//!
//! Lints every `.rs` file under `crates/` against the rules in
//! [`plp_analyze::lint::rules`], prints unallowed violations, and
//! exits nonzero if any exist — `scripts/verify.sh` treats that as a
//! build failure. With `--json <path>` it also writes the machine
//! summary (`results/analysis.json` in the standard invocation).
//!
//! With `--self-test <dir>` it instead runs the fixture corpus under
//! `<dir>` (see [`plp_analyze::lint::selftest`]): `fire/` mutants must
//! produce exactly their `//~ ERROR` markers and `clean/` fixtures must
//! lint silent; any divergence is printed and exits nonzero.
//!
//! Usage: `plp-lint [--root <dir>] [--json <path>] [--self-test <dir>]`

use plp_analyze::lint;

fn usage() -> ! {
    eprintln!("usage: plp-lint [--root <dir>] [--json <path>] [--self-test <dir>]");
    std::process::exit(2);
}

fn self_test(dir: &std::path::Path) -> ! {
    let st = match lint::selftest::run_corpus(dir) {
        Ok(st) => st,
        Err(e) => {
            eprintln!("plp-lint: cannot read corpus under {dir:?}: {e}");
            std::process::exit(2);
        }
    };
    if st.fixtures == 0 {
        eprintln!("plp-lint: no fixtures found under {dir:?}");
        std::process::exit(2);
    }
    for m in &st.mismatches {
        println!("{}: {}", m.fixture, m.detail);
    }
    if !st.mismatches.is_empty() {
        eprintln!(
            "plp-lint: self-test FAIL — {} mismatch(es) across {} fixtures",
            st.mismatches.len(),
            st.fixtures
        );
        std::process::exit(1);
    }
    eprintln!(
        "plp-lint: self-test OK — {} fixtures, {} expected findings all matched",
        st.fixtures, st.expected
    );
    std::process::exit(0);
}

fn main() {
    let mut root = std::path::PathBuf::from(".");
    let mut json_path: Option<std::path::PathBuf> = None;
    let mut corpus: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(d) => root = d.into(),
                None => usage(),
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(p.into()),
                None => usage(),
            },
            "--self-test" => match args.next() {
                Some(d) => corpus = Some(d.into()),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if let Some(dir) = corpus {
        self_test(&dir);
    }

    let reports = match lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("plp-lint: cannot read workspace under {root:?}: {e}");
            std::process::exit(2);
        }
    };
    if reports.is_empty() {
        eprintln!("plp-lint: no sources found under {root:?}/crates");
        std::process::exit(2);
    }
    let totals = lint::totals(&reports);

    for v in &totals.violations {
        println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.snippet);
    }
    let rule_summary: Vec<String> = totals
        .per_rule
        .iter()
        .map(|(rule, (hits, allowed))| format!("{rule} {}/{hits}", hits - allowed))
        .collect();
    eprintln!(
        "plp-lint: {} files, {} allow directives; violations/hits per rule: {}",
        totals.files,
        totals.allow_directives,
        rule_summary.join(", ")
    );

    if let Some(path) = json_path {
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("plp-lint: cannot create {dir:?}: {e}");
                std::process::exit(2);
            }
        }
        if let Err(e) = std::fs::write(&path, lint::analysis_json(&totals)) {
            eprintln!("plp-lint: cannot write {path:?}: {e}");
            std::process::exit(2);
        }
        eprintln!("plp-lint: wrote {}", path.display());
    }

    if !totals.violations.is_empty() {
        eprintln!(
            "plp-lint: FAIL — {} violation(s); fix them or annotate with \
             `// lint: allow(<rule>) <reason>`",
            totals.violations.len()
        );
        std::process::exit(1);
    }
    eprintln!("plp-lint: clean");
}
