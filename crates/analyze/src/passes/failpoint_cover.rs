//! Failpoint coverage of the system persist drivers (PLP-F001).
//!
//! The crash harness SIGKILLs real processes at named failpoints; a
//! persist-path branch that crosses none of them is a code path the
//! sweeps can never interrupt, i.e. silently untested recovery. This
//! pass proves, per driver (`persist_block`, `seal_epoch` in the
//! system model, plus `recover_image`, the durable recovery writeback
//! the double-kill sweep interrupts), that *every* path from entry to
//! exit crosses at least one failpoint visit — directly (`fp_hit`, or
//! `note_update`, which visits the between-levels failpoint) or
//! through a callee whose every path crosses one (the `crosses`
//! summary).
//!
//! Optimistic loop stance: a persist walk always runs its level loop
//! at least once, so a failpoint inside the walk loop counts.

use crate::cfg::{self, Atom};
use crate::dataflow;
use crate::lint::rules::{Finding, FAILPOINT_COVERAGE};
use crate::passes::{emit, Universe};

/// The run-time driver functions under the coverage obligation.
const DRIVERS: [&str; 2] = ["persist_block", "seal_epoch"];

/// The recovery-time drivers: every repair path of the durable
/// recovery writeback must cross a recovery failpoint, or the
/// double-kill sweep cannot interrupt it.
const RECOVERY_DRIVERS: [&str; 1] = ["recover_image"];

/// Runs the failpoint-coverage pass over one file.
pub fn run(u: &Universe, file: usize, out: &mut Vec<Finding>) {
    let unit = &u.files[file];
    if !unit.scope.persist_driver && !unit.scope.recovery_driver {
        return;
    }
    let obliged: &[&str] = if unit.scope.persist_driver {
        &DRIVERS
    } else {
        &RECOVERY_DRIVERS
    };
    for f in &unit.parsed.functions {
        if !obliged.contains(&f.name.as_str()) || u.in_test(file, f.line) {
            continue;
        }
        let Some(cfg) = cfg::build(f) else { continue };
        let owner = f.owner.as_deref();
        let is_gen = |a: &Atom<'_>| {
            a.expr
                .is_some_and(|e| e.calls.iter().any(|c| u.call_crosses(c, owner)))
        };
        if !dataflow::must_hit_from(&cfg, &is_gen, true)[cfg.entry] {
            emit(
                u,
                file,
                FAILPOINT_COVERAGE,
                "PLP-F001",
                f.line,
                0,
                &format!("fn {}: a persist path crosses no named failpoint", f.name),
                out,
            );
        }
    }
}
