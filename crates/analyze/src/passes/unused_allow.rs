//! Stale and malformed allow directives (PLP-A002, PLP-A003).
//!
//! The allow machinery only works if directives stay honest: a
//! `// lint: allow(<rule>)` that no longer suppresses any finding is
//! dead weight that silently licenses a *future* violation on that
//! line, and a directive naming an unknown rule never suppressed
//! anything (usually a typo that left the original finding live).
//!
//! This pass runs *after* the lexical rules and semantic passes, over
//! their merged findings: a directive at (0-based) line `d` is used if
//! some finding of its rule sits on line `d` or `d + 1` (the same
//! coverage [`SourceModel::allows`] grants). Unused → PLP-A002;
//! unknown rule → PLP-A003.
//!
//! [`SourceModel::allows`]: crate::lint::scan::SourceModel::allows

use crate::lint::rules::{Finding, ALLOW_REASON, RULES, UNUSED_ALLOW};
use crate::lint::scan::parse_allows;
use crate::passes::{emit, Universe};

/// Runs the unused-allow pass over one file, given every finding the
/// other layers produced for it.
pub fn run(u: &Universe, file: usize, findings: &[Finding], out: &mut Vec<Finding>) {
    let unit = &u.files[file];
    for (d, line) in unit.model.lines.iter().enumerate() {
        for dir in parse_allows(&line.comment) {
            if dir.rule == ALLOW_REASON {
                // Suppressing the meta rule would hide reasonless
                // directives; treat as unknown.
                emit(
                    u,
                    file,
                    UNUSED_ALLOW,
                    "PLP-A003",
                    (d + 1) as u32,
                    0,
                    &format!("allow({}) targets the meta rule", dir.rule),
                    out,
                );
                continue;
            }
            if !RULES.contains(&dir.rule.as_str()) {
                emit(
                    u,
                    file,
                    UNUSED_ALLOW,
                    "PLP-A003",
                    (d + 1) as u32,
                    0,
                    &format!("allow({}) names an unknown rule", dir.rule),
                    out,
                );
                continue;
            }
            let used = findings.iter().any(|f| {
                f.rule == dir.rule && (f.line == d + 1 || f.line == d + 2)
            });
            if !used {
                emit(
                    u,
                    file,
                    UNUSED_ALLOW,
                    "PLP-A002",
                    (d + 1) as u32,
                    0,
                    &format!("allow({}) suppresses nothing; delete it", dir.rule),
                    out,
                );
            }
        }
    }
}
