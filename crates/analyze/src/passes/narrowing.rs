//! Value-range–backed narrowing-cast analysis (PLP-C001).
//!
//! Replaces the old token heuristic ("any `as u32` in an address-math
//! crate") with a prover: a cast to a narrower integer type is clean
//! when the operand's value provably fits the target —
//!
//! * a literal whose value (or suffix type) fits;
//! * an identifier whose declared type fits: a parameter, or *every*
//!   reaching definition (reaching-definitions dataflow), or every
//!   reaching definition initialized from a fitting literal;
//! * a `self.field` whose struct-declared type fits;
//! * a call whose (unambiguous) return type fits;
//! * `x % k` / `x & m` with a literal bound that fits;
//! * otherwise, the type of the leftmost operand of a binary
//!   expression (Rust's arithmetic result type).
//!
//! Width table: `usize` is 64-bit as a *source* (conservative: casts
//! out of `usize` can truncate on 64-bit targets) but 32-bit as a
//! *target* (conservative: casts into `usize` may land on a 32-bit
//! target). Unsigned fits same-or-wider unsigned, strictly-wider
//! signed; signed-to-unsigned is never width-proven (negative values
//! wrap) — only value proofs accept it.

use crate::cfg::{self, BlockId, Cfg};
use crate::dataflow::{self, ReachingDefs};
use crate::lint::rules::{Finding, NARROW, NARROWING_CAST};
use crate::passes::{base_type, emit, FileUnit, Universe};
use crate::syntax::lexer::{int_suffix, int_value};
use crate::syntax::{ExprInfo, Function, TokenKind};

/// `(bits, signed)` of an integer type used as a cast *source*.
fn src_width(ty: &str) -> Option<(u32, bool)> {
    Some(match ty {
        "u8" => (8, false),
        "u16" => (16, false),
        "u32" => (32, false),
        "u64" => (64, false),
        "u128" => (128, false),
        "usize" => (64, false),
        "i8" => (8, true),
        "i16" => (16, true),
        "i32" => (32, true),
        "i64" => (64, true),
        "i128" => (128, true),
        "isize" => (64, true),
        _ => return None,
    })
}

/// `(bits, signed)` of an integer type used as a cast *target*.
fn tgt_width(ty: &str) -> Option<(u32, bool)> {
    Some(match ty {
        "usize" => (32, false),
        "isize" => (32, true),
        _ => src_width(ty)?,
    })
}

/// Whether a source of width `s` always fits a target of width `t`.
fn widths_fit(s: (u32, bool), t: (u32, bool)) -> bool {
    match (s.1, t.1) {
        (false, false) => s.0 <= t.0,
        (false, true) => s.0 < t.0,
        (true, true) => s.0 <= t.0,
        (true, false) => false,
    }
}

/// Whether the non-negative value `v` fits the target width.
fn value_fits(v: u128, t: (u32, bool)) -> bool {
    let bits = if t.1 { t.0 - 1 } else { t.0 };
    bits >= 128 || v < (1u128 << bits)
}

/// One cast-proof context: the function, its CFG and reaching defs,
/// and the atom holding the cast.
struct Prover<'a> {
    u: &'a Universe,
    unit: &'a FileUnit,
    f: &'a Function,
    cfg: &'a Cfg<'a>,
    rd: &'a ReachingDefs<'a>,
    block: BlockId,
    atom: usize,
    expr: &'a ExprInfo,
}

impl Prover<'_> {
    fn kind(&self, i: usize) -> Option<TokenKind> {
        self.unit.tokens.tokens.get(i).map(|t| t.kind)
    }

    fn text(&self, i: usize) -> &str {
        self.unit
            .tokens
            .tokens
            .get(i)
            .map(|t| t.text(&self.unit.text))
            .unwrap_or("")
    }

    /// Whether a declared type is width-safe for the target.
    fn ty_fits(&self, ty: &str, tgt_name: &str, tgt: (u32, bool)) -> bool {
        let base = base_type(ty);
        base == tgt_name || src_width(base).is_some_and(|s| widths_fit(s, tgt))
    }

    /// The value of a single-literal token range, if it is one.
    fn literal_value(&self, lo: usize, hi: usize) -> Option<u128> {
        if hi != lo + 1 || self.kind(lo) != Some(TokenKind::Int) {
            return None;
        }
        int_value(self.text(lo))
    }

    /// Proves the operand token range `[lo, hi)` fits `tgt`.
    fn prove(&self, lo: usize, hi: usize, tgt_name: &str, tgt: (u32, bool), depth: u32) -> bool {
        if depth > 8 || lo >= hi {
            return false;
        }
        // Strip one balanced outer paren/bracket layer.
        if self.text(lo) == "(" && self.matching(lo, hi) == Some(hi - 1) {
            return self.prove(lo + 1, hi - 1, tgt_name, tgt, depth + 1);
        }
        if hi == lo + 1 {
            return match self.kind(lo) {
                Some(TokenKind::Int) => {
                    let text = self.text(lo);
                    if let Some(sfx) = int_suffix(text) {
                        src_width(sfx).is_some_and(|s| widths_fit(s, tgt)) || sfx == tgt_name
                    } else {
                        int_value(text).is_some_and(|v| value_fits(v, tgt))
                    }
                }
                Some(TokenKind::Ident) => self.prove_ident(self.text(lo), tgt_name, tgt),
                _ => false,
            };
        }
        // `self.field` — struct-declared type.
        if hi == lo + 3 && self.text(lo) == "self" && self.text(lo + 1) == "." {
            if let Some(owner) = self.f.owner.as_deref() {
                if let Some(ft) = self.u.field_ty(owner, self.text(lo + 2)) {
                    return self.ty_fits(ft, tgt_name, tgt);
                }
            }
            return false;
        }
        // Binary expression at paren depth 0: `%`/`&` with a literal
        // bound, otherwise the left operand types the result.
        if let Some(op) = self.top_level_op(lo, hi) {
            match self.text(op) {
                "%" => {
                    if let Some(v) = self.literal_value(op + 1, hi) {
                        return v > 0 && value_fits(v - 1, tgt);
                    }
                }
                "&" => {
                    if let Some(v) = self.literal_value(op + 1, hi) {
                        return value_fits(v, tgt);
                    }
                    if let Some(v) = self.literal_value(lo, op) {
                        return value_fits(v, tgt);
                    }
                }
                _ => {}
            }
            return self.prove(lo, op, tgt_name, tgt, depth + 1);
        }
        // A call whose return type fits: `name(...)`, `a.b.name(...)`.
        if self.text(hi - 1) == ")" {
            if let Some(open) = self.open_of_close(lo, hi - 1) {
                if open > lo && self.kind(open - 1) == Some(TokenKind::Ident) {
                    let name = self.text(open - 1);
                    if let Some(call) = self.expr.calls.iter().find(|c| c.name == name) {
                        if let Some(rt) = self.u.call_ret_ty(call, self.f.owner.as_deref()) {
                            return self.ty_fits(rt, tgt_name, tgt);
                        }
                    }
                    // `x.min(LIT)` bounds the value by the literal.
                    if name == "min" {
                        if let Some(v) = self.literal_value(open + 1, hi - 1) {
                            return value_fits(v, tgt);
                        }
                    }
                }
            }
        }
        false
    }

    /// Proves a bare identifier: parameter type, else every reaching
    /// definition's declared type or literal initializer.
    fn prove_ident(&self, name: &str, tgt_name: &str, tgt: (u32, bool)) -> bool {
        if let Some(p) = self
            .f
            .params
            .iter()
            .find(|p| p.name.as_deref() == Some(name))
        {
            return self.ty_fits(&p.ty, tgt_name, tgt);
        }
        let defs = self.rd.reaching(self.cfg, self.block, self.atom, name);
        !defs.is_empty()
            && defs.iter().all(|d| {
                if let Some(ty) = d.ty {
                    return self.ty_fits(ty, tgt_name, tgt);
                }
                if let Some(init) = d.init {
                    return self
                        .literal_value(init.span.0, init.span.1)
                        .is_some_and(|v| value_fits(v, tgt));
                }
                false
            })
    }

    /// The close index matching an opener at `at`, within `[at, hi)`.
    fn matching(&self, at: usize, hi: usize) -> Option<usize> {
        let mut depth = 0i32;
        for i in at..hi {
            match self.text(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// The opener matching the closer at `close`, scanning from `lo`.
    fn open_of_close(&self, lo: usize, close: usize) -> Option<usize> {
        let mut depth = 0i32;
        for i in (lo..=close).rev() {
            match self.text(i) {
                ")" | "]" | "}" => depth += 1,
                "(" | "[" | "{" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// First paren-depth-0 binary operator in `[lo, hi)`, skipping a
    /// leading unary `-`/`&`/`*` and method-chain dots.
    fn top_level_op(&self, lo: usize, hi: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut prev_operand = false;
        for i in lo..hi {
            let t = self.text(i);
            match t {
                "(" | "[" | "{" => {
                    depth += 1;
                    prev_operand = false;
                }
                ")" | "]" | "}" => {
                    depth -= 1;
                    prev_operand = true;
                }
                "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" | "<<" | ">>"
                    if depth == 0 && prev_operand =>
                {
                    return Some(i);
                }
                _ => {
                    prev_operand = matches!(
                        self.kind(i),
                        Some(TokenKind::Ident | TokenKind::Int | TokenKind::Float)
                    );
                }
            }
        }
        None
    }
}

/// Runs the narrowing pass over one file.
pub fn run(u: &Universe, file: usize, out: &mut Vec<Finding>) {
    let unit = &u.files[file];
    if !unit.scope.address_math {
        return;
    }
    for f in &unit.parsed.functions {
        if u.in_test(file, f.line) {
            continue;
        }
        let Some(cfg) = cfg::build(f) else { continue };
        let rd = dataflow::reaching_defs(&cfg);
        for (b, i, a) in cfg.atoms() {
            let Some(e) = a.expr else { continue };
            for cast in &e.casts {
                if !NARROW.contains(&cast.target.as_str()) {
                    continue;
                }
                let Some(tgt) = tgt_width(&cast.target) else {
                    continue;
                };
                let p = Prover {
                    u,
                    unit,
                    f,
                    cfg: &cfg,
                    rd: &rd,
                    block: b,
                    atom: i,
                    expr: e,
                };
                if p.prove(cast.op_span.0, cast.op_span.1, &cast.target, tgt, 0) {
                    continue;
                }
                emit(
                    u,
                    file,
                    NARROWING_CAST,
                    "PLP-C001",
                    cast.line,
                    cast.col,
                    &format!("as {}", cast.target),
                    out,
                );
            }
        }
    }
}
