//! Shard-handle escape analysis (PLP-S00x, rule `no-cross-shard-state`).
//!
//! The lexical rule catches *textual* uses of the per-shard stepping
//! API outside the coordinator. This pass catches the indirect leaks a
//! file allowlist cannot see: code handing the *capability* out —
//!
//! * **PLP-S002** — a function returning a mutable reference to a
//!   shard handle type (any impl owner of the stepping API, derived
//!   from the definitions, not hard-coded).
//! * **PLP-S003** — a struct field storing a mutable shard-handle
//!   reference, parking the capability where any holder can step
//!   shards later.
//! * **PLP-S004** — coordinator code letting a closure that performs
//!   stepping calls escape (returned, produced as the tail value, or
//!   stored into `self`); the closure *is* the stepping capability.
//!
//! S002/S003 apply to every library file — the coordinator included:
//! its privilege is to step shards, not to re-export that right.
//! S004 is scoped to coordinator files; elsewhere the stepping call
//! inside the closure already trips the lexical rule.

use crate::lint::rules::{Finding, NO_CROSS_SHARD_STATE};
use crate::passes::{emit, Universe};
use crate::syntax::{ExprInfo, StmtKind};

/// The per-shard stepping/seal API names (mirrors the lexical rule).
const STEP_API: [&str; 5] = [
    "step_store",
    "step_load",
    "enable_seal_log",
    "drain_seals_into",
    "last_completion_cycle",
];

/// Whether `ty` mentions a mutable reference to `handle` (as a whole
/// word: `&mut Simulation`, `&'a mut Simulation`, …).
fn mentions_mut_handle(ty: &str, handle: &str) -> bool {
    let needle = format!("mut {handle}");
    let mut rest = ty;
    while let Some(at) = rest.find(&needle) {
        let after = &rest[at + needle.len()..];
        let word_end = !after
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if word_end {
            return true;
        }
        rest = &rest[at + needle.len()..];
    }
    false
}

/// Whether `e` contains a stepping call made from inside a closure.
fn closure_steps(e: &ExprInfo) -> bool {
    !e.closures.is_empty()
        && e.calls
            .iter()
            .any(|c| c.in_closure && STEP_API.contains(&c.name.as_str()))
}

/// Runs the shard-escape pass over one file.
pub fn run(u: &Universe, file: usize, out: &mut Vec<Finding>) {
    let unit = &u.files[file];
    if !unit.scope.library {
        return;
    }
    let handles = u.owners_of(&STEP_API);
    if handles.is_empty() {
        return;
    }

    for f in &unit.parsed.functions {
        if u.in_test(file, f.line) {
            continue;
        }
        if let Some(rt) = &f.ret_ty {
            if let Some(h) = handles.iter().find(|h| mentions_mut_handle(rt, h)) {
                emit(
                    u,
                    file,
                    NO_CROSS_SHARD_STATE,
                    "PLP-S002",
                    f.line,
                    0,
                    &format!("fn {} returns mutable access to shard handle {h}", f.name),
                    out,
                );
            }
        }
    }

    for s in &unit.parsed.structs {
        if u.in_test(file, s.line) {
            continue;
        }
        for (fname, fty) in &s.fields {
            if let Some(h) = handles.iter().find(|h| mentions_mut_handle(fty, h)) {
                emit(
                    u,
                    file,
                    NO_CROSS_SHARD_STATE,
                    "PLP-S003",
                    s.line,
                    0,
                    &format!("field {fname} stores mutable access to shard handle {h}"),
                    out,
                );
            }
        }
    }

    if !unit.scope.coordinator {
        return;
    }
    for f in &unit.parsed.functions {
        if u.in_test(file, f.line) {
            continue;
        }
        let Some(body) = &f.body else { continue };
        let last = body.stmts.len().saturating_sub(1);
        for (i, st) in body.stmts.iter().enumerate() {
            let escaping: Option<&ExprInfo> = match &st.kind {
                StmtKind::Return { value } => value.as_ref(),
                // Tail value of the function body.
                StmtKind::Expr { expr } if i == last => Some(expr),
                // Stored into engine/coordinator state.
                StmtKind::Expr { expr }
                    if expr
                        .assign
                        .as_ref()
                        .is_some_and(|a| a.root == "self") =>
                {
                    Some(expr)
                }
                _ => None,
            };
            if let Some(e) = escaping {
                if closure_steps(e) {
                    emit(
                        u,
                        file,
                        NO_CROSS_SHARD_STATE,
                        "PLP-S004",
                        e.line,
                        0,
                        "a closure performing shard stepping escapes the coordinator",
                        out,
                    );
                }
            }
        }
    }
}
