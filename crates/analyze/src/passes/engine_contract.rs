//! The persist-order contract over `UpdateEngine` methods (PLP-E00x).
//!
//! Scope: functions in engine files (`crates/core/src/engine/`) that
//! take an `EngineCtx` parameter — the persist/seal entry points. The
//! mutant factory is exempt (its seeded violations are the sanitizer's
//! test corpus), as is test code.
//!
//! Three obligations, all proved on the CFG under the optimistic loop
//! stance (a real walk visits at least one tree level):
//!
//! * **PLP-E001** — an update prepared via `node_ready` must be
//!   reported through `note_update` on *every* onward path before the
//!   function exits. A path that fetches/verifies a node but never
//!   notes it hides work from the sanitizer tap.
//! * **PLP-E002** — no exit may leave noted updates unsealed: once a
//!   path notes an update, it must write engine state (`self` field
//!   assignment or a mutating collection call — the seal/ack) before
//!   returning. An early `return` between note and seal fires here.
//! * **PLP-E003** — per-iteration form of E001: a `continue` that
//!   jumps back to the loop header before the iteration's note leaves
//!   that level unreported even though the walk moved on.

use crate::cfg::{self, Atom, AtomKind, EdgeKind};
use crate::dataflow;
use crate::lint::rules::{Finding, ENGINE_CONTRACT};
use crate::passes::{emit, takes_engine_ctx, Universe};

/// Runs the engine-contract pass over one file.
pub fn run(u: &Universe, file: usize, out: &mut Vec<Finding>) {
    let unit = &u.files[file];
    if !unit.scope.engine || unit.scope.mutant_factory {
        return;
    }
    for f in &unit.parsed.functions {
        if !takes_engine_ctx(f) || u.in_test(file, f.line) {
            continue;
        }
        let Some(cfg) = cfg::build(f) else { continue };
        let owner = f.owner.as_deref();
        let notes = |a: &Atom<'_>| {
            a.expr
                .is_some_and(|e| e.calls.iter().any(|c| u.call_notes(c, owner)))
        };
        let seals = |a: &Atom<'_>| {
            a.expr.is_some_and(|e| {
                e.assign
                    .as_ref()
                    .is_some_and(|w| w.root == "self" && w.field.is_some())
                    || e.calls.iter().any(|c| u.call_writes_self(c, owner))
            })
        };

        // E001: every node_ready is followed by a note on all paths.
        let note_table = dataflow::must_hit_from(&cfg, &notes, true);
        for (b, i, a) in cfg.atoms() {
            let prepares = a
                .expr
                .is_some_and(|e| e.calls.iter().any(|c| c.name == "node_ready"));
            if prepares && !dataflow::must_hit_after(&cfg, &note_table, &notes, true, b, i) {
                emit(
                    u,
                    file,
                    ENGINE_CONTRACT,
                    "PLP-E001",
                    a.line,
                    0,
                    "node_ready result can reach the exit without note_update",
                    out,
                );
            }
        }

        // E002: needs-seal bit — set by a note, cleared by a seal. Any
        // exit predecessor still carrying the bit returns unsealed
        // state. An atom that both notes and seals evaluates its
        // right-hand side first, so the seal wins.
        let (_, outs) = dataflow::forward_state(&cfg, true, |a: &Atom<'_>, s| {
            if seals(a) {
                false
            } else if notes(a) {
                true
            } else {
                s
            }
        });
        let mut flagged = Vec::new();
        for &(p, k) in &cfg.blocks[cfg.exit].preds {
            if k == EdgeKind::ZeroTrip || !outs[p] {
                continue;
            }
            let line = cfg.blocks[p]
                .atoms
                .last()
                .map(|a| a.line)
                .unwrap_or(f.line);
            if !flagged.contains(&line) {
                flagged.push(line);
                emit(
                    u,
                    file,
                    ENGINE_CONTRACT,
                    "PLP-E002",
                    line,
                    0,
                    "exit path leaves noted updates unsealed",
                    out,
                );
            }
        }

        // E003: a continue that skips the iteration's note.
        for lp in &cfg.loops {
            let mut body = Vec::new();
            let mut stack = vec![lp.body_entry];
            let mut seen = vec![false; cfg.blocks.len()];
            while let Some(b) = stack.pop() {
                if b == lp.header || b == lp.after || b == cfg.exit {
                    continue;
                }
                if std::mem::replace(&mut seen[b], true) {
                    continue;
                }
                body.push(b);
                for &(t, _) in &cfg.blocks[b].succs {
                    stack.push(t);
                }
            }
            let obligated = body
                .iter()
                .any(|&b| cfg.blocks[b].atoms.iter().any(&notes));
            if !obligated {
                continue;
            }
            // Walk forward from the body entry, stopping any path at
            // its first note; a continue reached first is a skip.
            let mut stack = vec![lp.body_entry];
            let mut seen = vec![false; cfg.blocks.len()];
            while let Some(b) = stack.pop() {
                if b == lp.header || b == lp.after || b == cfg.exit {
                    continue;
                }
                if std::mem::replace(&mut seen[b], true) {
                    continue;
                }
                let mut noted = false;
                for a in &cfg.blocks[b].atoms {
                    if notes(a) {
                        noted = true;
                        break;
                    }
                    if a.kind == AtomKind::Continue
                        && cfg.blocks[b]
                            .succs
                            .iter()
                            .any(|&(t, k)| t == lp.header && k == EdgeKind::Back)
                    {
                        emit(
                            u,
                            file,
                            ENGINE_CONTRACT,
                            "PLP-E003",
                            a.line,
                            0,
                            "continue skips this iteration's note_update",
                            out,
                        );
                        noted = true; // stop exploring past the continue
                        break;
                    }
                }
                if !noted {
                    for &(t, _) in &cfg.blocks[b].succs {
                        stack.push(t);
                    }
                }
            }
        }
    }
}
