//! Semantic passes over the parsed/CFG representation.
//!
//! [`Universe`] is the whole-workspace symbol table: every file lexed
//! and parsed, structs indexed by name, functions indexed by name and
//! by `(owner, name)`, plus three interprocedural summaries computed
//! to a bounded fixpoint:
//!
//! * `notes` — the function (transitively) calls
//!   `EngineCtx::note_update`, the single engine reporting tap.
//! * `writes` — the function (transitively) writes `self` state — an
//!   assignment to a `self` field or a mutating collection call on
//!   one — which is how an engine seals/acks an update batch.
//! * `crosses` — every path through the function crosses a named
//!   failpoint (`fp_hit`/`note_update`), under optimistic loops.
//!
//! Call resolution is name-based and deliberately conservative:
//! `self.f()` resolves through the enclosing impl owner, `self.x.f()`
//! through the owner's field type, `Type::f()` through the qualifier;
//! a bare name resolves only when unambiguous. Unresolvable calls
//! contribute `false` to every summary, so the passes over-report
//! rather than silently trust unknown code.
//!
//! Each pass lives in its own submodule and reports [`Finding`]s with
//! stable diagnostic codes (`PLP-E…`, `PLP-F…`, `PLP-S…`, `PLP-C…`,
//! `PLP-A…`); the rule ids tie into the existing allow machinery.

pub mod engine_contract;
pub mod failpoint_cover;
pub mod narrowing;
pub mod shard_escape;
pub mod unused_allow;

use crate::cfg::{self, Atom};
use crate::lint::rules::{FileScope, Finding};
use crate::lint::scan::SourceModel;
use crate::syntax::{self, Block, Call, ExprInfo, Function, ParsedFile, StmtKind, TokenStream};
use std::collections::HashMap;

/// One analyzed file.
pub struct FileUnit {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// Scope classification (decides which passes apply).
    pub scope: FileScope,
    /// Full source text.
    pub text: String,
    /// Token stream.
    pub tokens: TokenStream,
    /// Parsed items.
    pub parsed: ParsedFile,
    /// Line model (allow directives, test regions).
    pub model: SourceModel,
}

/// Whole-workspace symbol table and summaries.
pub struct Universe {
    /// All files, in deterministic path order.
    pub files: Vec<FileUnit>,
    /// Global function table: `(file index, function index)`.
    fns: Vec<(usize, usize)>,
    by_name: HashMap<String, Vec<usize>>,
    by_owner: HashMap<(String, String), Vec<usize>>,
    structs: HashMap<String, Vec<(String, String)>>,
    notes: Vec<bool>,
    writes: Vec<bool>,
    crosses: Vec<bool>,
}

/// Mutating collection calls that count as writing the receiver.
const MUTATORS: [&str; 5] = ["push", "push_back", "insert", "extend", "append"];

impl Universe {
    /// Builds the universe from `(path, text)` pairs and computes the
    /// interprocedural summaries.
    pub fn build(inputs: Vec<(String, String)>) -> Universe {
        let mut files = Vec::with_capacity(inputs.len());
        for (path, text) in inputs {
            let tokens = syntax::lex(&text);
            let parsed = syntax::parse(&text, &tokens);
            let model = SourceModel::parse(&text);
            let scope = FileScope::classify(&path);
            files.push(FileUnit {
                path,
                scope,
                text,
                tokens,
                parsed,
                model,
            });
        }
        let mut u = Universe {
            files,
            fns: Vec::new(),
            by_name: HashMap::new(),
            by_owner: HashMap::new(),
            structs: HashMap::new(),
            notes: Vec::new(),
            writes: Vec::new(),
            crosses: Vec::new(),
        };
        for (fi, file) in u.files.iter().enumerate() {
            for s in &file.parsed.structs {
                u.structs
                    .entry(s.name.clone())
                    .or_default()
                    .extend(s.fields.iter().cloned());
            }
            for (xi, f) in file.parsed.functions.iter().enumerate() {
                let gid = u.fns.len();
                u.fns.push((fi, xi));
                u.by_name.entry(f.name.clone()).or_default().push(gid);
                if let Some(owner) = &f.owner {
                    u.by_owner
                        .entry((owner.clone(), f.name.clone()))
                        .or_default()
                        .push(gid);
                }
            }
        }
        u.notes = vec![false; u.fns.len()];
        u.writes = vec![false; u.fns.len()];
        u.crosses = vec![false; u.fns.len()];
        u.fixpoint();
        u
    }

    /// The function behind a global id.
    pub fn function(&self, gid: usize) -> &Function {
        let (fi, xi) = self.fns[gid];
        &self.files[fi].parsed.functions[xi]
    }

    /// Whether the line (1-based) sits in a test region of `file`.
    pub fn in_test(&self, file: usize, line: u32) -> bool {
        self.files[file]
            .model
            .lines
            .get(line.saturating_sub(1) as usize)
            .is_some_and(|l| l.in_test)
    }

    /// Field type on a struct, by name.
    pub fn field_ty(&self, owner: &str, field: &str) -> Option<&str> {
        self.structs
            .get(owner)?
            .iter()
            .find(|(n, _)| n == field)
            .map(|(_, t)| t.as_str())
    }

    /// Resolves a call site to candidate global function ids, given
    /// the caller's impl owner.
    pub fn resolve(&self, call: &Call, caller_owner: Option<&str>) -> Vec<usize> {
        if let Some(q) = &call.qual {
            let owned = self
                .by_owner
                .get(&(q.clone(), call.name.clone()))
                .cloned()
                .unwrap_or_default();
            if !owned.is_empty() {
                return owned;
            }
            return Vec::new();
        }
        match call.recv.as_slice() {
            [] => {
                // Free function: unambiguous by name only.
                let c = self.by_name.get(&call.name).cloned().unwrap_or_default();
                if c.len() == 1 {
                    c
                } else {
                    Vec::new()
                }
            }
            [s] if s == "self" => caller_owner
                .and_then(|o| self.by_owner.get(&(o.to_string(), call.name.clone())))
                .cloned()
                .unwrap_or_default(),
            [s, field] if s == "self" => {
                let Some(owner) = caller_owner else {
                    return Vec::new();
                };
                let Some(ft) = self.field_ty(owner, field) else {
                    return Vec::new();
                };
                let base = base_type(ft);
                self.by_owner
                    .get(&(base.to_string(), call.name.clone()))
                    .cloned()
                    .unwrap_or_default()
            }
            _ => Vec::new(),
        }
    }

    /// Whether a call (transitively) reports through `note_update`.
    pub fn call_notes(&self, call: &Call, caller_owner: Option<&str>) -> bool {
        if call.name == "note_update" {
            return true;
        }
        let c = self.resolve(call, caller_owner);
        !c.is_empty() && c.iter().all(|&g| self.notes[g])
    }

    /// Whether a call (transitively) writes `self` state when invoked
    /// on `self` or a `self` field.
    pub fn call_writes_self(&self, call: &Call, caller_owner: Option<&str>) -> bool {
        let on_self = call.recv.first().is_some_and(|r| r == "self");
        if !on_self {
            return false;
        }
        if call.recv.len() >= 2 && MUTATORS.contains(&call.name.as_str()) {
            return true;
        }
        let c = self.resolve(call, caller_owner);
        !c.is_empty() && c.iter().all(|&g| self.writes[g])
    }

    /// Whether a call crosses a failpoint on all its paths.
    pub fn call_crosses(&self, call: &Call, caller_owner: Option<&str>) -> bool {
        if call.name == "fp_hit" || call.name == "note_update" {
            return true;
        }
        let c = self.resolve(call, caller_owner);
        !c.is_empty() && c.iter().all(|&g| self.crosses[g])
    }

    /// Return type of the unique resolution of a call, if any.
    pub fn call_ret_ty(&self, call: &Call, caller_owner: Option<&str>) -> Option<&str> {
        let c = self.resolve(call, caller_owner);
        let mut ret: Option<&str> = None;
        for &g in &c {
            let r = self.function(g).ret_ty.as_deref()?;
            match ret {
                None => ret = Some(r),
                Some(prev) if prev == r => {}
                Some(_) => return None,
            }
        }
        ret
    }

    /// Owners of functions with any of the given names — used to
    /// derive the shard-handle types from the stepping API defs.
    pub fn owners_of(&self, names: &[&str]) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for (fi, file) in self.files.iter().enumerate() {
            let _ = fi;
            for f in &file.parsed.functions {
                if names.contains(&f.name.as_str()) {
                    if let Some(o) = &f.owner {
                        if !out.contains(o) {
                            out.push(o.clone());
                        }
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// Bounded fixpoint over the three summaries.
    fn fixpoint(&mut self) {
        for _ in 0..8 {
            let mut changed = false;
            for gid in 0..self.fns.len() {
                let (fi, xi) = self.fns[gid];
                let f = &self.files[fi].parsed.functions[xi];
                let owner = f.owner.as_deref();
                let Some(body) = &f.body else { continue };

                let mut notes = false;
                let mut writes = false;
                walk_exprs(body, &mut |e: &ExprInfo| {
                    for c in &e.calls {
                        notes |= self.call_notes(c, owner);
                        writes |= self.call_writes_self(c, owner);
                    }
                    if let Some(a) = &e.assign {
                        writes |= a.root == "self" && a.field.is_some();
                    }
                });
                // `let … = self.field…` style writes are assignments
                // only; collection mutators already covered above.

                let crosses = match cfg::build(f) {
                    Some(g) => {
                        let is_gen = |a: &Atom<'_>| {
                            a.expr.is_some_and(|e| {
                                e.calls.iter().any(|c| self.call_crosses(c, owner))
                            })
                        };
                        crate::dataflow::must_hit_from(&g, &is_gen, true)[g.entry]
                    }
                    None => false,
                };

                if notes != self.notes[gid] {
                    self.notes[gid] = notes;
                    changed = true;
                }
                if writes != self.writes[gid] {
                    self.writes[gid] = writes;
                    changed = true;
                }
                if crosses != self.crosses[gid] {
                    self.crosses[gid] = crosses;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// Strips references, `mut`, lifetimes and one smart-pointer layer
/// from a normalized type, yielding the base type name:
/// `&mut EngineCtx` → `EngineCtx`, `Box<OooCore>` → `OooCore`.
pub fn base_type(ty: &str) -> &str {
    let mut t = ty.trim();
    loop {
        let before = t;
        t = t.trim_start_matches('&').trim();
        if let Some(rest) = t.strip_prefix("mut ") {
            t = rest.trim();
        }
        if t.starts_with('\'') {
            // Lifetime: skip to the next space-separated word.
            t = t.split_once(' ').map(|(_, r)| r).unwrap_or("").trim();
        }
        for wrapper in ["Box<", "Rc<", "Arc<", "Option<"] {
            if let Some(rest) = t.strip_prefix(wrapper) {
                t = rest.trim_end_matches('>').trim();
            }
        }
        if t == before {
            break;
        }
    }
    // Drop generics on the base itself: `Vec<u8>` → `Vec`.
    t.split('<').next().unwrap_or(t)
}

/// Calls `f` on every expression in the block, recursively.
pub fn walk_exprs<'a>(b: &'a Block, f: &mut impl FnMut(&'a ExprInfo)) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Let {
                init, else_block, ..
            } => {
                if let Some(e) = init {
                    f(e);
                }
                if let Some(eb) = else_block {
                    walk_exprs(eb, f);
                }
            }
            StmtKind::Expr { expr } => f(expr),
            StmtKind::If {
                cond,
                then_b,
                else_b,
            } => {
                f(cond);
                walk_exprs(then_b, f);
                if let Some(eb) = else_b {
                    walk_exprs(eb, f);
                }
            }
            StmtKind::Match { scrut, arms } => {
                f(scrut);
                for arm in arms {
                    walk_exprs(&arm.body, f);
                }
            }
            StmtKind::Loop { header, body, .. } => {
                if let Some(h) = header {
                    f(h);
                }
                walk_exprs(body, f);
            }
            StmtKind::Return { value } => {
                if let Some(v) = value {
                    f(v);
                }
            }
            StmtKind::BareBlock { block } => walk_exprs(block, f),
            StmtKind::Break | StmtKind::Continue | StmtKind::Opaque => {}
        }
    }
}

/// Whether a function takes an `EngineCtx` parameter — the scope
/// marker for the engine-contract pass.
pub fn takes_engine_ctx(f: &Function) -> bool {
    f.params.iter().any(|p| p.ty.contains("EngineCtx"))
}

/// Runs every semantic pass over one file of the universe. The
/// lexical rules and the unused-allow pass are layered on by the
/// caller ([`crate::lint`]).
pub fn run_semantic(u: &Universe, file: usize) -> Vec<Finding> {
    let mut out = Vec::new();
    engine_contract::run(u, file, &mut out);
    failpoint_cover::run(u, file, &mut out);
    shard_escape::run(u, file, &mut out);
    narrowing::run(u, file, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.code).cmp(&(b.line, b.col, b.code)));
    out
}

/// Helper for passes: pushes a finding with the allow flag resolved
/// against the file's line model.
#[allow(clippy::too_many_arguments)]
pub fn emit(
    u: &Universe,
    file: usize,
    rule: &'static str,
    code: &'static str,
    line: u32,
    col: u32,
    snippet: &str,
    out: &mut Vec<Finding>,
) {
    let unit = &u.files[file];
    out.push(Finding {
        rule,
        code,
        path: unit.path.clone(),
        line: line as usize,
        col: col as usize,
        snippet: snippet.to_string(),
        allowed: unit.model.allows(line.saturating_sub(1) as usize, rule),
    });
}
