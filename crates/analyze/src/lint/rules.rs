//! The eight workspace lint rules.
//!
//! Each rule is a pattern over the lexed [`SourceModel`] (comments and
//! literals already blanked, test regions marked). Rules fire only
//! outside test code, and every hit can be excused in the source with
//! a reasoned `// lint: allow(<rule>) <why>` directive — a directive
//! without a reason is itself a finding ([`ALLOW_REASON`]).

use super::scan::{parse_allows, SourceModel};

/// Stable rule identifier (the name used in allow directives).
pub type RuleId = &'static str;

/// Library code must not panic: `.unwrap()`, `.expect(…)` and
/// `panic!` belong in tests and binaries, not in the simulator —
/// errors surface as `ConfigError`/`NvmError` values instead.
pub const NO_PANIC_LIB: RuleId = "no-panic-lib";
/// Address/geometry arithmetic in `plp-core`/`plp-bmt` must not use
/// bare `as` narrowing; use `try_from`/`try_into` or justify the cast.
pub const NARROWING_CAST: RuleId = "narrowing-cast";
/// `match`es over an update scheme must stay exhaustive — a `_ =>`
/// arm silently absorbs the next scheme someone adds.
pub const SCHEME_MATCH_WILDCARD: RuleId = "scheme-match-wildcard";
/// Simulation code must be deterministic: no wall clocks and no
/// OS-seeded RNGs outside explicitly seeded constructors.
pub const NONDETERMINISM: RuleId = "nondeterminism";
/// Library retry loops must go through the shared `plp_core::retry`
/// policy instead of hand-rolling attempt counting and backoff: a
/// loop header that mentions retrying without mentioning a policy is
/// a bare retry loop.
pub const NO_BARE_RETRY_LOOP: RuleId = "no-bare-retry-loop";
/// BMT node storage must stay arena-backed: a map keyed by
/// `NodeLabel` in the address-math crates reintroduces the hash-probe
/// hot path the dense arena replaced. Tests (golden oracles) are
/// exempt, as is any hit with a reasoned allow directive.
pub const NO_NODE_HASHMAP: RuleId = "no-node-hashmap";
/// Process-lifecycle manipulation is the crash harness's exclusive
/// domain: `libc::kill` and `Child::kill` (`.kill()`) are banned
/// everywhere except the harness modules (the crash harness, its
/// binary, and the process-isolation module, which SIGKILLs its own
/// rlimit-fenced children), and `process::exit` is additionally
/// banned in *library* code — a library that exits hijacks its host
/// process (binaries keep using it for exit codes). The SIGKILL
/// protocol must stay auditable in a small, named set of files.
pub const NO_RAW_PROCESS_KILL: RuleId = "no-raw-process-kill";
/// Per-shard simulation state is the sharded coordinator's exclusive
/// domain: the stepping API (`step_store`/`step_load`) and the seal
/// plumbing (`enable_seal_log`/`drain_seals_into`/
/// `last_completion_cycle`) may only be referenced from the
/// coordinator module and their definition site. Anywhere else, a
/// caller driving a shard directly bypasses the root-of-roots epoch
/// barrier the coordinator enforces.
pub const NO_CROSS_SHARD_STATE: RuleId = "no-cross-shard-state";
/// On every path through an `UpdateEngine` persist method, each
/// update must be reported through `EngineCtx::note_update` before the
/// batch is sealed, and no early return may leave noted updates
/// unsealed. Checked by CFG dataflow in `passes::engine_contract`.
pub const ENGINE_CONTRACT: RuleId = "engine-contract";
/// Every path through the system persist drivers (`persist_block`,
/// `seal_epoch`) and the durable recovery driver (`recover_image`)
/// must cross at least one named failpoint from the crash-harness
/// catalog, so SIGKILL sweeps — single- and double-kill — can never
/// silently lose coverage of a new code path. Checked in
/// `passes::failpoint_cover`.
pub const FAILPOINT_COVERAGE: RuleId = "failpoint-coverage";
/// A `// lint: allow(...)` directive that no longer suppresses any
/// finding is stale and must be deleted; an allow naming an unknown
/// rule never suppressed anything. Checked in `passes::unused_allow`.
pub const UNUSED_ALLOW: RuleId = "unused-allow";
/// An allow directive without a reason.
pub const ALLOW_REASON: RuleId = "allow-reason";

/// All real rules, in reporting order ([`ALLOW_REASON`] is meta).
pub const RULES: [RuleId; 11] = [
    NO_PANIC_LIB,
    NARROWING_CAST,
    SCHEME_MATCH_WILDCARD,
    NONDETERMINISM,
    NO_BARE_RETRY_LOOP,
    NO_NODE_HASHMAP,
    NO_RAW_PROCESS_KILL,
    NO_CROSS_SHARD_STATE,
    ENGINE_CONTRACT,
    FAILPOINT_COVERAGE,
    UNUSED_ALLOW,
];

/// Default diagnostic code for a rule's lexical findings. Semantic
/// passes attach more specific codes (`PLP-E001`…); this covers the
/// scanner-produced rules and the meta rule.
pub fn code_for(rule: RuleId) -> &'static str {
    match rule {
        NO_PANIC_LIB => "PLP-L001",
        SCHEME_MATCH_WILDCARD => "PLP-L002",
        NONDETERMINISM => "PLP-L003",
        NO_BARE_RETRY_LOOP => "PLP-L004",
        NO_NODE_HASHMAP => "PLP-L005",
        NO_RAW_PROCESS_KILL => "PLP-L006",
        NO_CROSS_SHARD_STATE => "PLP-L007",
        NARROWING_CAST => "PLP-C001",
        ENGINE_CONTRACT => "PLP-E000",
        FAILPOINT_COVERAGE => "PLP-F001",
        UNUSED_ALLOW => "PLP-A002",
        _ => "PLP-A001",
    }
}

/// The per-shard stepping/seal API ([`NO_CROSS_SHARD_STATE`]).
const SHARD_STATE_API: [&str; 5] = [
    "step_store(",
    "step_load(",
    "enable_seal_log(",
    "drain_seals_into(",
    "last_completion_cycle(",
];

/// One rule hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Stable diagnostic code (`PLP-L001`, `PLP-E002`, …).
    pub code: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column; 0 when the finding is line-granular.
    pub col: usize,
    /// The offending pattern, for the report.
    pub snippet: String,
    /// Whether a reasoned allow directive covers the hit.
    pub allowed: bool,
}

/// Where a file sits, which decides which rules see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// Under some crate's `src/`, excluding `src/bin/` — code other
    /// crates link against.
    pub library: bool,
    /// In `plp-core` or `plp-bmt`, the crates doing address and
    /// geometry math.
    pub address_math: bool,
    /// The crash-harness module or its binary — the only code allowed
    /// to SIGKILL processes ([`NO_RAW_PROCESS_KILL`]).
    pub harness: bool,
    /// The sharded coordinator or the per-shard stepping API's
    /// definition site — the only code allowed to touch per-shard
    /// state directly ([`NO_CROSS_SHARD_STATE`]).
    pub coordinator: bool,
    /// An `UpdateEngine` implementation file — subject to the
    /// persist-order contract ([`ENGINE_CONTRACT`]).
    pub engine: bool,
    /// The deliberate bug factory (`engine/mutant.rs`): its seeded
    /// contract violations are the sanitizer's test corpus, so the
    /// engine-contract pass skips it by design.
    pub mutant_factory: bool,
    /// The system persist drivers — subject to failpoint-coverage
    /// ([`FAILPOINT_COVERAGE`]).
    pub persist_driver: bool,
    /// The durable recovery writeback driver (`crash::recover_image`)
    /// — its repair paths are subject to the same failpoint-coverage
    /// obligation, against the *recovery* failpoint catalog.
    pub recovery_driver: bool,
}

impl FileScope {
    /// Classifies a repo-relative path.
    pub fn classify(path: &str) -> Self {
        let library = path.contains("/src/") && !path.contains("/src/bin/");
        let address_math = library
            && (path.starts_with("crates/core/") || path.starts_with("crates/bmt/"));
        let harness = path.starts_with("crates/bench/src/crash")
            || path.starts_with("crates/bench/src/bin/crash_harness")
            || path == "crates/bench/src/isolate.rs";
        let coordinator = path == "crates/core/src/shard.rs"
            || path == "crates/core/src/system.rs";
        let engine = path.starts_with("crates/core/src/engine/");
        let mutant_factory = path == "crates/core/src/engine/mutant.rs";
        let persist_driver = path == "crates/core/src/system.rs";
        let recovery_driver = path == "crates/core/src/crash.rs";
        FileScope {
            library,
            address_math,
            harness,
            coordinator,
            engine,
            mutant_factory,
            persist_driver,
            recovery_driver,
        }
    }
}

/// Runs every applicable rule over `model`, returning hits (allowed
/// ones included, flagged) in line order.
pub fn run(path: &str, model: &SourceModel, scope: FileScope) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |rule: RuleId, line: usize, snippet: &str| {
        findings.push(Finding {
            rule,
            code: if rule == ALLOW_REASON {
                "PLP-A001"
            } else {
                code_for(rule)
            },
            path: path.to_string(),
            line: line + 1,
            col: 0,
            snippet: snippet.to_string(),
            allowed: model.allows(line, rule),
        });
    };

    // Depth of the innermost scheme-`match` block still open, if any.
    let mut scheme_match: Option<i64> = None;
    let mut depth: i64 = 0;

    for (idx, line) in model.lines.iter().enumerate() {
        for d in parse_allows(&line.comment) {
            if !d.has_reason {
                push(ALLOW_REASON, idx, &format!("lint: allow({}) without a reason", d.rule));
            }
        }
        if line.in_test {
            depth += brace_delta(&line.code);
            continue;
        }
        let code = line.code.as_str();

        if scope.library {
            for pat in [".unwrap()", ".expect(", "panic!(", "unimplemented!(", "todo!("] {
                for _ in code.matches(pat) {
                    push(NO_PANIC_LIB, idx, pat.trim_end_matches(['(', ')']));
                }
            }
        }
        if scope.address_math {
            // Narrowing casts are the semantic pass's job now
            // (`passes::narrowing`, PLP-C001) — it proves most casts
            // safe from declared types and reaching definitions
            // instead of flagging every `as` textually.
            for hit in node_map_types(code) {
                push(NO_NODE_HASHMAP, idx, &hit);
            }
        }
        for pat in ["SystemTime", "Instant::now", "thread_rng", "from_entropy"] {
            if code.contains(pat) {
                push(NONDETERMINISM, idx, pat);
            }
        }
        if scope.library && is_bare_retry_loop(code) {
            push(NO_BARE_RETRY_LOOP, idx, "bare retry loop");
        }
        if scope.library && !scope.coordinator {
            for pat in SHARD_STATE_API {
                for _ in code.matches(pat) {
                    push(NO_CROSS_SHARD_STATE, idx, pat.trim_end_matches('('));
                }
            }
        }
        if !scope.harness {
            for pat in ["libc::kill", ".kill()"] {
                for _ in code.matches(pat) {
                    push(NO_RAW_PROCESS_KILL, idx, pat);
                }
            }
            if scope.library {
                for _ in code.matches("process::exit(") {
                    push(NO_RAW_PROCESS_KILL, idx, "process::exit");
                }
            }
        }

        // Exhaustive-scheme-match tracking: once inside a `match` whose
        // scrutinee mentions a scheme, a `_ =>` arm at any depth above
        // the match body is a wildcard over schemes.
        if scheme_match.is_none() && code.contains("match ") && mentions_scheme(code) {
            scheme_match = Some(depth);
        }
        if let Some(open) = scheme_match {
            if code.contains("_ =>") || code.contains("_ if ") {
                push(SCHEME_MATCH_WILDCARD, idx, "_ =>");
            }
            depth += brace_delta(code);
            if depth <= open {
                scheme_match = None;
            }
        } else {
            depth += brace_delta(code);
        }
    }
    findings
}

fn brace_delta(code: &str) -> i64 {
    let open = code.matches('{').count() as i64;
    let close = code.matches('}').count() as i64;
    open - close
}

fn mentions_scheme(code: &str) -> bool {
    let after = &code[code.find("match ").unwrap_or(0)..];
    after.contains("scheme") || after.contains("UpdateScheme")
}

/// Whether a code line is a loop header that counts retries/backs off
/// by hand. A loop header mentioning a policy (`RetryPolicy`, a
/// `policy.…` bound) is the blessed pattern — the schedule comes from
/// `plp_core::retry` — so it is exempt.
fn is_bare_retry_loop(code: &str) -> bool {
    let is_header = code.contains("while ")
        || (code.contains("for ") && code.contains(" in "))
        || code.trim_start().starts_with("loop");
    if !is_header {
        return false;
    }
    let lowered = code.to_lowercase();
    let retries = ["retry", "retries", "attempt", "backoff"]
        .iter()
        .any(|w| lowered.contains(w));
    // "olicy" covers both `policy.max_retries` and `RetryPolicy`.
    retries && !lowered.contains("olicy")
}

/// Every map type keyed by a BMT node label on a blanked code line:
/// `…Map<NodeLabel, …>` (any path prefix on the key type). Matches
/// `HashMap`, `BTreeMap`, `FastMap` and friends by suffix, so a new
/// alias can't dodge the rule.
fn node_map_types(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (pos, _) in code.match_indices("Map<") {
        // The key type is everything up to the first comma at this
        // nesting level; a path-qualified `plp_bmt::NodeLabel` counts.
        let args = &code[pos + 4..];
        let key = args.split([',', '>']).next().unwrap_or("");
        if key.trim().split("::").last() == Some("NodeLabel") {
            out.push(format!("Map<{}", key.trim()));
        }
    }
    out
}

/// The integer types an `as` cast may silently truncate to — shared
/// with the semantic narrowing pass.
pub const NARROW: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: FileScope = FileScope {
        library: true,
        address_math: true,
        harness: false,
        coordinator: false,
        engine: false,
        mutant_factory: false,
        persist_driver: false,
        recovery_driver: false,
    };

    fn hits(src: &str, scope: FileScope) -> Vec<Finding> {
        run("crates/core/src/x.rs", &SourceModel::parse(src), scope)
    }

    #[test]
    fn panics_flagged_in_library_not_tests() {
        let src = concat!(
            "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test] fn t() { z.unwrap(); }\n",
            "}\n",
        );
        let f = hits(src, LIB);
        let panics: Vec<_> = f.iter().filter(|f| f.rule == NO_PANIC_LIB).collect();
        assert_eq!(panics.len(), 3);
        assert!(panics.iter().all(|f| f.line == 1));
    }

    #[test]
    fn binaries_are_exempt_from_no_panic() {
        let scope = FileScope::classify("crates/bench/src/bin/all.rs");
        assert!(!scope.library);
        let f = run(
            "crates/bench/src/bin/all.rs",
            &SourceModel::parse("fn main() { x.unwrap(); }\n"),
            scope,
        );
        assert!(f.iter().all(|f| f.rule != NO_PANIC_LIB));
    }

    #[test]
    fn narrowing_is_no_longer_lexical() {
        // `as u32` on its own no longer fires here: the semantic pass
        // (`passes::narrowing`) owns PLP-C001 with value-range proofs.
        let src = "let x = big as u32; let z = n as usize;\n";
        let f = hits(src, LIB);
        assert!(f.iter().all(|f| f.rule != NARROWING_CAST));
        let other = FileScope::classify("crates/trace/src/lib.rs");
        assert!(!other.address_math);
    }

    #[test]
    fn scope_flags_for_engine_and_driver_files() {
        let eng = FileScope::classify("crates/core/src/engine/pipeline.rs");
        assert!(eng.engine && !eng.mutant_factory);
        let mutant = FileScope::classify("crates/core/src/engine/mutant.rs");
        assert!(mutant.engine && mutant.mutant_factory);
        let sys = FileScope::classify("crates/core/src/system.rs");
        assert!(sys.persist_driver && sys.coordinator);
        assert!(!FileScope::classify("crates/core/src/shard.rs").persist_driver);
        let rec = FileScope::classify("crates/core/src/crash.rs");
        assert!(rec.recovery_driver && !rec.persist_driver);
        assert!(!sys.recovery_driver);
    }

    #[test]
    fn every_rule_has_a_stable_code() {
        let mut codes: Vec<&str> = RULES.iter().map(|r| code_for(r)).collect();
        codes.sort_unstable();
        let before = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), before, "codes must be distinct");
        assert!(codes.iter().all(|c| c.starts_with("PLP-")));
    }

    #[test]
    fn scheme_match_wildcards_are_flagged() {
        let src = concat!(
            "match config.scheme {\n",
            "    UpdateScheme::Sp => a(),\n",
            "    _ => b(),\n",
            "}\n",
            "match unrelated {\n",
            "    _ => c(),\n",
            "}\n",
        );
        let f = hits(src, LIB);
        let wild: Vec<_> = f
            .iter()
            .filter(|f| f.rule == SCHEME_MATCH_WILDCARD)
            .collect();
        assert_eq!(wild.len(), 1);
        assert_eq!(wild[0].line, 3);
    }

    #[test]
    fn nondeterminism_sources_are_flagged() {
        let f = hits("let t = SystemTime::now(); let r = thread_rng();\n", LIB);
        assert_eq!(f.iter().filter(|f| f.rule == NONDETERMINISM).count(), 2);
    }

    #[test]
    fn node_label_maps_are_flagged_in_address_crates() {
        let src = concat!(
            "nodes: HashMap<NodeLabel, NodeValue>,\n",
            "dirty: BTreeMap<plp_bmt::NodeLabel, Cycle>,\n",
            "fast: FastMap<NodeLabel, (EpochId, Cycle)>,\n",
            "fine: HashMap<u64, NodeValue>,\n",
            "also_fine: Vec<NodeLabel>,\n",
        );
        let f = hits(src, LIB);
        let maps: Vec<_> = f.iter().filter(|f| f.rule == NO_NODE_HASHMAP).collect();
        assert_eq!(maps.len(), 3, "{maps:?}");
        assert_eq!(maps[0].line, 1);
        assert_eq!(maps[2].line, 3);
    }

    #[test]
    fn node_label_maps_exempt_in_tests_and_outside_address_math() {
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    struct Golden { nodes: HashMap<NodeLabel, NodeValue> }\n",
            "}\n",
        );
        let f = hits(src, LIB);
        assert!(f.iter().all(|f| f.rule != NO_NODE_HASHMAP));

        let other = FileScope::classify("crates/trace/src/lib.rs");
        let f = run(
            "crates/trace/src/lib.rs",
            &SourceModel::parse("x: HashMap<NodeLabel, u64>,\n"),
            other,
        );
        assert!(f.iter().all(|f| f.rule != NO_NODE_HASHMAP));
    }

    #[test]
    fn reasoned_allows_mark_findings_allowed() {
        let src = concat!(
            "// lint: allow(no-panic-lib) poisoned mutex means a worker already panicked\n",
            "let g = m.lock().unwrap();\n",
            "let h = n.lock().unwrap();\n",
        );
        let f = hits(src, LIB);
        let unwraps: Vec<_> = f.iter().filter(|f| f.rule == NO_PANIC_LIB).collect();
        assert_eq!(unwraps.len(), 2);
        assert!(unwraps[0].allowed);
        assert!(!unwraps[1].allowed);
    }

    #[test]
    fn bare_retry_loops_are_flagged_policy_loops_are_not() {
        let src = concat!(
            "while failed && attempt < max_retries {\n",
            "    attempt += 1;\n",
            "}\n",
            "for attempt in 0..=policy.max_retries {\n",
            "    go(attempt);\n",
            "}\n",
            "let backoff = policy.delay_ns(token, attempt);\n",
            "loop {\n",
            "    next();\n",
            "}\n",
        );
        let f = hits(src, LIB);
        let bare: Vec<_> = f
            .iter()
            .filter(|f| f.rule == NO_BARE_RETRY_LOOP)
            .collect();
        assert_eq!(bare.len(), 1, "{bare:?}");
        assert_eq!(bare[0].line, 1);
    }

    #[test]
    fn retry_loops_outside_libraries_are_exempt() {
        let scope = FileScope::classify("crates/bench/src/bin/all.rs");
        let f = run(
            "crates/bench/src/bin/all.rs",
            &SourceModel::parse("while retries < 3 { retries += 1; }\n"),
            scope,
        );
        assert!(f.iter().all(|f| f.rule != NO_BARE_RETRY_LOOP));
    }

    #[test]
    fn raw_process_kills_are_flagged_outside_the_harness() {
        // Library code: exit and both kill spellings all fire.
        let src = "fn f(c: &mut Child) { std::process::exit(1); libc::kill(pid, 9); c.kill(); }\n";
        let f = hits(src, LIB);
        let kills: Vec<_> = f
            .iter()
            .filter(|f| f.rule == NO_RAW_PROCESS_KILL)
            .collect();
        assert_eq!(kills.len(), 3, "{kills:?}");

        // A non-harness binary: exit is the normal exit-code path,
        // but killing processes is still the harness's domain.
        let scope = FileScope::classify("crates/bench/src/bin/all.rs");
        assert!(!scope.harness);
        let f = run(
            "crates/bench/src/bin/all.rs",
            &SourceModel::parse(src),
            scope,
        );
        assert_eq!(
            f.iter().filter(|f| f.rule == NO_RAW_PROCESS_KILL).count(),
            2
        );
    }

    #[test]
    fn harness_files_may_kill() {
        for path in [
            "crates/bench/src/crash.rs",
            "crates/bench/src/bin/crash_harness.rs",
            "crates/bench/src/isolate.rs",
        ] {
            let scope = FileScope::classify(path);
            assert!(scope.harness, "{path} must classify as harness");
            let f = run(
                path,
                &SourceModel::parse("let _ = child.kill(); std::process::exit(1);\n"),
                scope,
            );
            assert!(f.iter().all(|f| f.rule != NO_RAW_PROCESS_KILL));
        }
    }

    #[test]
    fn shard_state_access_is_flagged_outside_the_coordinator() {
        let src = concat!(
            "fn f(sim: &mut Simulation) {\n",
            "    sim.enable_seal_log();\n",
            "    let out = sim.step_store(addr, false, now, clock);\n",
            "    sim.step_load(addr, now);\n",
            "    sim.drain_seals_into(&mut buf);\n",
            "    let c = sim.last_completion_cycle();\n",
            "}\n",
        );
        let f = hits(src, LIB);
        let shard: Vec<_> = f
            .iter()
            .filter(|f| f.rule == NO_CROSS_SHARD_STATE)
            .collect();
        assert_eq!(shard.len(), 5, "{shard:?}");
    }

    #[test]
    fn coordinator_files_may_step_shards() {
        for path in ["crates/core/src/shard.rs", "crates/core/src/system.rs"] {
            let scope = FileScope::classify(path);
            assert!(scope.coordinator, "{path} must classify as coordinator");
            let f = run(
                path,
                &SourceModel::parse("let out = sim.step_store(addr, false, now, clock);\n"),
                scope,
            );
            assert!(f.iter().all(|f| f.rule != NO_CROSS_SHARD_STATE));
        }
        // Binaries never see the pub(crate) API; the rule is scoped to
        // library code so it cannot fire on test harness text either.
        let scope = FileScope::classify("crates/bench/src/bin/all.rs");
        let f = run(
            "crates/bench/src/bin/all.rs",
            &SourceModel::parse("x.step_load(addr, now);\n"),
            scope,
        );
        assert!(f.iter().all(|f| f.rule != NO_CROSS_SHARD_STATE));
    }

    #[test]
    fn reasonless_allow_is_a_finding() {
        let f = hits("// lint: allow(no-panic-lib)\nx.unwrap();\n", LIB);
        assert!(f.iter().any(|f| f.rule == ALLOW_REASON));
        assert!(f
            .iter()
            .any(|f| f.rule == NO_PANIC_LIB && !f.allowed));
    }
}
