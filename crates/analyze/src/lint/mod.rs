//! The lint pass: file discovery, per-file rule execution, and the
//! aggregate report the `plp-lint` binary prints and serializes.

pub mod rules;
pub mod scan;

use rules::{FileScope, Finding};
use scan::SourceModel;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One linted file's results.
#[derive(Debug, Clone)]
pub struct FileReport {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// Every rule hit, allowed ones included.
    pub findings: Vec<Finding>,
    /// Allow directives present in the file.
    pub allow_directives: usize,
}

/// Lints one file's text as `path` (repo-relative).
pub fn lint_file(path: &str, text: &str) -> FileReport {
    let model = SourceModel::parse(text);
    let findings = rules::run(path, &model, FileScope::classify(path));
    FileReport {
        path: path.to_string(),
        findings,
        allow_directives: model.allow_directives,
    }
}

/// All `.rs` files under `root/crates`, repo-relative, sorted — the
/// deterministic lint universe. `vendor/` (offline dependency stubs)
/// and build output are out of scope by construction.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The whole pass over a workspace root.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<FileReport>> {
    let mut reports = Vec::new();
    for path in workspace_sources(root)? {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        reports.push(lint_file(&rel, &text));
    }
    Ok(reports)
}

/// Aggregate numbers for the summary line and `analysis.json`.
#[derive(Debug, Clone, Default)]
pub struct Totals {
    /// Files linted.
    pub files: usize,
    /// Allow directives across the workspace.
    pub allow_directives: usize,
    /// Per-rule `(total hits, allowed hits)`.
    pub per_rule: BTreeMap<&'static str, (usize, usize)>,
    /// Hits not covered by a reasoned allow — the pass fails if any.
    pub violations: Vec<Finding>,
}

/// Folds file reports into [`Totals`].
pub fn totals(reports: &[FileReport]) -> Totals {
    let mut t = Totals::default();
    for rule in rules::RULES {
        t.per_rule.insert(rule, (0, 0));
    }
    for r in reports {
        t.files += 1;
        t.allow_directives += r.allow_directives;
        for f in &r.findings {
            let e = t.per_rule.entry(f.rule).or_insert((0, 0));
            e.0 += 1;
            if f.allowed {
                e.1 += 1;
            } else {
                t.violations.push(f.clone());
            }
        }
    }
    t
}

/// Renders `analysis.json`: rule hit counts, allow-list size, and any
/// violations, all deterministically ordered. Hand-rolled writer — the
/// vendored serde stubs have no serializer, and the schema is tiny.
pub fn analysis_json(t: &Totals) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", t.files));
    out.push_str(&format!(
        "  \"allow_directives\": {},\n",
        t.allow_directives
    ));
    out.push_str("  \"rules\": {\n");
    let rules: Vec<String> = t
        .per_rule
        .iter()
        .map(|(rule, (hits, allowed))| {
            format!(
                "    {}: {{\"hits\": {hits}, \"allowed\": {allowed}, \"violations\": {}}}",
                json_string(rule),
                hits - allowed
            )
        })
        .collect();
    out.push_str(&rules.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str("  \"violations\": [\n");
    let violations: Vec<String> = t
        .violations
        .iter()
        .map(|f| {
            format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"snippet\": {}}}",
                json_string(f.rule),
                json_string(&f.path),
                f.line,
                json_string(&f.snippet)
            )
        })
        .collect();
    out.push_str(&violations.join(",\n"));
    if !violations.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_split_allowed_from_violations() {
        let report = lint_file(
            "crates/core/src/x.rs",
            concat!(
                "// lint: allow(no-panic-lib) demo\n",
                "fn f() { a.unwrap(); }\n",
                "fn g() { b.unwrap(); }\n",
            ),
        );
        let t = totals(&[report]);
        assert_eq!(t.per_rule[rules::NO_PANIC_LIB], (2, 1));
        assert_eq!(t.violations.len(), 1);
        assert_eq!(t.allow_directives, 1);
    }

    #[test]
    fn analysis_json_is_well_formed_and_stable() {
        let t = totals(&[lint_file(
            "crates/core/src/x.rs",
            "fn f() { a.unwrap(); }\n",
        )]);
        let a = analysis_json(&t);
        let b = analysis_json(&t);
        assert_eq!(a, b);
        assert!(a.contains("\"files_scanned\": 1"));
        assert!(a.contains("\"no-panic-lib\": {\"hits\": 1, \"allowed\": 0, \"violations\": 1}"));
        assert!(a.contains("\"snippet\": \".unwrap\""));
        // Balanced braces/brackets — a cheap well-formedness check
        // given there is no JSON parser in the dependency set.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn clean_file_produces_no_violations() {
        let t = totals(&[lint_file(
            "crates/core/src/x.rs",
            "fn f() -> Result<u8, E> { value.try_into().map_err(E::from) }\n",
        )]);
        assert!(t.violations.is_empty());
    }
}
