//! The lint pass: file discovery, the two-phase analysis pipeline
//! (lexical rules, then the CFG/dataflow semantic passes, then the
//! stale-allow audit over their merged findings), and the aggregate
//! report the `plp-lint` binary prints and serializes.

pub mod rules;
pub mod scan;
pub mod selftest;

use crate::passes::{self, Universe};
use rules::Finding;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One linted file's results.
#[derive(Debug, Clone)]
pub struct FileReport {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// Every rule hit, allowed ones included.
    pub findings: Vec<Finding>,
    /// Allow directives present in the file.
    pub allow_directives: usize,
    /// Functions the parser recovered.
    pub functions: usize,
    /// Basic blocks across those functions' CFGs.
    pub cfg_blocks: usize,
}

/// Runs the full pipeline over a set of `(path, text)` units. The
/// whole set is one analysis universe: cross-file call resolution sees
/// every unit, so passing single files weakens (but never breaks) the
/// interprocedural summaries.
pub fn lint_units(inputs: Vec<(String, String)>) -> Vec<FileReport> {
    let u = Universe::build(inputs);
    let mut reports = Vec::new();
    for fi in 0..u.files.len() {
        let unit = &u.files[fi];
        let mut findings = rules::run(&unit.path, &unit.model, unit.scope);
        findings.extend(passes::run_semantic(&u, fi));
        let mut stale = Vec::new();
        passes::unused_allow::run(&u, fi, &findings, &mut stale);
        findings.extend(stale);
        findings.sort_by(|a, b| (a.line, a.col, a.code).cmp(&(b.line, b.col, b.code)));
        let cfg_blocks = unit
            .parsed
            .functions
            .iter()
            .filter_map(crate::cfg::build)
            .map(|g| g.blocks.len())
            .sum();
        reports.push(FileReport {
            path: unit.path.clone(),
            findings,
            allow_directives: unit.model.allow_directives,
            functions: unit.parsed.functions.len(),
            cfg_blocks,
        });
    }
    reports
}

/// Lints one file's text as `path` (repo-relative) — a single-file
/// universe; see [`lint_units`].
pub fn lint_file(path: &str, text: &str) -> FileReport {
    let mut reports = lint_units(vec![(path.to_string(), text.to_string())]);
    reports.remove(0)
}

/// All `.rs` files under `root/crates`, repo-relative, sorted — the
/// deterministic lint universe. `vendor/` (offline dependency stubs),
/// build output, and the lint's own fixture corpus (deliberately
/// violating sources under `tests/fixtures/`) are out of scope by
/// construction.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                let skip = path.file_name().is_some_and(|n| n == "target")
                    || path.to_string_lossy().replace('\\', "/").ends_with("tests/fixtures");
                if skip {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The whole pass over a workspace root.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<FileReport>> {
    let mut inputs = Vec::new();
    for path in workspace_sources(root)? {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        inputs.push((rel, text));
    }
    Ok(lint_units(inputs))
}

/// Aggregate numbers for the summary line and `analysis.json`.
#[derive(Debug, Clone, Default)]
pub struct Totals {
    /// Files linted.
    pub files: usize,
    /// Functions analyzed (parser-recovered).
    pub functions: usize,
    /// CFG basic blocks built.
    pub cfg_blocks: usize,
    /// Allow directives across the workspace.
    pub allow_directives: usize,
    /// Per-rule `(total hits, allowed hits)`.
    pub per_rule: BTreeMap<&'static str, (usize, usize)>,
    /// Hits not covered by a reasoned allow — the pass fails if any.
    pub violations: Vec<Finding>,
}

/// Folds file reports into [`Totals`].
pub fn totals(reports: &[FileReport]) -> Totals {
    let mut t = Totals::default();
    for rule in rules::RULES {
        t.per_rule.insert(rule, (0, 0));
    }
    for r in reports {
        t.files += 1;
        t.functions += r.functions;
        t.cfg_blocks += r.cfg_blocks;
        t.allow_directives += r.allow_directives;
        for f in &r.findings {
            let e = t.per_rule.entry(f.rule).or_insert((0, 0));
            e.0 += 1;
            if f.allowed {
                e.1 += 1;
            } else {
                t.violations.push(f.clone());
            }
        }
    }
    t
}

/// Renders `analysis.json` (schema 2): analysis depth counters, rule
/// hit counts, allow-list size, and any violations with their stable
/// diagnostic codes, all deterministically ordered. Hand-rolled writer
/// — the vendored serde stubs have no serializer, and the schema is
/// tiny.
pub fn analysis_json(t: &Totals) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 2,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", t.files));
    out.push_str(&format!("  \"functions_analyzed\": {},\n", t.functions));
    out.push_str(&format!("  \"cfg_blocks\": {},\n", t.cfg_blocks));
    out.push_str(&format!(
        "  \"allow_directives\": {},\n",
        t.allow_directives
    ));
    out.push_str("  \"rules\": {\n");
    let rules: Vec<String> = t
        .per_rule
        .iter()
        .map(|(rule, (hits, allowed))| {
            format!(
                "    {}: {{\"hits\": {hits}, \"allowed\": {allowed}, \"violations\": {}}}",
                json_string(rule),
                hits - allowed
            )
        })
        .collect();
    out.push_str(&rules.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str("  \"violations\": [\n");
    let violations: Vec<String> = t
        .violations
        .iter()
        .map(|f| {
            format!(
                "    {{\"rule\": {}, \"code\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"snippet\": {}}}",
                json_string(f.rule),
                json_string(f.code),
                json_string(&f.path),
                f.line,
                f.col,
                json_string(&f.snippet)
            )
        })
        .collect();
    out.push_str(&violations.join(",\n"));
    if !violations.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_split_allowed_from_violations() {
        let report = lint_file(
            "crates/core/src/x.rs",
            concat!(
                "// lint: allow(no-panic-lib) demo\n",
                "fn f() { a.unwrap(); }\n",
                "fn g() { b.unwrap(); }\n",
            ),
        );
        let t = totals(&[report]);
        assert_eq!(t.per_rule[rules::NO_PANIC_LIB], (2, 1));
        assert_eq!(t.violations.len(), 1);
        assert_eq!(t.allow_directives, 1);
    }

    #[test]
    fn analysis_json_is_well_formed_and_stable() {
        let t = totals(&[lint_file(
            "crates/core/src/x.rs",
            "fn f() { a.unwrap(); }\n",
        )]);
        let a = analysis_json(&t);
        let b = analysis_json(&t);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": 2"));
        assert!(a.contains("\"files_scanned\": 1"));
        assert!(a.contains("\"functions_analyzed\": 1"));
        assert!(a.contains("\"no-panic-lib\": {\"hits\": 1, \"allowed\": 0, \"violations\": 1}"));
        assert!(a.contains("\"code\": \"PLP-L001\""));
        assert!(a.contains("\"snippet\": \".unwrap\""));
        // Balanced braces/brackets — a cheap well-formedness check
        // given there is no JSON parser in the dependency set.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn clean_file_produces_no_violations() {
        let t = totals(&[lint_file(
            "crates/core/src/x.rs",
            "fn f() -> Result<u8, E> { value.try_into().map_err(E::from) }\n",
        )]);
        assert!(t.violations.is_empty());
    }

    #[test]
    fn report_counts_functions_and_blocks() {
        let r = lint_file(
            "crates/trace/src/x.rs",
            "fn f(c: bool) { if c { a(); } }\nfn g() {}\n",
        );
        assert_eq!(r.functions, 2);
        assert!(r.cfg_blocks >= 6, "if-statement fans out: {}", r.cfg_blocks);
    }

    #[test]
    fn stale_allow_is_a_violation_used_allow_is_not() {
        let r = lint_file(
            "crates/core/src/x.rs",
            concat!(
                "// lint: allow(no-panic-lib) real suppression\n",
                "fn f() { a.unwrap(); }\n",
                "// lint: allow(no-panic-lib) nothing here anymore\n",
                "fn g() { clean(); }\n",
                "// lint: allow(no-such-rule) typo\n",
                "fn h() {}\n",
            ),
        );
        let stale: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == rules::UNUSED_ALLOW)
            .collect();
        assert_eq!(stale.len(), 2, "{stale:?}");
        assert_eq!(stale[0].code, "PLP-A002");
        assert_eq!(stale[0].line, 3);
        assert_eq!(stale[1].code, "PLP-A003");
        assert_eq!(stale[1].line, 5);
    }
}
