//! Lexical source model the lint rules run over.
//!
//! A full parser would be overkill for four rules, but raw text is too
//! little: `.unwrap()` inside a string literal or a doc comment is not
//! a panic site. The scanner walks each file once with a small state
//! machine that blanks out comment and literal bodies (preserving
//! line structure), captures comment text for `// lint: allow(...)`
//! directives, and tracks brace depth to know which lines sit inside
//! `#[cfg(test)]` / `#[test]` regions, where the rules do not apply.

/// One source line, post-lex.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line with comments and literal bodies replaced by spaces —
    /// what the rules pattern-match against.
    pub code: String,
    /// Concatenated comment text on the line (no `//` markers).
    pub comment: String,
    /// Whether the line starts inside a test region.
    pub in_test: bool,
}

/// A lexed file.
#[derive(Debug, Clone, Default)]
pub struct SourceModel {
    /// Lines in file order.
    pub lines: Vec<Line>,
    /// Total `lint: allow(...)` directives found (well- or ill-formed).
    pub allow_directives: usize,
}

/// A parsed `// lint: allow(<rule>) <reason>` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// The rule identifier inside the parentheses.
    pub rule: String,
    /// Whether a non-empty reason followed the parentheses.
    pub has_reason: bool,
}

/// Extracts every allow directive from one line's comment text.
pub fn parse_allows(comment: &str) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("lint: allow(") {
        rest = &rest[at + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let rule = rest[..close].trim().to_string();
        rest = &rest[close + 1..];
        // Rule ids are kebab-case; anything else (e.g. the `<rule>`
        // placeholder in docs describing the syntax) is a mention,
        // not a directive.
        if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
            continue;
        }
        // The reason runs to the next directive (or end of comment).
        let reason_end = rest.find("lint: allow(").unwrap_or(rest.len());
        let has_reason = !rest[..reason_end].trim().is_empty();
        out.push(AllowDirective { rule, has_reason });
    }
    out
}

impl SourceModel {
    /// Whether `rule` is allowed on `line` (0-based): a directive on
    /// the line itself or on the line directly above, reason present.
    pub fn allows(&self, line: usize, rule: &str) -> bool {
        let mut candidates = vec![line];
        if line > 0 {
            candidates.push(line - 1);
        }
        candidates.into_iter().any(|l| {
            parse_allows(&self.lines[l].comment)
                .iter()
                .any(|d| d.rule == rule && d.has_reason)
        })
    }

    /// Lexes a file.
    pub fn parse(text: &str) -> Self {
        Lexer::default().run(text)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    /// Inside `"…"`.
    Str,
    /// Inside `r##"…"##` with this many hashes.
    RawStr(u32),
    /// Inside `/* … */`, which nests in Rust.
    Block(u32),
}

#[derive(Default)]
struct Lexer {
    mode: Option<Mode>,
    depth: u32,
    /// Depths at which a test region opened; non-empty = in test code.
    test_stack: Vec<u32>,
    /// A `#[cfg(test)]` / `#[test]` was seen and its item's `{` is
    /// still ahead.
    pending_test: bool,
}

impl Lexer {
    fn run(mut self, text: &str) -> SourceModel {
        self.mode = Some(Mode::Code);
        let mut model = SourceModel::default();
        for raw in text.lines() {
            let line = self.lex_line(raw);
            model.allow_directives += parse_allows(&line.comment).len();
            model.lines.push(line);
        }
        model
    }

    fn lex_line(&mut self, raw: &str) -> Line {
        let b: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let in_test = !self.test_stack.is_empty();
        let mut i = 0;
        while i < b.len() {
            let c = b[i];
            match self.mode.unwrap_or(Mode::Code) {
                Mode::Code => {
                    if c == '/' && b.get(i + 1) == Some(&'/') {
                        // Line comment (incl. doc comments): capture
                        // the text and stop lexing code on this line.
                        let text: String = b[i + 2..].iter().collect();
                        comment.push_str(text.trim_start_matches(['/', '!']).trim());
                        comment.push(' ');
                        break;
                    } else if c == '/' && b.get(i + 1) == Some(&'*') {
                        self.mode = Some(Mode::Block(1));
                        code.push_str("  ");
                        i += 2;
                        continue;
                    } else if c == '"' {
                        self.mode = Some(Mode::Str);
                        code.push('"');
                    } else if (c == 'r' || c == 'b')
                        && (i == 0 || (!b[i - 1].is_alphanumeric() && b[i - 1] != '_'))
                    {
                        // Possible raw-string head: r"…", r#"…"#, br"…".
                        if let Some((skip, hashes)) = raw_string_head(&b[i..]) {
                            self.mode = Some(Mode::RawStr(hashes));
                            for _ in 0..skip {
                                code.push(' ');
                            }
                            i += skip;
                            continue;
                        }
                        code.push(c);
                    } else if c == '\'' {
                        // Char literal vs lifetime: a literal closes
                        // with a quote one or two chars ahead (or is
                        // an escape); a lifetime never closes.
                        if b.get(i + 1) == Some(&'\\') {
                            let close = b[i + 2..].iter().position(|&x| x == '\'');
                            let end = close.map(|p| i + 3 + p).unwrap_or(b.len());
                            for _ in i..end.min(b.len()) {
                                code.push(' ');
                            }
                            i = end;
                            continue;
                        } else if b.get(i + 2) == Some(&'\'') {
                            code.push_str("   ");
                            i += 3;
                            continue;
                        }
                        code.push('\'');
                    } else {
                        if c == '{' {
                            if self.pending_test {
                                self.test_stack.push(self.depth);
                                self.pending_test = false;
                            }
                            self.depth += 1;
                        } else if c == '}' {
                            self.depth = self.depth.saturating_sub(1);
                            if self.test_stack.last() == Some(&self.depth) {
                                self.test_stack.pop();
                            }
                        } else if c == ';' && self.pending_test {
                            // `#[cfg(test)] use …;` — attribute
                            // consumed by a braceless item.
                            self.pending_test = false;
                        }
                        code.push(c);
                    }
                }
                Mode::Str => {
                    if c == '\\' {
                        code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        self.mode = Some(Mode::Code);
                        code.push('"');
                    } else {
                        code.push(' ');
                    }
                }
                Mode::RawStr(hashes) => {
                    if c == '"' && closes_raw(&b[i + 1..], hashes) {
                        for _ in 0..=hashes {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                        self.mode = Some(Mode::Code);
                        continue;
                    }
                    code.push(' ');
                }
                Mode::Block(depth) => {
                    if c == '*' && b.get(i + 1) == Some(&'/') {
                        self.mode = if depth == 1 {
                            Some(Mode::Code)
                        } else {
                            Some(Mode::Block(depth - 1))
                        };
                        code.push_str("  ");
                        i += 2;
                        continue;
                    } else if c == '/' && b.get(i + 1) == Some(&'*') {
                        self.mode = Some(Mode::Block(depth + 1));
                        code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    comment.push(c);
                    code.push(' ');
                }
            }
            i += 1;
        }
        if matches!(self.mode, Some(Mode::Block(_))) {
            comment.push(' ');
        }
        if code.contains("#[cfg(test)]") || code.contains("#[test]") {
            self.pending_test = true;
        }
        Line {
            code,
            comment,
            in_test,
        }
    }

}

/// If `b` starts a raw (byte) string head `r"`/`r#"`/`br##"`…, its
/// `(length, hash_count)`.
fn raw_string_head(b: &[char]) -> Option<(usize, u32)> {
    let mut i = 0;
    if b.get(i) == Some(&'b') {
        i += 1;
    }
    if b.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while b.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    (b.get(i) == Some(&'"')).then_some((i + 1, hashes))
}

/// Whether the chars after a `"` close a raw string with `hashes` `#`s.
fn closes_raw(after: &[char], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| after.get(k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let m = SourceModel::parse(concat!(
            "let x = \"call .unwrap() here\"; // .unwrap() in comment\n",
            "let y = a.unwrap();\n",
        ));
        assert!(!m.lines[0].code.contains("unwrap"));
        assert!(m.lines[0].comment.contains(".unwrap() in comment"));
        assert!(m.lines[1].code.contains(".unwrap()"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let m = SourceModel::parse(concat!(
            "let s = r#\"panic!(\"no\")\"#;\n",
            "let c = '\"'; let d = '\\''; let e = x.unwrap();\n",
        ));
        assert!(!m.lines[0].code.contains("panic"));
        assert!(m.lines[1].code.contains(".unwrap()"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let m = SourceModel::parse("/* a /* b */ still.unwrap() */\nx.unwrap();\n");
        assert!(!m.lines[0].code.contains("unwrap"));
        assert!(m.lines[1].code.contains("unwrap"));
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = concat!(
            "fn lib() { x.unwrap(); }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { y.unwrap(); }\n",
            "}\n",
            "fn lib2() {}\n",
        );
        let m = SourceModel::parse(src);
        assert!(!m.lines[0].in_test);
        assert!(m.lines[3].in_test, "inside cfg(test) mod");
        assert!(!m.lines[5].in_test, "after the mod closes");
    }

    #[test]
    fn braceless_cfg_test_items_do_not_leak() {
        let src = concat!(
            "#[cfg(test)]\n",
            "use foo::bar;\n",
            "fn lib() { x.unwrap(); }\n",
        );
        let m = SourceModel::parse(src);
        assert!(!m.lines[2].in_test);
    }

    #[test]
    fn allow_directives_parse_and_require_reasons() {
        let ds = parse_allows("lint: allow(no-panic-lib) poisoned lock is fatal");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "no-panic-lib");
        assert!(ds[0].has_reason);
        let bare = parse_allows("lint: allow(no-panic-lib)");
        assert!(!bare[0].has_reason);

        let m = SourceModel::parse(concat!(
            "// lint: allow(no-panic-lib) startup-only\n",
            "x.unwrap();\n",
            "y.unwrap();\n",
        ));
        assert_eq!(m.allow_directives, 1);
        assert!(m.allows(1, "no-panic-lib"), "line under the directive");
        assert!(!m.allows(2, "no-panic-lib"), "two lines down is not covered");
    }
}
