//! Fixture-corpus self-test: proves the passes fire on seeded mutants
//! and stay silent on clean code.
//!
//! A fixture is a `.rs` file under the corpus directory carrying
//! directives in comments:
//!
//! * `//@ path: crates/core/src/engine/fake.rs` — the synthetic
//!   repo-relative path the file is analyzed as (drives scope
//!   classification). Mandatory, first directive.
//! * `//@ aux: handles` — include `_aux/handles.rs` from the corpus
//!   root in the fixture's analysis universe (for cross-file
//!   resolution context); aux files are context only, their findings
//!   are not checked.
//! * `//~ ERROR <rule> [<code>]` — an unallowed finding of `<rule>`
//!   (and, if given, that diagnostic code) is expected on this line.
//!
//! Each fixture is checked *strictly in both directions*: every
//! expectation must be matched by a finding, and every unallowed
//! finding must be matched by an expectation. `fire/` fixtures carry
//! markers; `clean/` fixtures carry none and must lint silent.

use std::path::{Path, PathBuf};

use super::lint_units;

/// One mismatch between a fixture's expectations and the findings.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Fixture file (corpus-relative).
    pub fixture: String,
    /// Human-readable description.
    pub detail: String,
}

/// Corpus run summary.
#[derive(Debug, Clone, Default)]
pub struct SelfTest {
    /// Fixtures checked.
    pub fixtures: usize,
    /// Expectations matched.
    pub expected: usize,
    /// Every divergence; empty means the corpus passes.
    pub mismatches: Vec<Mismatch>,
}

/// An expectation parsed from a `//~ ERROR` marker.
struct Expect {
    line: usize,
    rule: String,
    code: Option<String>,
}

fn parse_directive<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let at = line.find(key)?;
    Some(line[at + key.len()..].trim())
}

fn parse_expectations(text: &str) -> Vec<Expect> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find("//~ ERROR ") {
            rest = &rest[at + "//~ ERROR ".len()..];
            let mut words = rest.split_whitespace();
            let Some(rule) = words.next() else { break };
            let code = words
                .next()
                .filter(|w| w.starts_with("PLP-"))
                .map(str::to_string);
            out.push(Expect {
                line: i + 1,
                rule: rule.to_string(),
                code,
            });
        }
    }
    out
}

/// `.rs` files under `dir`, recursively, sorted; `_aux/` excluded.
fn fixture_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "_aux") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs the corpus under `dir`.
pub fn run_corpus(dir: &Path) -> std::io::Result<SelfTest> {
    let mut st = SelfTest::default();
    let files = fixture_files(dir)?;
    for file in files {
        let rel = file
            .strip_prefix(dir)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&file)?;
        st.fixtures += 1;
        let mut local: Vec<String> = Vec::new();
        let miss = |v: &mut Vec<String>, detail: String| v.push(detail);

        let Some(declared) = text
            .lines()
            .find_map(|l| parse_directive(l, "//@ path:"))
            .map(str::to_string)
        else {
            miss(&mut local, "missing `//@ path:` directive".to_string());
            finish(&mut st, &rel, local);
            continue;
        };
        let mut units = vec![(declared.clone(), text.clone())];
        let mut aux_ok = true;
        for l in text.lines() {
            if let Some(name) = parse_directive(l, "//@ aux:") {
                let aux_path = dir.join("_aux").join(format!("{name}.rs"));
                let aux_text = std::fs::read_to_string(&aux_path)?;
                match aux_text
                    .lines()
                    .find_map(|l| parse_directive(l, "//@ path:"))
                {
                    Some(p) if p != declared => units.push((p.to_string(), aux_text)),
                    Some(_) => {
                        miss(&mut local, format!("aux {name} declares the fixture's own path"));
                        aux_ok = false;
                    }
                    None => {
                        miss(&mut local, format!("aux {name} is missing `//@ path:`"));
                        aux_ok = false;
                    }
                }
            }
        }
        if !aux_ok {
            finish(&mut st, &rel, local);
            continue;
        }

        let reports = lint_units(units);
        let Some(report) = reports.iter().find(|r| r.path == declared) else {
            miss(&mut local, format!("no report produced for declared path {declared}"));
            finish(&mut st, &rel, local);
            continue;
        };
        let mut expects = parse_expectations(&text);
        st.expected += expects.len();
        for f in report.findings.iter().filter(|f| !f.allowed) {
            let hit = expects.iter().position(|e| {
                e.line == f.line
                    && e.rule == f.rule
                    && e.code.as_deref().is_none_or(|c| c == f.code)
            });
            match hit {
                Some(i) => {
                    expects.remove(i);
                }
                None => miss(&mut local, format!(
                    "unexpected finding at line {}: [{}/{}] {}",
                    f.line, f.rule, f.code, f.snippet
                )),
            }
        }
        for e in expects {
            miss(&mut local, format!(
                "expected [{}{}] at line {} did not fire",
                e.rule,
                e.code.map(|c| format!("/{c}")).unwrap_or_default(),
                e.line
            ));
        }
        finish(&mut st, &rel, local);
    }
    Ok(st)
}

/// Folds one fixture's mismatch descriptions into the summary.
fn finish(st: &mut SelfTest, fixture: &str, details: Vec<String>) {
    for detail in details {
        st.mismatches.push(Mismatch {
            fixture: fixture.to_string(),
            detail,
        });
    }
}
