//! Syntax layer of the analysis pipeline: token lexer ([`lexer`]) and
//! the recovery-tolerant item parser ([`parse`]) that the CFG builder
//! and the semantic passes consume.
//!
//! The parser is deliberately *not* a full Rust grammar: it recognizes
//! the items and statements the semantic passes reason about
//! (functions with their impl owner, parameter and return types,
//! struct field types, `let`/`if`/`match`/loops/`return`/`break`/
//! `continue`/`?`) and treats everything else as opaque expression
//! text from which it still extracts calls, casts and assignments.
//! Unknown constructs degrade to opaque statements instead of errors,
//! so a parse always succeeds and the passes stay conservative.

pub mod lexer;
pub mod parse;

pub use lexer::{lex, Comment, Token, TokenKind, TokenStream};
pub use parse::{
    parse, Arm, Assign, Block, Call, Cast, ExprInfo, Function, LoopKind, Param, ParsedFile, Stmt,
    StmtKind, StructDef,
};
