//! Span-carrying token lexer for the analysis pipeline.
//!
//! The line-oriented [`crate::lint::scan`] model is enough for the
//! lexical rules, but the parser, CFG builder and dataflow passes need
//! a real token stream: every token with its byte span, line and
//! column, literals classified (including raw strings with any number
//! of hashes, byte and byte-raw strings, char/byte literals with
//! escapes), comments captured separately, and common multi-character
//! operators fused so `->`, `=>`, `::` and the compound assignments
//! are single tokens.
//!
//! The lexer never fails: unknown bytes become one-character punct
//! tokens and unterminated literals run to end of input, so the parser
//! downstream can stay recovery-tolerant.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `match`, `as`, names).
    Ident,
    /// `'a`-style lifetime (not a char literal).
    Lifetime,
    /// Integer literal; [`Token::int_value`] parses it.
    Int,
    /// Float literal.
    Float,
    /// `"…"` string literal.
    Str,
    /// `r"…"` / `r#"…"#` raw string (any hash count).
    RawStr,
    /// `b"…"` byte string or `br#"…"#` byte-raw string.
    ByteStr,
    /// `'x'` char literal (escapes included).
    Char,
    /// `b'x'` byte literal.
    Byte,
    /// Punctuation; multi-char operators in [`FUSED`] are one token.
    Punct,
}

/// One token: kind plus byte span and 1-based line/column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in characters) of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text inside the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// A comment, captured out of band (tokens skip comments entirely).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/* */` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether this was a block comment.
    pub block: bool,
}

/// A lexed file: tokens plus the comment side channel.
#[derive(Debug, Clone, Default)]
pub struct TokenStream {
    /// All non-trivia tokens, in source order.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators fused into single punct tokens, longest
/// first so maximal munch works by scanning in order. Shift operators
/// (`<<`, `>>`) are deliberately not fused: `Vec<Vec<u8>>` would
/// mis-lex. The shift-assignments are safe to fuse because a `>>=`
/// byte sequence cannot occur in rustfmt'd type position.
const FUSED: [&str; 21] = [
    "..=", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes `src` into tokens and comments. Total function: malformed
/// input degrades to punct tokens rather than failing.
pub fn lex(src: &str) -> TokenStream {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: TokenStream::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: TokenStream,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one char, maintaining line/col. Multi-byte UTF-8 moves
    /// the cursor past the whole character.
    fn bump(&mut self) {
        let Some(&b) = self.bytes.get(self.pos) else {
            return;
        };
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
            self.pos += 1;
        } else {
            let width = utf8_width(b);
            self.pos += width;
            self.col += 1;
        }
    }

    fn run(mut self) -> TokenStream {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let Some(b) = self.peek(0) else { break };
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_literal(start, line, col, TokenKind::Str),
                b'\'' => self.quote(start, line, col),
                b'r' | b'b' => self.maybe_prefixed(start, line, col),
                b'0'..=b'9' => self.number(start, line, col),
                b if is_ident_start(b) => self.ident(start, line, col),
                _ => self.punct(start, line, col),
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos + 2;
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.bump();
        }
        let text = self
            .src
            .get(start..self.pos)
            .unwrap_or("")
            .trim_start_matches(['/', '!'])
            .trim()
            .to_string();
        self.out.comments.push(Comment {
            text,
            line,
            block: false,
        });
    }

    /// Block comments nest (`/* /* */ */`), and string-like text inside
    /// them is plain comment text.
    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.pos + 2;
        self.bump();
        self.bump();
        let mut depth = 1u32;
        let mut end = self.pos;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    end = self.pos;
                    self.bump();
                    self.bump();
                }
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => {
                    end = self.pos;
                    break;
                }
            }
        }
        let text = self
            .src
            .get(start..end)
            .unwrap_or("")
            .trim_start_matches(['*', '!'])
            .trim()
            .to_string();
        self.out.comments.push(Comment {
            text,
            line,
            block: true,
        });
    }

    /// `"…"` with escapes; `\X` always consumes the escaped char, so an
    /// escaped quote (or a `/*` inside the literal) never ends it.
    fn string_literal(&mut self, start: usize, line: u32, col: u32, kind: TokenKind) {
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                }
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
                None => break,
            }
        }
        self.push(kind, start, line, col);
    }

    /// `'` starts either a char literal or a lifetime. A lifetime is
    /// `'ident` not followed by a closing quote; everything else —
    /// `'a'`, `'\n'`, `'\u{1F600}'`, `'\''` — is a char literal.
    fn quote(&mut self, start: usize, line: u32, col: u32) {
        self.bump(); // '
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume escape body to the
                // closing quote.
                self.bump();
                self.bump();
                while self.peek(0).is_some_and(|b| b != b'\'' && b != b'\n') {
                    self.bump();
                }
                self.bump(); // closing quote (or newline recovery)
                self.push(TokenKind::Char, start, line, col);
            }
            Some(b) if is_ident_start(b) => {
                // Could be 'a' (char) or 'a (lifetime): look past the
                // ident run for a quote.
                let mut ahead = 1;
                while self.peek(ahead).is_some_and(is_ident_continue) {
                    ahead += 1;
                }
                let is_char = self.peek(ahead) == Some(b'\'');
                for _ in 0..ahead {
                    self.bump();
                }
                if is_char {
                    self.bump(); // closing quote
                    self.push(TokenKind::Char, start, line, col);
                } else {
                    self.push(TokenKind::Lifetime, start, line, col);
                }
            }
            Some(b'\'') => {
                // `''` — malformed; treat as empty char for recovery.
                self.bump();
                self.push(TokenKind::Char, start, line, col);
            }
            Some(_) => {
                // Non-alphanumeric char literal: '{', '"', '→', …
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.push(TokenKind::Char, start, line, col);
            }
            None => self.push(TokenKind::Punct, start, line, col),
        }
    }

    /// `r`/`b` heads: raw strings `r"…"`/`r##"…"##`, byte strings
    /// `b"…"`, byte-raw `br#"…"#`, byte chars `b'x'` — or just an
    /// identifier starting with r/b.
    fn maybe_prefixed(&mut self, start: usize, line: u32, col: u32) {
        let b0 = self.peek(0);
        let mut ahead = 1;
        let mut byte = b0 == Some(b'b');
        if byte && self.peek(ahead) == Some(b'r') {
            ahead += 1;
        }
        let raw = self.peek(ahead.saturating_sub(1)) == Some(b'r') || b0 == Some(b'r');
        // `rb"…"` is not Rust; only `br` combines.
        if b0 == Some(b'r') {
            byte = false;
            ahead = 1;
        }
        let mut hashes = 0usize;
        while raw && self.peek(ahead) == Some(b'#') {
            hashes += 1;
            ahead += 1;
        }
        if raw && self.peek(ahead) == Some(b'"') {
            for _ in 0..=ahead {
                self.bump(); // prefix, hashes and opening quote
            }
            self.raw_string_body(hashes);
            let kind = if byte {
                TokenKind::ByteStr
            } else {
                TokenKind::RawStr
            };
            self.push(kind, start, line, col);
            return;
        }
        if byte && ahead == 1 {
            match self.peek(1) {
                Some(b'"') => {
                    self.bump(); // b
                    self.string_literal(self.pos, line, col, TokenKind::ByteStr);
                    // string_literal pushed with its own start; fix up.
                    if let Some(t) = self.out.tokens.last_mut() {
                        t.start = start;
                        t.col = col;
                    }
                    return;
                }
                Some(b'\'') => {
                    self.bump(); // b
                    self.quote(self.pos, line, col);
                    if let Some(t) = self.out.tokens.last_mut() {
                        t.kind = TokenKind::Byte;
                        t.start = start;
                        t.col = col;
                    }
                    return;
                }
                _ => {}
            }
        }
        self.ident(start, line, col);
    }

    /// Body of a raw string opened with `hashes` hashes: runs to the
    /// first `"` followed by that many `#`s. No escapes.
    fn raw_string_body(&mut self, hashes: usize) {
        loop {
            match self.peek(0) {
                Some(b'"') => {
                    let closes = (1..=hashes).all(|k| self.peek(k) == Some(b'#'));
                    self.bump();
                    if closes {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        return;
                    }
                }
                Some(_) => self.bump(),
                None => return,
            }
        }
    }

    fn number(&mut self, start: usize, line: u32, col: u32) {
        let radix_prefix = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'));
        if radix_prefix {
            self.bump();
            self.bump();
        }
        let mut float = false;
        while let Some(b) = self.peek(0) {
            match b {
                b'0'..=b'9' | b'_' | b'a'..=b'f' | b'A'..=b'F' if radix_prefix => self.bump(),
                b'0'..=b'9' | b'_' => self.bump(),
                // `1.5` is a float; `1.method()` and `1..2` are not.
                b'.' if !radix_prefix
                    && !float
                    && self.peek(1).is_some_and(|c| c.is_ascii_digit()) =>
                {
                    float = true;
                    self.bump();
                }
                b'e' | b'E'
                    if !radix_prefix
                        && float
                        && self
                            .peek(1)
                            .is_some_and(|c| c.is_ascii_digit() || c == b'+' || c == b'-') =>
                {
                    self.bump();
                    self.bump();
                }
                // Type suffix (u32, f64, usize …) glues to the number.
                b if is_ident_start(b) => {
                    if (b == b'f' || b == b'F') && !radix_prefix {
                        // f32/f64 suffix means float.
                        let rest: &[u8] = &self.bytes[self.pos..];
                        if rest.starts_with(b"f32") || rest.starts_with(b"f64") {
                            float = true;
                        }
                    }
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    break;
                }
                _ => break,
            }
        }
        let kind = if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, start, line, col);
    }

    fn ident(&mut self, start: usize, line: u32, col: u32) {
        // Raw identifiers: `r#match`.
        if self.peek(0) == Some(b'r') && self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) {
            self.bump();
            self.bump();
        }
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        self.push(TokenKind::Ident, start, line, col);
    }

    fn punct(&mut self, start: usize, line: u32, col: u32) {
        let rest = &self.src[self.pos.min(self.src.len())..];
        for op in FUSED {
            if rest.starts_with(op) {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(TokenKind::Punct, start, line, col);
                return;
            }
        }
        self.bump();
        self.push(TokenKind::Punct, start, line, col);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parses an integer literal's value (handles `0x`/`0o`/`0b`,
/// underscores and type suffixes); `None` on overflow.
pub fn int_value(text: &str) -> Option<u128> {
    let t = text.trim();
    let (radix, digits) = if let Some(d) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (16, d)
    } else if let Some(d) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        (8, d)
    } else if let Some(d) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        (2, d)
    } else {
        (10, t)
    };
    let mut value: u128 = 0;
    let mut any = false;
    for c in digits.chars() {
        if c == '_' {
            continue;
        }
        let Some(d) = c.to_digit(radix) else {
            // Start of a type suffix ends the digits.
            break;
        };
        any = true;
        value = value.checked_mul(radix as u128)?.checked_add(d as u128)?;
    }
    any.then_some(value)
}

/// The type suffix of an integer literal (`4u32` → `u32`), if any.
pub fn int_suffix(text: &str) -> Option<&str> {
    [
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    ]
    .into_iter()
    .find(|s| text.ends_with(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn raw_strings_with_multiple_hashes() {
        let src = r####"let s = r##"inner "# quote"##; x.y()"####;
        let toks = kinds(src);
        let raw = toks.iter().find(|(k, _)| *k == TokenKind::RawStr);
        assert_eq!(
            raw.map(|(_, t)| t.as_str()),
            Some(r###"r##"inner "# quote"##"###)
        );
        // Lexing resumes correctly after the raw string.
        assert!(toks.iter().any(|(_, t)| t == "y"));
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let src = "let a = b\"bytes\"; let c = br#\"raw \" bytes\"#; let d = b'x'; e()";
        let toks = kinds(src);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::ByteStr).count(),
            2
        );
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Byte && t == "b'x'"));
        assert!(toks.iter().any(|(_, t)| t == "e"));
    }

    #[test]
    fn char_literals_with_escapes_and_lifetimes() {
        let src = r"let a = '\''; let b = '\u{1F600}'; let c: &'static str = s; let d = 'x';";
        let toks = kinds(src);
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, [r"'\''", r"'\u{1F600}'", "'x'"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'static"));
    }

    #[test]
    fn block_comment_markers_inside_strings_do_not_comment() {
        let src = "let s = \"/* not a comment */\"; real()";
        let out = lex(src);
        assert!(out.comments.is_empty());
        assert!(out.tokens.iter().any(|t| t.text(src) == "real"));
    }

    #[test]
    fn strings_inside_block_comments_do_not_unbalance() {
        let src = "/* \"unclosed in comment /* nested */ still comment */ code()";
        let out = lex(src);
        assert_eq!(out.comments.len(), 1);
        assert!(out.tokens.iter().any(|t| t.text(src) == "code"));
    }

    #[test]
    fn fused_operators_and_numbers() {
        let src = "a -> b => c :: d ..= e .. f == g; x += 0xFF_u32; y = 1.5e3; z = 0b1010;";
        let toks = kinds(src);
        for op in ["->", "=>", "::", "..=", "..", "==", "+="] {
            assert!(toks.iter().any(|(_, t)| t == op), "missing {op}");
        }
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Int && t == "0xFF_u32"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Float && t == "1.5e3"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Int && t == "0b1010"));
    }

    #[test]
    fn shift_in_generics_does_not_fuse() {
        let src = "let v: Vec<Vec<u8>> = make(); let w = x >>= 2;";
        let toks = kinds(src);
        // The generic close lexes as two single `>`s.
        assert!(toks.iter().filter(|(_, t)| t == ">").count() >= 2);
        assert!(toks.iter().any(|(_, t)| t == ">>="));
    }

    #[test]
    fn int_values_parse() {
        assert_eq!(int_value("42"), Some(42));
        assert_eq!(int_value("0xFF"), Some(255));
        assert_eq!(int_value("1_000u64"), Some(1000));
        assert_eq!(int_value("0b101"), Some(5));
        assert_eq!(int_suffix("4u32"), Some("u32"));
        assert_eq!(int_suffix("4"), None);
    }

    #[test]
    fn line_and_column_tracking() {
        let src = "ab cd\n  ef\n";
        let out = lex(src);
        let ef = out.tokens.iter().find(|t| t.text(src) == "ef");
        let ef = ef.copied().unwrap_or_default();
        assert_eq!((ef.line, ef.col), (2, 3));
    }

    impl Default for Token {
        fn default() -> Self {
            Token {
                kind: TokenKind::Punct,
                start: 0,
                end: 0,
                line: 0,
                col: 0,
            }
        }
    }

    #[test]
    fn doc_comments_are_captured() {
        let src = "/// doc text\n//! inner\n/* block /* nested */ body */ x";
        let out = lex(src);
        assert_eq!(out.comments.len(), 3);
        assert_eq!(out.comments[0].text, "doc text");
        assert_eq!(out.comments[1].text, "inner");
        assert!(out.comments[2].text.contains("body"));
    }
}
