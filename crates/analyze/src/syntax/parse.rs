//! Recovery-tolerant item and statement parser over the token lexer.
//!
//! Produces just enough structure for control-flow graphs and the
//! semantic passes: functions (with impl/trait owner, typed params,
//! return type, and a statement-level body), struct definitions with
//! field types, and per-expression extraction of calls, casts,
//! assignments, closures and `?`. Anything the grammar subset does not
//! cover becomes an opaque statement — the parser never fails.
//!
//! Token spans are threaded through everything: each statement records
//! the half-open token index range it owns, nested blocks record
//! theirs, and the CFG builder relies on those ranges nesting exactly
//! (the token-partition property test enforces it repo-wide).

use super::lexer::{Token, TokenKind, TokenStream};

/// A parsed file: every `fn` (free, impl, or trait) plus struct defs.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Functions in source order, nested impls/mods flattened.
    pub functions: Vec<Function>,
    /// Struct definitions with named fields.
    pub structs: Vec<StructDef>,
}

/// A struct definition (named-field structs only; tuple structs and
/// enums carry no field-type information the passes need).
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// `(field, type-text)` pairs, normalized.
    pub fields: Vec<(String, String)>,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct Function {
    /// Bare name.
    pub name: String,
    /// Impl target or trait name when declared inside one.
    pub owner: Option<String>,
    /// Parameters in order; `self` receivers have name `self`.
    pub params: Vec<Param>,
    /// Normalized return type text, if any.
    pub ret_ty: Option<String>,
    /// Statement body; `None` for trait method declarations.
    pub body: Option<Block>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// A parameter: pattern name (when it is a simple binding) and type.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name; `None` for destructuring patterns.
    pub name: Option<String>,
    /// Normalized type text (e.g. `&mut EngineCtx`, `u32`).
    pub ty: String,
}

/// A `{ … }` statement block. `span` covers both braces.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Half-open token range including the braces.
    pub span: (usize, usize),
}

/// A statement with its source position and owned token range.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// What kind of statement.
    pub kind: StmtKind,
    /// 1-based line of the first token.
    pub line: u32,
    /// Half-open token range this statement owns (children included).
    pub span: (usize, usize),
}

/// Loop flavor; the CFG builder treats `loop` differently (no
/// zero-trip edge) from conditional loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// `loop { … }` — body always entered.
    Infinite,
    /// `while cond { … }` / `while let … { … }`.
    While,
    /// `for pat in iter { … }`.
    For,
}

/// Statement kinds the CFG builder understands.
#[derive(Debug, Clone)]
pub enum StmtKind {
    /// `let [mut] name[: ty] [= init] [else { … }];`
    Let {
        /// Binding name for simple patterns.
        name: Option<String>,
        /// Normalized type annotation, if present.
        ty: Option<String>,
        /// Initializer expression.
        init: Option<ExprInfo>,
        /// `let … else` divergent block.
        else_block: Option<Block>,
    },
    /// Expression statement (with or without `;`).
    Expr {
        /// The expression.
        expr: ExprInfo,
    },
    /// `if cond { … } [else …]`; `else if` chains nest via `else_b`.
    If {
        /// Condition (includes `let` patterns for `if let`).
        cond: ExprInfo,
        /// Then branch.
        then_b: Block,
        /// Else branch, if any.
        else_b: Option<Block>,
    },
    /// `match scrut { arms }`.
    Match {
        /// Scrutinee.
        scrut: ExprInfo,
        /// Arms in order.
        arms: Vec<Arm>,
    },
    /// `loop`/`while`/`for`.
    Loop {
        /// Flavor.
        kind: LoopKind,
        /// Loop header expression (`while` cond, `for` iterator).
        header: Option<ExprInfo>,
        /// `for` pattern binding when it is a simple name — recorded
        /// so reaching-definitions treats it as an unknown-value def.
        pat: Option<String>,
        /// Body.
        body: Block,
    },
    /// `return [expr];`
    Return {
        /// Returned value.
        value: Option<ExprInfo>,
    },
    /// `break [label] [expr];`
    Break,
    /// `continue [label];`
    Continue,
    /// Bare or `unsafe` block.
    BareBlock {
        /// The block.
        block: Block,
    },
    /// Nested item or unrecognized construct, skipped opaquely.
    Opaque,
}

/// One `match` arm; expression bodies are wrapped in a synthetic
/// single-statement [`Block`].
#[derive(Debug, Clone)]
pub struct Arm {
    /// Normalized pattern text (guards included).
    pub pat: String,
    /// Arm body.
    pub body: Block,
    /// 1-based line of the pattern.
    pub line: u32,
}

/// An opaque expression plus everything the passes extract from it.
#[derive(Debug, Clone, Default)]
pub struct ExprInfo {
    /// Half-open token range.
    pub span: (usize, usize),
    /// 1-based line of the first token.
    pub line: u32,
    /// Function/method calls, in order.
    pub calls: Vec<Call>,
    /// `as` casts, in order.
    pub casts: Vec<Cast>,
    /// Top-level assignment target, if this expression is one.
    pub assign: Option<Assign>,
    /// Whether a `?` operator occurs outside any closure.
    pub has_question: bool,
    /// Token spans of closure literals inside this expression.
    pub closures: Vec<(usize, usize)>,
}

/// A call site.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (method or function).
    pub name: String,
    /// Receiver chain for method calls, outermost first
    /// (`self.inner.f()` → `["self", "inner"]`; indexing is
    /// normalized to `base[]`; call results to `()`).
    pub recv: Vec<String>,
    /// Last path segment before `::` for qualified calls
    /// (`Failpoint::parse` → `Failpoint`).
    pub qual: Option<String>,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Whether the call site is inside a closure literal.
    pub in_closure: bool,
}

/// An `as` cast site.
#[derive(Debug, Clone)]
pub struct Cast {
    /// Token range of the cast operand (primary expression).
    pub op_span: (usize, usize),
    /// Target type text (`usize`, `u32`, …).
    pub target: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the operand start.
    pub col: u32,
}

/// A top-level assignment inside an expression statement.
#[derive(Debug, Clone)]
pub struct Assign {
    /// Root of the target (`self`, or a local name).
    pub root: String,
    /// First field segment for `self.field…` targets.
    pub field: Option<String>,
    /// Whether the operator was compound (`+=`, …).
    pub compound: bool,
}

/// Keywords that look like `ident (` but are not calls.
const FLOW_KEYWORDS: [&str; 12] = [
    "if", "while", "match", "for", "return", "in", "loop", "else", "move", "let", "break",
    "continue",
];

/// Parses a lexed file. Total: malformed input degrades to opaque
/// statements, never an error.
pub fn parse(src: &str, ts: &TokenStream) -> ParsedFile {
    let mut p = Parser {
        src,
        toks: &ts.tokens,
        out: ParsedFile::default(),
    };
    p.items(0, ts.tokens.len(), None);
    p.out
}

struct Parser<'a> {
    src: &'a str,
    toks: &'a [Token],
    out: ParsedFile,
}

impl Parser<'_> {
    fn text(&self, i: usize) -> &str {
        match self.toks.get(i) {
            Some(t) => t.text(self.src),
            None => "",
        }
    }

    fn kind(&self, i: usize) -> Option<TokenKind> {
        self.toks.get(i).map(|t| t.kind)
    }

    fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map(|t| t.line).unwrap_or(0)
    }

    /// Index of the token matching the opener at `i`, or `limit - 1`
    /// if unbalanced (recovery).
    fn matching(&self, i: usize, limit: usize) -> usize {
        let (open, close) = match self.text(i) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return i,
        };
        let mut depth = 0usize;
        let mut j = i;
        while j < limit {
            let t = self.text(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        limit.saturating_sub(1)
    }

    /// First index in `[i, limit)` holding punct `needle` at combined
    /// paren/bracket/brace depth zero.
    fn find_at_depth0(&self, i: usize, limit: usize, needle: &str) -> Option<usize> {
        let mut depth = 0i32;
        let mut j = i;
        while j < limit {
            let t = self.text(j);
            if depth == 0 && t == needle {
                return Some(j);
            }
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Joins token texts into normalized type/pattern text: single
    /// spaces only where two ident-ish tokens would otherwise fuse.
    fn normalize(&self, lo: usize, hi: usize) -> String {
        let mut out = String::new();
        for j in lo..hi.min(self.toks.len()) {
            let t = self.text(j);
            if t.is_empty() {
                continue;
            }
            let needs_space = out
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
                && t.chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if needs_space {
                out.push(' ');
            }
            out.push_str(t);
        }
        out
    }

    /// Skips attributes (`#[…]`, `#![…]`) starting at `i`.
    fn skip_attrs(&self, mut i: usize, limit: usize) -> usize {
        while self.text(i) == "#" {
            let mut j = i + 1;
            if self.text(j) == "!" {
                j += 1;
            }
            if self.text(j) == "[" {
                i = self.matching(j, limit) + 1;
            } else {
                break;
            }
        }
        i
    }

    /// Skips to just past the item terminator: `;` at depth 0 or a
    /// matched depth-0 brace group, whichever comes first.
    fn skip_item(&self, i: usize, limit: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < limit {
            match self.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return self.matching(j, limit) + 1,
                "{" => depth += 1,
                "}" => depth -= 1,
                ";" if depth == 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        limit
    }

    /// Item-level loop: functions, impls, traits, mods, structs.
    fn items(&mut self, mut i: usize, limit: usize, owner: Option<&str>) {
        while i < limit {
            i = self.skip_attrs(i, limit);
            if i >= limit {
                break;
            }
            match self.text(i) {
                "pub" => {
                    i += 1;
                    if self.text(i) == "(" {
                        i = self.matching(i, limit) + 1;
                    }
                }
                "unsafe" | "async" | "default" => i += 1,
                "extern" => {
                    i += 1;
                    if self.kind(i) == Some(TokenKind::Str) {
                        i += 1;
                    }
                }
                "const" | "static" if self.text(i + 1) != "fn" => {
                    i = self.skip_item(i, limit);
                }
                "const" | "static" => i += 1,
                "fn" => i = self.function(i, limit, owner),
                "impl" => i = self.impl_block(i, limit),
                "trait" => {
                    let name = self.text(i + 1).to_string();
                    let mut j = i + 2;
                    while j < limit && self.text(j) != "{" && self.text(j) != ";" {
                        j += 1;
                    }
                    if self.text(j) == "{" {
                        let end = self.matching(j, limit);
                        self.items(j + 1, end, Some(&name));
                        i = end + 1;
                    } else {
                        i = j + 1;
                    }
                }
                "mod" => {
                    let mut j = i + 2;
                    while j < limit && self.text(j) != "{" && self.text(j) != ";" {
                        j += 1;
                    }
                    if self.text(j) == "{" {
                        let end = self.matching(j, limit);
                        self.items(j + 1, end, owner);
                        i = end + 1;
                    } else {
                        i = j + 1;
                    }
                }
                "struct" => i = self.struct_def(i, limit),
                "enum" | "union" | "use" | "type" | "macro_rules" => {
                    i = self.skip_item(i, limit);
                }
                _ => i += 1,
            }
        }
    }

    /// `impl [<…>] Type { … }` / `impl Trait for Type { … }`.
    fn impl_block(&mut self, i: usize, limit: usize) -> usize {
        let Some(body_open) = self.find_at_depth0(i, limit, "{") else {
            return limit;
        };
        // Type segment: after `for` if present, else after the
        // optional generics that immediately follow `impl`.
        let mut ty_start = i + 1;
        if self.text(ty_start) == "<" {
            let mut depth = 0i32;
            let mut j = ty_start;
            while j < body_open {
                match self.text(j) {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            ty_start = j + 1;
        }
        let mut seg = ty_start;
        for j in ty_start..body_open {
            if self.text(j) == "for" {
                seg = j + 1;
            }
            if self.text(j) == "where" {
                break;
            }
        }
        // Base name: last plain ident before generics/where/body.
        let mut name = String::new();
        let mut j = seg;
        while j < body_open {
            let t = self.text(j);
            if t == "<" || t == "where" {
                break;
            }
            if self.kind(j) == Some(TokenKind::Ident) && t != "dyn" && t != "mut" {
                name = t.to_string();
            }
            j += 1;
        }
        let end = self.matching(body_open, limit);
        let owner = (!name.is_empty()).then_some(name);
        self.items(body_open + 1, end, owner.as_deref());
        end + 1
    }

    /// `struct Name { field: Ty, … }` — tuple/unit structs skipped.
    fn struct_def(&mut self, i: usize, limit: usize) -> usize {
        let line = self.line(i);
        let name = self.text(i + 1).to_string();
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < limit {
            match self.text(j) {
                "<" => angle += 1,
                ">" => angle -= 1,
                ";" if angle <= 0 => return j + 1,
                "(" => {
                    // Tuple struct: skip to the trailing `;`.
                    j = self.matching(j, limit);
                }
                "{" if angle <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        if self.text(j) != "{" {
            return j + 1;
        }
        let end = self.matching(j, limit);
        let mut fields = Vec::new();
        let mut k = j + 1;
        while k < end {
            k = self.skip_attrs(k, end);
            if self.text(k) == "pub" {
                k += 1;
                if self.text(k) == "(" {
                    k = self.matching(k, end) + 1;
                }
            }
            if self.kind(k) != Some(TokenKind::Ident) {
                k += 1;
                continue;
            }
            let fname = self.text(k).to_string();
            if self.text(k + 1) != ":" {
                k += 1;
                continue;
            }
            // Type runs to the field-separating comma at depth 0
            // (angle-aware so `BTreeMap<u64, u64>` stays whole).
            let ty_lo = k + 2;
            let mut depth = 0i32;
            let mut angle = 0i32;
            let mut m = ty_lo;
            while m < end {
                match self.text(m) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "<" => angle += 1,
                    ">" if angle > 0 => angle -= 1,
                    "," if depth == 0 && angle == 0 => break,
                    _ => {}
                }
                m += 1;
            }
            fields.push((fname, self.normalize(ty_lo, m)));
            k = m + 1;
        }
        self.out.structs.push(StructDef { name, fields, line });
        end + 1
    }

    /// `fn name[<…>](params) [-> ret] [where …] ({ body } | ;)`.
    fn function(&mut self, i: usize, limit: usize, owner: Option<&str>) -> usize {
        let line = self.line(i);
        let name = self.text(i + 1).to_string();
        let mut j = i + 2;
        if self.text(j) == "<" {
            let mut depth = 0i32;
            while j < limit {
                match self.text(j) {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        let mut params = Vec::new();
        if self.text(j) == "(" {
            let close = self.matching(j, limit);
            params = self.params(j + 1, close);
            j = close + 1;
        }
        let mut ret_ty = None;
        if self.text(j) == "->" {
            let lo = j + 1;
            let mut depth = 0i32;
            let mut m = lo;
            while m < limit {
                match self.text(m) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" | ";" if depth == 0 => break,
                    "where" if depth == 0 => break,
                    _ => {}
                }
                m += 1;
            }
            ret_ty = Some(self.normalize(lo, m));
            j = m;
        }
        while j < limit && self.text(j) != "{" && self.text(j) != ";" {
            j += 1;
        }
        let body = if self.text(j) == "{" {
            let end = self.matching(j, limit);
            let b = self.block(j, end);
            j = end + 1;
            Some(b)
        } else {
            j += 1;
            None
        };
        self.out.functions.push(Function {
            name,
            owner: owner.map(str::to_string),
            params,
            ret_ty,
            body,
            line,
        });
        j
    }

    /// Parses a parameter list between `(`+1 and `)`.
    fn params(&self, lo: usize, hi: usize) -> Vec<Param> {
        let mut out = Vec::new();
        let mut start = lo;
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut j = lo;
        loop {
            let at_end = j >= hi;
            let t = if at_end { "," } else { self.text(j) };
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" => angle += 1,
                ">" if angle > 0 => angle -= 1,
                "," if depth == 0 && angle == 0 => {
                    if start < j.min(hi) {
                        out.push(self.param(start, j.min(hi)));
                    }
                    start = j + 1;
                }
                _ => {}
            }
            if at_end {
                break;
            }
            j += 1;
        }
        out
    }

    /// One parameter: `self` receivers, `[mut] name: Ty`, or a
    /// destructuring pattern (name `None`).
    fn param(&self, lo: usize, hi: usize) -> Param {
        // Receiver forms: self | &self | &mut self | &'a mut self.
        for j in lo..hi {
            let t = self.text(j);
            if t == "self" {
                return Param {
                    name: Some("self".to_string()),
                    ty: self.normalize(lo, hi),
                };
            }
            if t != "&" && t != "mut" && self.kind(j) != Some(TokenKind::Lifetime) {
                break;
            }
        }
        let Some(colon) = self.find_at_depth0(lo, hi, ":") else {
            return Param {
                name: None,
                ty: self.normalize(lo, hi),
            };
        };
        let mut p = lo;
        if self.text(p) == "mut" {
            p += 1;
        }
        let name = (self.kind(p) == Some(TokenKind::Ident) && p + 1 == colon)
            .then(|| self.text(p).to_string());
        Param {
            name,
            ty: self.normalize(colon + 1, hi),
        }
    }

    /// Parses the block whose braces sit at `open` and `close`.
    fn block(&mut self, open: usize, close: usize) -> Block {
        let mut stmts = Vec::new();
        let mut i = open + 1;
        while i < close {
            let next = self.stmt(i, close, &mut stmts);
            if next <= i {
                i += 1; // recovery: always make progress
            } else {
                i = next;
            }
        }
        Block {
            stmts,
            span: (open, close + 1),
        }
    }

    /// Parses one statement starting at `i`; pushes it and returns the
    /// index just past it. `limit` is the enclosing block close.
    fn stmt(&mut self, start_raw: usize, limit: usize, out: &mut Vec<Stmt>) -> usize {
        let i = self.skip_attrs(start_raw, limit);
        if i >= limit {
            return limit;
        }
        let line = self.line(i);
        match self.text(i) {
            ";" => i + 1, // stray semicolon owns no statement
            "let" => self.let_stmt(start_raw, i, limit, out),
            "if" => self.if_stmt(start_raw, i, limit, out),
            "match" => self.match_stmt(start_raw, i, limit, out),
            "loop" | "while" | "for" => self.loop_stmt(start_raw, i, limit, out),
            "return" => {
                let semi = self.find_at_depth0(i + 1, limit, ";").unwrap_or(limit);
                let value =
                    (semi > i + 1).then(|| self.expr(i + 1, semi));
                let end = (semi + 1).min(limit);
                out.push(Stmt {
                    kind: StmtKind::Return { value },
                    line,
                    span: (start_raw, end),
                });
                end
            }
            "break" | "continue" => {
                let is_break = self.text(i) == "break";
                let semi = self.find_at_depth0(i + 1, limit, ";").unwrap_or(limit);
                let end = (semi + 1).min(limit);
                out.push(Stmt {
                    kind: if is_break {
                        StmtKind::Break
                    } else {
                        StmtKind::Continue
                    },
                    line,
                    span: (start_raw, end),
                });
                end
            }
            "unsafe" if self.text(i + 1) == "{" => {
                let close = self.matching(i + 1, limit);
                let block = self.block(i + 1, close);
                out.push(Stmt {
                    kind: StmtKind::BareBlock { block },
                    line,
                    span: (start_raw, close + 1),
                });
                close + 1
            }
            "{" => {
                let close = self.matching(i, limit);
                let block = self.block(i, close);
                out.push(Stmt {
                    kind: StmtKind::BareBlock { block },
                    line,
                    span: (start_raw, close + 1),
                });
                close + 1
            }
            "fn" | "struct" | "impl" | "mod" | "use" | "static" | "type" | "macro_rules"
            | "trait" | "enum" => {
                let end = self.skip_item(i, limit);
                out.push(Stmt {
                    kind: StmtKind::Opaque,
                    line,
                    span: (start_raw, end),
                });
                end
            }
            "const" if self.kind(i + 1) == Some(TokenKind::Ident) && self.text(i + 1) != "fn" => {
                let end = self.skip_item(i, limit);
                out.push(Stmt {
                    kind: StmtKind::Opaque,
                    line,
                    span: (start_raw, end),
                });
                end
            }
            _ => {
                // Expression statement: run to `;` at depth 0 or the
                // block end (tail expression). Brace groups inside are
                // skipped whole so `x = if c { a } else { b };` works.
                let mut depth = 0i32;
                let mut j = i;
                let mut semi = limit;
                while j < limit {
                    match self.text(j) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => {
                            j = self.matching(j, limit);
                        }
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        ";" if depth == 0 => {
                            semi = j;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let end = if semi < limit { semi + 1 } else { limit };
                let expr = self.expr(i, semi.min(limit));
                out.push(Stmt {
                    kind: StmtKind::Expr { expr },
                    line,
                    span: (start_raw, end),
                });
                end
            }
        }
    }

    /// `let` statement with optional annotation, initializer and
    /// `else` block.
    fn let_stmt(
        &mut self,
        start_raw: usize,
        i: usize,
        limit: usize,
        out: &mut Vec<Stmt>,
    ) -> usize {
        let line = self.line(i);
        // Find the top-level `=` (angle-aware so `let x: Vec<u8> =`
        // does not trip on generics) and the statement-ending `;`.
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut eq = None;
        let mut semi = limit;
        let mut else_open = None;
        let mut j = i + 1;
        while j < limit {
            let t = self.text(j);
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "<" if eq.is_none() => {
                    let prev = self.text(j.saturating_sub(1));
                    if self.kind(j.saturating_sub(1)) == Some(TokenKind::Ident)
                        || prev == ">"
                        || prev == "::"
                    {
                        angle += 1;
                    }
                }
                ">" if eq.is_none() && angle > 0 => angle -= 1,
                "=" if depth == 0 && angle == 0 && eq.is_none() => eq = Some(j),
                "else" if depth == 0 && eq.is_some() && self.text(j + 1) == "{" => {
                    else_open = Some(j + 1);
                    let close = self.matching(j + 1, limit);
                    j = close;
                }
                "{" if depth == 0 => j = self.matching(j, limit),
                "{" => depth += 1,
                "}" => depth -= 1,
                ";" if depth == 0 => {
                    semi = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        // Pattern name: `let [mut] ident …`.
        let mut p = i + 1;
        if self.text(p) == "mut" {
            p += 1;
        }
        let pat_end = eq.unwrap_or(semi);
        let name = (self.kind(p) == Some(TokenKind::Ident)
            && (self.text(p + 1) == ":" || p + 1 == pat_end))
            .then(|| self.text(p).to_string());
        let ty = (self.text(p + 1) == ":" && name.is_some())
            .then(|| self.normalize(p + 2, pat_end));
        let init_end = else_open.map(|o| o - 1).unwrap_or(semi);
        let init = eq
            .filter(|&e| e + 1 < init_end)
            .map(|e| self.expr(e + 1, init_end));
        let else_block = else_open.map(|o| {
            let close = self.matching(o, limit);
            self.block(o, close)
        });
        let end = (semi + 1).min(limit);
        out.push(Stmt {
            kind: StmtKind::Let {
                name,
                ty,
                init,
                else_block,
            },
            line,
            span: (start_raw, end),
        });
        end
    }

    /// `if cond { … } [else if … | else { … }]`.
    fn if_stmt(&mut self, start_raw: usize, i: usize, limit: usize, out: &mut Vec<Stmt>) -> usize {
        let line = self.line(i);
        let Some(open) = self.find_at_depth0(i + 1, limit, "{") else {
            out.push(Stmt {
                kind: StmtKind::Opaque,
                line,
                span: (start_raw, limit),
            });
            return limit;
        };
        let cond = self.expr(i + 1, open);
        let close = self.matching(open, limit);
        let then_b = self.block(open, close);
        let mut end = close + 1;
        let mut else_b = None;
        if self.text(end) == "else" {
            if self.text(end + 1) == "if" {
                let mut nested = Vec::new();
                let after = self.if_stmt(end + 1, end + 1, limit, &mut nested);
                else_b = Some(Block {
                    stmts: nested,
                    span: (end + 1, after),
                });
                end = after;
            } else if self.text(end + 1) == "{" {
                let eclose = self.matching(end + 1, limit);
                else_b = Some(self.block(end + 1, eclose));
                end = eclose + 1;
            }
        }
        out.push(Stmt {
            kind: StmtKind::If {
                cond,
                then_b,
                else_b,
            },
            line,
            span: (start_raw, end),
        });
        end
    }

    /// `match scrut { pat [guard] => body, … }`.
    fn match_stmt(
        &mut self,
        start_raw: usize,
        i: usize,
        limit: usize,
        out: &mut Vec<Stmt>,
    ) -> usize {
        let line = self.line(i);
        let Some(open) = self.find_at_depth0(i + 1, limit, "{") else {
            out.push(Stmt {
                kind: StmtKind::Opaque,
                line,
                span: (start_raw, limit),
            });
            return limit;
        };
        let scrut = self.expr(i + 1, open);
        let close = self.matching(open, limit);
        let mut arms = Vec::new();
        let mut j = open + 1;
        while j < close {
            j = self.skip_attrs(j, close);
            if j >= close {
                break;
            }
            let Some(arrow) = self.find_at_depth0(j, close, "=>") else {
                break;
            };
            let pat = self.normalize(j, arrow);
            let arm_line = self.line(j);
            let body_start = arrow + 1;
            let body = if self.text(body_start) == "{" {
                let bclose = self.matching(body_start, close);
                let b = self.block(body_start, bclose);
                j = bclose + 1;
                if self.text(j) == "," {
                    j += 1;
                }
                b
            } else {
                // Expression arm: parse as one statement terminated at
                // the arm-separating comma, so `return`/`continue`
                // arms still shape the CFG.
                let arm_end = self
                    .find_at_depth0(body_start, close, ",")
                    .unwrap_or(close);
                let mut stmts = Vec::new();
                let mut k = body_start;
                while k < arm_end {
                    let next = self.stmt(k, arm_end, &mut stmts);
                    k = if next <= k { k + 1 } else { next };
                }
                j = (arm_end + 1).min(close);
                Block {
                    stmts,
                    span: (body_start, arm_end),
                }
            };
            arms.push(Arm {
                pat,
                body,
                line: arm_line,
            });
        }
        out.push(Stmt {
            kind: StmtKind::Match { scrut, arms },
            line,
            span: (start_raw, close + 1),
        });
        close + 1
    }

    /// `loop`/`while [let]`/`for … in …` with body.
    fn loop_stmt(
        &mut self,
        start_raw: usize,
        i: usize,
        limit: usize,
        out: &mut Vec<Stmt>,
    ) -> usize {
        let line = self.line(i);
        let kind = match self.text(i) {
            "loop" => LoopKind::Infinite,
            "while" => LoopKind::While,
            _ => LoopKind::For,
        };
        let Some(open) = self.find_at_depth0(i + 1, limit, "{") else {
            out.push(Stmt {
                kind: StmtKind::Opaque,
                line,
                span: (start_raw, limit),
            });
            return limit;
        };
        let mut pat = None;
        let header = match kind {
            LoopKind::Infinite => None,
            LoopKind::While => (open > i + 1).then(|| self.expr(i + 1, open)),
            LoopKind::For => {
                // Header expression is the iterator after `in`.
                let mut lo = i + 1;
                for j in i + 1..open {
                    if self.text(j) == "in" {
                        lo = j + 1;
                        break;
                    }
                }
                let mut p = i + 1;
                if self.text(p) == "mut" {
                    p += 1;
                }
                pat = (self.kind(p) == Some(TokenKind::Ident) && self.text(p + 1) == "in")
                    .then(|| self.text(p).to_string());
                (open > lo).then(|| self.expr(lo, open))
            }
        };
        let close = self.matching(open, limit);
        let body = self.block(open, close);
        out.push(Stmt {
            kind: StmtKind::Loop {
                kind,
                header,
                pat,
                body,
            },
            line,
            span: (start_raw, close + 1),
        });
        close + 1
    }

    /// Scans `[lo, hi)` as an opaque expression, extracting calls,
    /// casts, the top-level assignment, closures and `?`.
    fn expr(&mut self, lo: usize, hi: usize) -> ExprInfo {
        let hi = hi.min(self.toks.len());
        let mut info = ExprInfo {
            span: (lo, hi),
            line: self.line(lo),
            ..ExprInfo::default()
        };
        if lo >= hi {
            return info;
        }
        self.find_closures(lo, hi, &mut info.closures);
        let in_closure =
            |j: usize, closures: &[(usize, usize)]| closures.iter().any(|&(a, b)| j >= a && j < b);

        let mut depth = 0i32;
        for j in lo..hi {
            let t = self.text(j);
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
                    if depth == 0 && info.assign.is_none() && !in_closure(j, &info.closures) =>
                {
                    let root = self.text(lo).to_string();
                    let field = (root == "self" && self.text(lo + 1) == ".")
                        .then(|| self.text(lo + 2).to_string());
                    info.assign = Some(Assign {
                        root,
                        field,
                        compound: t != "=",
                    });
                }
                "?" if !in_closure(j, &info.closures) => info.has_question = true,
                "as" if self.kind(j) == Some(TokenKind::Ident) => {
                    if self.kind(j + 1) == Some(TokenKind::Ident) && j + 1 < hi {
                        let op_lo = self.cast_operand_start(lo, j);
                        info.casts.push(Cast {
                            op_span: (op_lo, j),
                            target: self.text(j + 1).to_string(),
                            line: self.line(j),
                            col: self.toks.get(op_lo).map(|t| t.col).unwrap_or(1),
                        });
                    }
                }
                _ => {
                    if self.kind(j) == Some(TokenKind::Ident)
                        && self.text(j + 1) == "("
                        && j + 1 < hi
                        && !FLOW_KEYWORDS.contains(&t)
                    {
                        let (recv, qual) = self.call_context(lo, j);
                        info.calls.push(Call {
                            name: t.to_string(),
                            recv,
                            qual,
                            line: self.line(j),
                            col: self.toks.get(j).map(|t| t.col).unwrap_or(1),
                            in_closure: in_closure(j, &info.closures),
                        });
                    }
                }
            }
        }
        info
    }

    /// Records closure literal spans in `[lo, hi)`. A `|` opens a
    /// closure when the previous token cannot end an operand (so
    /// bitwise-or, which is binary, is excluded); the span runs to the
    /// end of the closure body (brace block or one expression).
    fn find_closures(&self, lo: usize, hi: usize, out: &mut Vec<(usize, usize)>) {
        let mut j = lo;
        while j < hi {
            let t = self.text(j);
            let opens = (t == "|"
                && (j == lo || {
                    let p = self.text(j - 1);
                    matches!(p, "(" | "," | "=" | "=>" | "{" | ";" | "return" | "&&" | "||")
                        || p == "move"
                }))
                || (t == "move" && self.text(j + 1) == "|");
            if !opens {
                j += 1;
                continue;
            }
            let start = j;
            let bar = if t == "move" { j + 1 } else { j };
            // Matching param-list `|` (params contain no `|`).
            let mut k = bar + 1;
            while k < hi && self.text(k) != "|" {
                k += 1;
            }
            let body_start = k + 1;
            let end = if self.text(body_start) == "{" {
                self.matching(body_start, hi) + 1
            } else {
                // One expression: to `,` or `)` at relative depth 0.
                let mut depth = 0i32;
                let mut m = body_start;
                while m < hi {
                    match self.text(m) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" if depth == 0 => break,
                        ")" | "]" | "}" => depth -= 1,
                        "," | ";" if depth == 0 => break,
                        _ => {}
                    }
                    m += 1;
                }
                m
            };
            out.push((start, end.min(hi)));
            j = end.max(j + 1);
        }
    }

    /// Start of the primary expression that a cast at `as_idx`
    /// applies to: walks back over field/path chains, literals and
    /// matched groups, stopping at operators (casts bind tighter).
    fn cast_operand_start(&self, lo: usize, as_idx: usize) -> usize {
        let mut j = as_idx; // exclusive upper walker
        loop {
            if j == lo {
                return lo;
            }
            let p = j - 1;
            let t = self.text(p);
            let k = self.kind(p);
            if t == ")" || t == "]" {
                // Walk back to the matching opener.
                let (open, close) = if t == ")" { ("(", ")") } else { ("[", "]") };
                let mut depth = 0i32;
                let mut m = p;
                loop {
                    let mt = self.text(m);
                    if mt == close {
                        depth += 1;
                    } else if mt == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if m == lo {
                        break;
                    }
                    m -= 1;
                }
                j = m;
                continue;
            }
            match k {
                Some(TokenKind::Ident) if t != "as" && !FLOW_KEYWORDS.contains(&t) => {
                    j = p;
                    // Keep absorbing a `.`/`::` chain to the left.
                    if j > lo {
                        let q = self.text(j - 1);
                        if q == "." || q == "::" {
                            j -= 1;
                            continue;
                        }
                    }
                    return j;
                }
                Some(TokenKind::Int | TokenKind::Float) => return p,
                _ => return j,
            }
        }
    }

    /// Receiver chain and `::` qualifier for a call whose name token
    /// is at `name_idx`.
    fn call_context(&self, lo: usize, name_idx: usize) -> (Vec<String>, Option<String>) {
        if name_idx > lo && self.text(name_idx - 1) == "::" {
            let qual = (name_idx >= 2 && self.kind(name_idx - 2) == Some(TokenKind::Ident))
                .then(|| self.text(name_idx - 2).to_string());
            return (Vec::new(), qual);
        }
        let mut recv = Vec::new();
        let mut j = name_idx;
        while j > lo && self.text(j - 1) == "." {
            let p = j - 2;
            if j < 2 {
                break;
            }
            let t = self.text(p);
            match self.kind(p) {
                Some(TokenKind::Ident) => {
                    recv.push(t.to_string());
                    j = p;
                }
                _ if t == ")" => {
                    recv.push("()".to_string());
                    break;
                }
                _ if t == "]" => {
                    // `base[idx].call()` → normalize to `base[]`.
                    let mut depth = 0i32;
                    let mut m = p;
                    loop {
                        let mt = self.text(m);
                        if mt == "]" {
                            depth += 1;
                        } else if mt == "[" {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        if m == lo || m == 0 {
                            break;
                        }
                        m -= 1;
                    }
                    if m > lo && self.kind(m - 1) == Some(TokenKind::Ident) {
                        recv.push(format!("{}[]", self.text(m - 1)));
                    } else {
                        recv.push("[]".to_string());
                    }
                    break;
                }
                _ => break,
            }
        }
        recv.reverse();
        (recv, None)
    }
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::*;

    fn parse_src(src: &str) -> ParsedFile {
        parse(src, &lex(src))
    }

    #[test]
    fn function_signature_and_owner() {
        let src = "impl Engine { pub(crate) fn persist(&mut self, ctx: &mut EngineCtx, t: f64) -> f64 { t } }";
        let p = parse_src(src);
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.name, "persist");
        assert_eq!(f.owner.as_deref(), Some("Engine"));
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[1].name.as_deref(), Some("ctx"));
        assert_eq!(f.params[1].ty, "&mut EngineCtx");
        assert_eq!(f.ret_ty.as_deref(), Some("f64"));
        assert!(f.body.is_some());
    }

    #[test]
    fn impl_trait_for_type_owner() {
        let src = "impl UpdateEngine for SequentialEngine { fn persist(&mut self) {} }";
        let p = parse_src(src);
        assert_eq!(p.functions[0].owner.as_deref(), Some("SequentialEngine"));
    }

    #[test]
    fn struct_fields_with_generics() {
        let src = "pub struct OooEngine { pub inner: Box<OooCore>, map: BTreeMap<u64, u64>, level: u32 }";
        let p = parse_src(src);
        assert_eq!(p.structs.len(), 1);
        let s = &p.structs[0];
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[0], ("inner".into(), "Box<OooCore>".into()));
        assert_eq!(s.fields[1], ("map".into(), "BTreeMap<u64,u64>".into()));
        assert_eq!(s.fields[2], ("level".into(), "u32".into()));
    }

    #[test]
    fn let_with_generic_annotation_and_call_extraction() {
        let src = "fn f() { let v: Vec<u8> = make_vec(seed); self.inner.update_node(ctx, n); }";
        let p = parse_src(src);
        let body = p.functions[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 2);
        let StmtKind::Let { name, ty, init, .. } = &body.stmts[0].kind else {
            panic!("expected let");
        };
        assert_eq!(name.as_deref(), Some("v"));
        assert_eq!(ty.as_deref(), Some("Vec<u8>"));
        assert_eq!(init.as_ref().unwrap().calls[0].name, "make_vec");
        let StmtKind::Expr { expr } = &body.stmts[1].kind else {
            panic!("expected expr");
        };
        assert_eq!(expr.calls[0].name, "update_node");
        assert_eq!(expr.calls[0].recv, ["self", "inner"]);
    }

    #[test]
    fn control_flow_statements() {
        let src = r#"
            fn f(x: u32) -> u32 {
                if x > 1 { return 0; } else if x == 1 { noted(); } else { other(); }
                for t in 0..x { step(t); }
                while x > 0 { if done() { break; } continue; }
                match x { 0 => return 1, 1 => { two() } _ => fallback(), }
                loop { body(); }
            }
        "#;
        let p = parse_src(src);
        let body = p.functions[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 5);
        let StmtKind::If { else_b, .. } = &body.stmts[0].kind else {
            panic!("expected if");
        };
        let else_b = else_b.as_ref().unwrap();
        assert!(matches!(else_b.stmts[0].kind, StmtKind::If { .. }));
        let StmtKind::Match { arms, .. } = &body.stmts[3].kind else {
            panic!("expected match");
        };
        assert_eq!(arms.len(), 3);
        assert!(matches!(arms[0].body.stmts[0].kind, StmtKind::Return { .. }));
        assert_eq!(arms[2].pat, "_");
    }

    #[test]
    fn question_mark_and_let_else() {
        let src = "fn f() -> Result<(), E> { let Some(x) = get() else { return Err(E); }; use_it(x)?; Ok(()) }";
        let p = parse_src(src);
        let body = p.functions[0].body.as_ref().unwrap();
        let StmtKind::Let { else_block, .. } = &body.stmts[0].kind else {
            panic!("expected let");
        };
        let eb = else_block.as_ref().unwrap();
        assert!(matches!(eb.stmts[0].kind, StmtKind::Return { .. }));
        let StmtKind::Expr { expr } = &body.stmts[1].kind else {
            panic!("expected expr");
        };
        assert!(expr.has_question);
    }

    #[test]
    fn casts_with_operand_spans() {
        let src = "fn f(level: u32) { let a = (self.level(node) - 1) as usize; let b = level as usize; }";
        let p = parse_src(src);
        let body = p.functions[0].body.as_ref().unwrap();
        let StmtKind::Let { init, .. } = &body.stmts[0].kind else {
            panic!()
        };
        let cast = &init.as_ref().unwrap().casts[0];
        assert_eq!(cast.target, "usize");
        let StmtKind::Let { init, .. } = &body.stmts[1].kind else {
            panic!()
        };
        let cast = &init.as_ref().unwrap().casts[0];
        assert_eq!(cast.op_span.1 - cast.op_span.0, 1);
    }

    #[test]
    fn assignment_targets() {
        let src = "fn f() { self.busy_until = t; total += 1; self.drained = self.drained.max(t); }";
        let p = parse_src(src);
        let body = p.functions[0].body.as_ref().unwrap();
        let get = |k: usize| -> &Assign {
            let StmtKind::Expr { expr } = &body.stmts[k].kind else {
                panic!()
            };
            expr.assign.as_ref().unwrap()
        };
        assert_eq!(get(0).root, "self");
        assert_eq!(get(0).field.as_deref(), Some("busy_until"));
        assert_eq!(get(1).root, "total");
        assert!(get(1).compound);
        assert_eq!(get(2).field.as_deref(), Some("drained"));
    }

    #[test]
    fn closures_and_in_closure_calls() {
        let src = "fn f() { items.iter().for_each(|x| sink.push(x)); let g = move |y| self.step_store(y); }";
        let p = parse_src(src);
        let body = p.functions[0].body.as_ref().unwrap();
        let StmtKind::Expr { expr } = &body.stmts[0].kind else {
            panic!()
        };
        let push = expr.calls.iter().find(|c| c.name == "push").unwrap();
        assert!(push.in_closure);
        let for_each = expr.calls.iter().find(|c| c.name == "for_each").unwrap();
        assert!(!for_each.in_closure);
        let StmtKind::Let { init, .. } = &body.stmts[1].kind else {
            panic!()
        };
        let init = init.as_ref().unwrap();
        assert_eq!(init.closures.len(), 1);
        assert!(init.calls.iter().any(|c| c.name == "step_store" && c.in_closure));
    }

    #[test]
    fn qualified_calls() {
        let src = "fn f() { let x = Failpoint::parse(name); }";
        let p = parse_src(src);
        let body = p.functions[0].body.as_ref().unwrap();
        let StmtKind::Let { init, .. } = &body.stmts[0].kind else {
            panic!()
        };
        let call = &init.as_ref().unwrap().calls[0];
        assert_eq!(call.name, "parse");
        assert_eq!(call.qual.as_deref(), Some("Failpoint"));
    }

    #[test]
    fn spans_nest_and_cover() {
        let src = "fn f(x: u32) { if x > 0 { a(); } else { b(); } c(); }";
        let p = parse_src(src);
        let body = p.functions[0].body.as_ref().unwrap();
        let (lo, hi) = body.span;
        assert!(lo < hi);
        for s in &body.stmts {
            assert!(s.span.0 >= lo && s.span.1 <= hi);
        }
        // Statements are ordered and disjoint.
        for w in body.stmts.windows(2) {
            assert!(w[0].span.1 <= w[1].span.0);
        }
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "trait UpdateEngine { fn persist(&mut self) -> f64; fn seal_epoch(&mut self) -> Option<f64> { None } }";
        let p = parse_src(src);
        assert_eq!(p.functions.len(), 2);
        assert!(p.functions[0].body.is_none());
        assert!(p.functions[1].body.is_some());
        assert_eq!(p.functions[0].owner.as_deref(), Some("UpdateEngine"));
    }

    #[test]
    fn recovery_on_unknown_constructs() {
        let src = "macro_rules! m { () => {} } fn f() { weird! { tokens }; ok(); } union U { a: u8 }";
        let p = parse_src(src);
        assert_eq!(p.functions.len(), 1);
        let body = p.functions[0].body.as_ref().unwrap();
        assert!(body
            .stmts
            .iter()
            .any(|s| matches!(&s.kind, StmtKind::Expr { expr } if expr.calls.iter().any(|c| c.name == "ok"))));
    }
}
