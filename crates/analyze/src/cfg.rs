//! Per-function control-flow graphs over the parsed statement AST.
//!
//! Each function body becomes a graph of basic blocks holding *atoms*
//! — statement-level units carrying the extracted expression facts
//! (calls, casts, assignments, definitions). Edges are typed:
//!
//! * [`EdgeKind::Normal`] — ordinary fallthrough/branch.
//! * [`EdgeKind::Back`] — loop body end back to the loop header.
//! * [`EdgeKind::ZeroTrip`] — conditional-loop header straight to the
//!   code after the loop (the body ran zero times).
//! * [`EdgeKind::LoopBypass`] — loop body end to the code after the
//!   loop, carrying body-end state.
//!
//! The split lets analyses choose a loop stance: *optimistic* passes
//! (the persist-order obligations, where every real walk visits at
//! least one level) drop `ZeroTrip` edges and keep `LoopBypass`, so a
//! loop body is assumed to execute at least once; *pessimistic* passes
//! (reaching definitions) keep every edge.
//!
//! Every token of the function body is owned by exactly one block
//! (atoms record their token ranges; purely structural tokens —
//! braces, semicolons, `unsafe` — are the only permitted leftovers),
//! which the repo-wide token-partition test enforces.

use crate::syntax::{Block as AstBlock, ExprInfo, Function, LoopKind, Stmt, StmtKind};

/// Index into [`Cfg::blocks`].
pub type BlockId = usize;

/// Edge classification; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Ordinary control transfer.
    Normal,
    /// Loop body back to its header.
    Back,
    /// Conditional-loop header past the body (zero iterations).
    ZeroTrip,
    /// Loop body end past the loop (final iteration exits).
    LoopBypass,
}

/// What an atom is, for analyses that care about statement roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomKind {
    /// Plain statement (let, expression, opaque).
    Plain,
    /// `if`/`match` condition or scrutinee.
    Cond,
    /// Loop header (cond/iterator; also the empty `loop` header).
    LoopHeader,
    /// `return` statement.
    Return,
    /// `break` statement.
    Break,
    /// `continue` statement.
    Continue,
}

/// A statement-level unit inside a basic block.
#[derive(Debug, Clone)]
pub struct Atom<'a> {
    /// Role.
    pub kind: AtomKind,
    /// Primary expression (init/cond/value/expression), if any.
    pub expr: Option<&'a ExprInfo>,
    /// Variable this atom defines: `let` bindings (with annotation),
    /// `for` patterns, and local (non-`self`) assignments.
    pub def: Option<AtomDef<'a>>,
    /// 1-based source line.
    pub line: u32,
    /// Token ranges this atom owns (statement span minus child
    /// blocks), half-open.
    pub own: Vec<(usize, usize)>,
}

/// A definition made by an atom.
#[derive(Debug, Clone)]
pub struct AtomDef<'a> {
    /// Bound variable name.
    pub name: &'a str,
    /// Declared type annotation, if present.
    pub ty: Option<&'a str>,
    /// Initializer expression; `None` means unknown value.
    pub init: Option<&'a ExprInfo>,
}

/// A basic block: atoms plus typed edges.
#[derive(Debug, Clone, Default)]
pub struct BasicBlock<'a> {
    /// Atoms in execution order.
    pub atoms: Vec<Atom<'a>>,
    /// Outgoing edges.
    pub succs: Vec<(BlockId, EdgeKind)>,
    /// Incoming edges.
    pub preds: Vec<(BlockId, EdgeKind)>,
}

/// One lowered loop, for passes that reason per-iteration.
#[derive(Debug, Clone, Copy)]
pub struct LoopInfo {
    /// Header block (continue target).
    pub header: BlockId,
    /// First body block.
    pub body_entry: BlockId,
    /// Block after the loop (break target).
    pub after: BlockId,
}

/// A function's control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg<'a> {
    /// All blocks; `entry` and `exit` are always present.
    pub blocks: Vec<BasicBlock<'a>>,
    /// Entry block (id 0).
    pub entry: BlockId,
    /// Exit block — every `return`, `?` and the tail fall into it.
    pub exit: BlockId,
    /// Every loop, outermost first in source order.
    pub loops: Vec<LoopInfo>,
}

impl<'a> Cfg<'a> {
    /// Successors of `b` under a loop stance: optimistic drops
    /// `ZeroTrip`, pessimistic drops `LoopBypass`.
    pub fn succs(&self, b: BlockId, optimistic: bool) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks[b]
            .succs
            .iter()
            .filter(move |(_, k)| {
                if optimistic {
                    *k != EdgeKind::ZeroTrip
                } else {
                    *k != EdgeKind::LoopBypass
                }
            })
            .map(|&(t, _)| t)
    }

    /// All atoms with their addresses, in block order.
    pub fn atoms(&self) -> impl Iterator<Item = (BlockId, usize, &Atom<'a>)> {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(b, blk)| blk.atoms.iter().enumerate().map(move |(i, a)| (b, i, a)))
    }
}

/// Builds the CFG for a function; `None` when it has no body.
pub fn build<'a>(f: &'a Function) -> Option<Cfg<'a>> {
    let body = f.body.as_ref()?;
    let mut b = Builder {
        blocks: vec![BasicBlock::default(), BasicBlock::default()],
        exit: 1,
        loops: Vec::new(),
        loop_infos: Vec::new(),
    };
    let end = b.block(body, 0);
    b.edge(end, b.exit, EdgeKind::Normal);
    Some(Cfg {
        blocks: b.blocks,
        entry: 0,
        exit: 1,
        loops: b.loop_infos,
    })
}

struct Builder<'a> {
    blocks: Vec<BasicBlock<'a>>,
    exit: BlockId,
    /// `(continue target, break target)` stack.
    loops: Vec<(BlockId, BlockId)>,
    loop_infos: Vec<LoopInfo>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: BlockId, to: BlockId, kind: EdgeKind) {
        self.blocks[from].succs.push((to, kind));
        self.blocks[to].preds.push((from, kind));
    }

    fn push(&mut self, block: BlockId, atom: Atom<'a>) {
        self.blocks[block].atoms.push(atom);
    }

    /// Lowers an AST block starting in `cur`; returns the block where
    /// control continues afterwards.
    fn block(&mut self, b: &'a AstBlock, mut cur: BlockId) -> BlockId {
        for s in &b.stmts {
            cur = self.stmt(s, cur);
        }
        cur
    }

    /// Splits after an atom whose expression contains `?`: control
    /// either continues or diverges to exit.
    fn question_split(&mut self, cur: BlockId) -> BlockId {
        let next = self.new_block();
        self.edge(cur, self.exit, EdgeKind::Normal);
        self.edge(cur, next, EdgeKind::Normal);
        next
    }

    fn stmt(&mut self, s: &'a Stmt, cur: BlockId) -> BlockId {
        match &s.kind {
            StmtKind::Let {
                name,
                ty,
                init,
                else_block,
            } => {
                let children: Vec<(usize, usize)> =
                    else_block.iter().map(|b| b.span).collect();
                self.push(
                    cur,
                    Atom {
                        kind: AtomKind::Plain,
                        expr: init.as_ref(),
                        def: name.as_deref().map(|n| AtomDef {
                            name: n,
                            ty: ty.as_deref(),
                            init: init.as_ref(),
                        }),
                        line: s.line,
                        own: subtract(s.span, &children),
                    },
                );
                let mut cur = cur;
                if let Some(eb) = else_block {
                    // Divergent branch: built, but its end never joins
                    // the happy path (`let … else` must diverge).
                    let ee = self.new_block();
                    self.edge(cur, ee, EdgeKind::Normal);
                    let _ = self.block(eb, ee);
                    let cont = self.new_block();
                    self.edge(cur, cont, EdgeKind::Normal);
                    cur = cont;
                }
                if init.as_ref().is_some_and(|e| e.has_question) {
                    cur = self.question_split(cur);
                }
                cur
            }
            StmtKind::Expr { expr } => {
                self.push(
                    cur,
                    Atom {
                        kind: AtomKind::Plain,
                        expr: Some(expr),
                        def: expr
                            .assign
                            .as_ref()
                            .filter(|a| a.root != "self" && a.field.is_none())
                            .map(|a| AtomDef {
                                name: &a.root,
                                ty: None,
                                init: None,
                            }),
                        line: s.line,
                        own: vec![s.span],
                    },
                );
                if expr.has_question {
                    self.question_split(cur)
                } else {
                    cur
                }
            }
            StmtKind::If {
                cond,
                then_b,
                else_b,
            } => {
                let mut children = vec![then_b.span];
                children.extend(else_b.iter().map(|b| b.span));
                self.push(
                    cur,
                    Atom {
                        kind: AtomKind::Cond,
                        expr: Some(cond),
                        def: None,
                        line: s.line,
                        own: subtract(s.span, &children),
                    },
                );
                if cond.has_question {
                    self.edge(cur, self.exit, EdgeKind::Normal);
                }
                let join = self.new_block();
                let te = self.new_block();
                self.edge(cur, te, EdgeKind::Normal);
                let tend = self.block(then_b, te);
                self.edge(tend, join, EdgeKind::Normal);
                if let Some(eb) = else_b {
                    let ee = self.new_block();
                    self.edge(cur, ee, EdgeKind::Normal);
                    let eend = self.block(eb, ee);
                    self.edge(eend, join, EdgeKind::Normal);
                } else {
                    self.edge(cur, join, EdgeKind::Normal);
                }
                join
            }
            StmtKind::Match { scrut, arms } => {
                let children: Vec<(usize, usize)> = arms.iter().map(|a| a.body.span).collect();
                self.push(
                    cur,
                    Atom {
                        kind: AtomKind::Cond,
                        expr: Some(scrut),
                        def: None,
                        line: s.line,
                        own: subtract(s.span, &children),
                    },
                );
                if scrut.has_question {
                    self.edge(cur, self.exit, EdgeKind::Normal);
                }
                let join = self.new_block();
                if arms.is_empty() {
                    self.edge(cur, join, EdgeKind::Normal);
                }
                for arm in arms {
                    let ae = self.new_block();
                    self.edge(cur, ae, EdgeKind::Normal);
                    let aend = self.block(&arm.body, ae);
                    self.edge(aend, join, EdgeKind::Normal);
                }
                join
            }
            StmtKind::Loop {
                kind,
                header,
                pat,
                body,
            } => {
                let hdr = self.new_block();
                self.edge(cur, hdr, EdgeKind::Normal);
                self.push(
                    hdr,
                    Atom {
                        kind: AtomKind::LoopHeader,
                        expr: header.as_ref(),
                        def: pat.as_deref().map(|n| AtomDef {
                            name: n,
                            ty: None,
                            init: None,
                        }),
                        line: s.line,
                        own: subtract(s.span, &[body.span]),
                    },
                );
                if header.as_ref().is_some_and(|e| e.has_question) {
                    self.edge(hdr, self.exit, EdgeKind::Normal);
                }
                let after = self.new_block();
                let be = self.new_block();
                self.edge(hdr, be, EdgeKind::Normal);
                self.loop_infos.push(LoopInfo {
                    header: hdr,
                    body_entry: be,
                    after,
                });
                self.loops.push((hdr, after));
                let bend = self.block(body, be);
                self.loops.pop();
                self.edge(bend, hdr, EdgeKind::Back);
                if *kind != LoopKind::Infinite {
                    self.edge(hdr, after, EdgeKind::ZeroTrip);
                    self.edge(bend, after, EdgeKind::LoopBypass);
                }
                after
            }
            StmtKind::Return { value } => {
                self.push(
                    cur,
                    Atom {
                        kind: AtomKind::Return,
                        expr: value.as_ref(),
                        def: None,
                        line: s.line,
                        own: vec![s.span],
                    },
                );
                self.edge(cur, self.exit, EdgeKind::Normal);
                self.new_block()
            }
            StmtKind::Break => {
                self.push(
                    cur,
                    Atom {
                        kind: AtomKind::Break,
                        expr: None,
                        def: None,
                        line: s.line,
                        own: vec![s.span],
                    },
                );
                let target = self.loops.last().map(|&(_, b)| b).unwrap_or(self.exit);
                self.edge(cur, target, EdgeKind::Normal);
                self.new_block()
            }
            StmtKind::Continue => {
                self.push(
                    cur,
                    Atom {
                        kind: AtomKind::Continue,
                        expr: None,
                        def: None,
                        line: s.line,
                        own: vec![s.span],
                    },
                );
                let target = self.loops.last().map(|&(h, _)| h).unwrap_or(self.exit);
                self.edge(cur, target, EdgeKind::Back);
                self.new_block()
            }
            StmtKind::BareBlock { block } => self.block(block, cur),
            StmtKind::Opaque => {
                self.push(
                    cur,
                    Atom {
                        kind: AtomKind::Plain,
                        expr: None,
                        def: None,
                        line: s.line,
                        own: vec![s.span],
                    },
                );
                cur
            }
        }
    }
}

/// Subtracts sorted, non-overlapping child ranges from `span`.
fn subtract(span: (usize, usize), children: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mut sorted: Vec<(usize, usize)> = children.to_vec();
    sorted.sort_unstable();
    let mut out = Vec::new();
    let mut lo = span.0;
    for &(a, b) in &sorted {
        if a > lo {
            out.push((lo, a.min(span.1)));
        }
        lo = lo.max(b);
    }
    if lo < span.1 {
        out.push((lo, span.1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{lex, parse};

    fn cfg_of(src: &str) -> Cfg<'_> {
        // Leak for test simplicity: tie the AST's lifetime to 'static.
        let ts = Box::leak(Box::new(lex(src)));
        let parsed = Box::leak(Box::new(parse(src, ts)));
        build(&parsed.functions[0]).expect("body")
    }

    #[test]
    fn straight_line_is_three_blocks() {
        let cfg = cfg_of("fn f() { a(); b(); }");
        // entry (with both atoms) + exit, plus nothing else.
        assert_eq!(cfg.blocks[cfg.entry].atoms.len(), 2);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![(cfg.exit, EdgeKind::Normal)]);
    }

    #[test]
    fn early_return_edges_to_exit() {
        let cfg = cfg_of("fn f(x: u32) { if x > 0 { return; } a(); }");
        let returns: Vec<_> = cfg
            .atoms()
            .filter(|(_, _, a)| a.kind == AtomKind::Return)
            .collect();
        assert_eq!(returns.len(), 1);
        let (b, _, _) = returns[0];
        assert!(cfg.blocks[b].succs.contains(&(cfg.exit, EdgeKind::Normal)));
    }

    #[test]
    fn conditional_loop_has_all_edge_kinds() {
        let cfg = cfg_of("fn f(n: u32) { for i in 0..n { body(i); } after(); }");
        let kinds: Vec<EdgeKind> = cfg
            .blocks
            .iter()
            .flat_map(|b| b.succs.iter().map(|&(_, k)| k))
            .collect();
        assert!(kinds.contains(&EdgeKind::Back));
        assert!(kinds.contains(&EdgeKind::ZeroTrip));
        assert!(kinds.contains(&EdgeKind::LoopBypass));
    }

    #[test]
    fn infinite_loop_reaches_after_only_via_break() {
        let cfg = cfg_of("fn f() { loop { if done() { break; } step(); } after(); }");
        assert!(!cfg
            .blocks
            .iter()
            .flat_map(|b| b.succs.iter())
            .any(|&(_, k)| k == EdgeKind::ZeroTrip || k == EdgeKind::LoopBypass));
        // `after()` is still reachable from entry.
        let after = cfg
            .atoms()
            .find(|(_, _, a)| {
                a.expr
                    .is_some_and(|e| e.calls.iter().any(|c| c.name == "after"))
            })
            .map(|(b, _, _)| b)
            .expect("after block");
        let mut seen = vec![false; cfg.blocks.len()];
        let mut stack = vec![cfg.entry];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            stack.extend(cfg.succs(b, false));
        }
        assert!(seen[after]);
    }

    #[test]
    fn question_mark_splits_to_exit() {
        let cfg = cfg_of("fn f() -> Result<(), E> { step()?; after(); Ok(()) }");
        let q = cfg
            .atoms()
            .find(|(_, _, a)| a.expr.is_some_and(|e| e.has_question))
            .map(|(b, _, _)| b)
            .expect("question atom");
        assert!(cfg.blocks[q].succs.contains(&(cfg.exit, EdgeKind::Normal)));
        assert_eq!(cfg.blocks[q].succs.len(), 2);
    }

    #[test]
    fn match_arms_fan_out_and_join() {
        let cfg = cfg_of("fn f(x: u32) { match x { 0 => a(), 1 => { b(); } _ => c(), } d(); }");
        let scrut = cfg
            .atoms()
            .find(|(_, _, a)| a.kind == AtomKind::Cond)
            .map(|(b, _, _)| b)
            .expect("scrutinee");
        assert_eq!(cfg.blocks[scrut].succs.len(), 3);
    }

    #[test]
    fn continue_edges_back_to_header() {
        let cfg = cfg_of("fn f(n: u32) { while n > 0 { if skip() { continue; } work(); } }");
        let header = cfg
            .atoms()
            .find(|(_, _, a)| a.kind == AtomKind::LoopHeader)
            .map(|(b, _, _)| b)
            .expect("header");
        let cont = cfg
            .atoms()
            .find(|(_, _, a)| a.kind == AtomKind::Continue)
            .map(|(b, _, _)| b)
            .expect("continue");
        assert!(cfg.blocks[cont].succs.contains(&(header, EdgeKind::Back)));
    }

    #[test]
    fn atom_token_ranges_are_disjoint() {
        let cfg = cfg_of(
            "fn f(x: u32) { let y = x + 1; if y > 2 { early(); } else { other(); } \
             for i in 0..y { step(i); } match y { 0 => a(), _ => b(), } tail() }",
        );
        let mut ranges: Vec<(usize, usize)> = cfg
            .atoms()
            .flat_map(|(_, _, a)| a.own.iter().copied())
            .collect();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
    }
}
