//! Custom static analysis for the PLP workspace.
//!
//! The simulator's correctness argument leans on source-level
//! conventions that `rustc` and clippy do not enforce: library code
//! must surface errors as values rather than panicking, address and
//! geometry arithmetic must not silently truncate, every consumer of
//! [`UpdateScheme`]-like enums must be forced to revisit its `match`
//! when a scheme is added, and nothing in the simulation may read a
//! nondeterministic source (wall clocks, OS entropy) — determinism is
//! what makes the run cache and the crash sweeps sound.
//!
//! This crate is that enforcement: a small, dependency-free lexical
//! linter ([`lint`]) and the `plp-lint` binary that `scripts/verify.sh`
//! gates on. Deliberate exceptions are annotated in the source as
//!
//! ```text
//! // lint: allow(<rule>) <reason>
//! ```
//!
//! on the offending line or the line above; the reason is mandatory,
//! so every exception documents itself. Rule identifiers and their
//! definitions live in [`lint::rules`].

pub mod cfg;
pub mod dataflow;
pub mod lint;
pub mod passes;
pub mod syntax;

pub use lint::rules::{Finding, RuleId, RULES};
pub use lint::scan::SourceModel;
pub use lint::{lint_file, FileReport};
