//! The sanitizer's zero-interference guarantee: turning the invariant
//! sanitizer on must not change a single byte of any rendered
//! artefact. All checking happens off to the side of the timing model
//! (violations go to the report's sanitizer summary, and from there to
//! stderr/JSON), so an experiment's stdout is a pure function of the
//! simulated system alone.

use plp_bench::{matrix, specs, MatrixOptions, RunSettings};
use plp_core::SanitizerMode;

#[test]
fn sanitizer_on_and_off_render_byte_identical_artefacts() {
    let s = RunSettings {
        instructions: 2_000,
        seed: 3,
    };
    let spec_ids = ["fig10", "fig11"];
    let mut on_requests = Vec::new();
    for id in spec_ids {
        on_requests.extend(specs::find(id).expect("registered").runs_needed(s));
    }
    // Specs build configs with the default sanitizer mode; this test
    // is vacuous if that default ever stops being Check.
    assert!(on_requests.iter().all(|r| r.config.sanitizer.is_on()));

    let mut off_requests = on_requests.clone();
    for req in &mut off_requests {
        req.config.sanitizer = SanitizerMode::Off;
    }

    let (on, _) = matrix::execute(&on_requests, &MatrixOptions::serial());
    let (mut off, _) = matrix::execute(&off_requests, &MatrixOptions::serial());

    // The two runs genuinely differ where they should: the on-mode
    // reports carry checking work, the off-mode ones none at all.
    let mut checked = 0;
    for (on_req, off_req) in on_requests.iter().zip(&off_requests) {
        let watched = &on.get(on_req).sanitizer;
        let blind = &off.get(off_req).sanitizer;
        assert_eq!(watched.mode, SanitizerMode::Check);
        assert_eq!(blind.mode, SanitizerMode::Off);
        assert_eq!(blind.checked_persists + blind.checked_node_updates, 0);
        assert!(watched.is_clean(), "correct engine flagged: {on_req:?}");
        checked += watched.checked_persists;
    }
    assert!(checked > 0, "sanitizer-on matrix never checked a persist");

    // Re-key every off-mode report under the corresponding on-mode
    // request, so the specs (which build on-mode configs) render from
    // sanitizer-off data. The artefacts must not move by one byte.
    for (on_req, off_req) in on_requests.iter().zip(&off_requests) {
        let report = off.get(off_req).clone();
        off.insert(on_req, report);
    }
    for id in spec_ids {
        let spec = specs::find(id).expect("registered");
        assert_eq!(
            spec.output(&on, s),
            spec.output(&off, s),
            "{id}: sanitizer mode leaked into the rendered artefact"
        );
    }
}
