//! Allocation-regression pin: the arena-backed persist hot path must
//! be heap-allocation-free in steady state, so the PR-5 optimization
//! can't silently rot back into per-persist `Vec`s.
//!
//! A counting global allocator wraps `System`; each phase warms its
//! subject (first-touch growth — map resizes, `VecDeque` reservations,
//! lazy arena population — is allowed once), snapshots the allocation
//! counter, drives a measured burst, and demands the counter did not
//! move. Everything runs inside ONE `#[test]` so no sibling test can
//! allocate concurrently and pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use plp_bmt::{BmtGeometry, BonsaiTree};
use plp_core::engine::{
    CoalescingEngine, EngineCtx, EngineStats, OooEngine, PipelinedEngine, SequentialEngine,
    UpdateRequest,
};
use plp_core::meta::MetadataCaches;
use plp_crypto::{CounterBlock, SipKey};
use plp_events::Cycle;
use plp_nvm::{NvmConfig, NvmDevice};

/// `System`, with every allocation and reallocation counted.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `burst` and returns how many heap allocations it performed.
fn count_allocs(mut burst: impl FnMut()) -> u64 {
    let before = allocations();
    burst();
    allocations() - before
}

struct Harness {
    geometry: BmtGeometry,
    meta: MetadataCaches,
    nvm: NvmDevice,
    stats: EngineStats,
    walk: Vec<plp_bmt::NodeLabel>,
}

impl Harness {
    fn new() -> Self {
        Harness {
            geometry: BmtGeometry::new(8, 9),
            meta: MetadataCaches::new(128 << 10, true),
            nvm: NvmDevice::new(NvmConfig::paper_default()),
            stats: EngineStats::default(),
            walk: Vec::new(),
        }
    }

    fn ctx(&mut self) -> EngineCtx<'_> {
        EngineCtx {
            geometry: self.geometry,
            mac_latency: Cycle::new(40),
            meta: &mut self.meta,
            nvm: &mut self.nvm,
            stats: &mut self.stats,
            tap: None,
            walk: &mut self.walk,
            failpoints: None,
        }
    }
}

const WARM_ROUNDS: u64 = 4;
const MEASURED_ROUNDS: u64 = 16;
const PAGES: u64 = 256;

#[test]
fn steady_state_persist_path_is_allocation_free() {
    // ---- Phase 1: the arena-backed tree itself. -------------------
    let geometry = BmtGeometry::new(8, 9);
    let mut tree = BonsaiTree::new(geometry, SipKey::new(7, 11));
    let mut counters = CounterBlock::default();
    let touch = |tree: &mut BonsaiTree, counters: &mut CounterBlock, rounds: u64| {
        for r in 0..rounds {
            for page in 0..PAGES {
                counters.bump((page as usize + r as usize) % 64);
                let _ = tree.update_leaf(page * 37 % 4096, counters);
            }
        }
    };
    touch(&mut tree, &mut counters, WARM_ROUNDS);
    let tree_allocs = count_allocs(|| touch(&mut tree, &mut counters, MEASURED_ROUNDS));
    assert_eq!(
        tree_allocs, 0,
        "BonsaiTree::update_leaf allocated {tree_allocs} times over \
         {} warmed updates — the arena hot path must be allocation-free",
        MEASURED_ROUNDS * PAGES
    );

    // ---- Phase 2: every engine's persist scheduling. --------------
    // Warm each engine over the same page pattern the measured burst
    // uses, then demand the burst itself never touches the heap.
    // (Epoch seals are excluded: sealing appends one completion record
    // per epoch by design; the per-persist budget is what's pinned.)

    let mut h = Harness::new();
    let mut seq = SequentialEngine::new(Cycle::new(40));
    let mut now = 0u64;
    let mut drive_seq = |h: &mut Harness, e: &mut SequentialEngine, rounds: u64| {
        for _ in 0..rounds {
            for i in 0..PAGES {
                now += 5;
                let req = UpdateRequest {
                    leaf: h.geometry.leaf(i * 13 % 4096),
                    now: Cycle::new(now),
                };
                let _ = e.persist(req, &mut h.ctx());
            }
        }
    };
    drive_seq(&mut h, &mut seq, WARM_ROUNDS);
    let n = count_allocs(|| drive_seq(&mut h, &mut seq, MEASURED_ROUNDS));
    assert_eq!(n, 0, "sequential persist allocated {n} times in steady state");

    let mut h = Harness::new();
    let mut pipe = PipelinedEngine::new(Cycle::new(40), 9, 64);
    let mut now = 0u64;
    let mut drive_pipe = |h: &mut Harness, e: &mut PipelinedEngine, rounds: u64| {
        for _ in 0..rounds {
            for i in 0..PAGES {
                now += 5;
                let req = UpdateRequest {
                    leaf: h.geometry.leaf(i * 13 % 4096),
                    now: Cycle::new(now),
                };
                let _ = e.persist(req, &mut h.ctx());
            }
        }
    };
    drive_pipe(&mut h, &mut pipe, WARM_ROUNDS);
    let n = count_allocs(|| drive_pipe(&mut h, &mut pipe, MEASURED_ROUNDS));
    assert_eq!(n, 0, "pipelined persist allocated {n} times in steady state");

    let mut h = Harness::new();
    let mut o3 = OooEngine::new(Cycle::new(40), 9, 2);
    let mut now = 0u64;
    let mut drive_o3 = |h: &mut Harness, e: &mut OooEngine, rounds: u64| {
        for _ in 0..rounds {
            for i in 0..PAGES {
                now += 5;
                let req = UpdateRequest {
                    leaf: h.geometry.leaf(i * 13 % 4096),
                    now: Cycle::new(now),
                };
                let _ = e.persist(req, &mut h.ctx());
            }
        }
    };
    drive_o3(&mut h, &mut o3, WARM_ROUNDS);
    let n = count_allocs(|| drive_o3(&mut h, &mut o3, MEASURED_ROUNDS));
    assert_eq!(n, 0, "o3 persist allocated {n} times in steady state");

    let mut h = Harness::new();
    let mut co = CoalescingEngine::new(Cycle::new(40), 9, 2);
    let mut now = 0u64;
    let mut drive_co = |h: &mut Harness, e: &mut CoalescingEngine, rounds: u64| {
        for _ in 0..rounds {
            for i in 0..PAGES {
                now += 5;
                let req = UpdateRequest {
                    leaf: h.geometry.leaf(i * 13 % 4096),
                    now: Cycle::new(now),
                };
                let _ = e.persist(req, &mut h.ctx());
            }
        }
    };
    drive_co(&mut h, &mut co, WARM_ROUNDS);
    let n = count_allocs(|| drive_co(&mut h, &mut co, MEASURED_ROUNDS));
    assert_eq!(n, 0, "coalescing persist allocated {n} times in steady state");
}
