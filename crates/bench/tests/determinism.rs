//! The harness's central output guarantee: a run matrix produces the
//! same reports and the same rendered artefacts whether it executes
//! serially, on a worker pool, or out of a warm on-disk cache.

use plp_bench::{matrix, specs, MatrixOptions, RunSettings};

fn temp_cache_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("plp-determinism-{}", std::process::id()))
}

#[test]
fn serial_parallel_and_warm_cache_agree_exactly() {
    let s = RunSettings {
        instructions: 2_000,
        seed: 3,
    };
    // A small but representative matrix: two artefacts with heavily
    // overlapping baselines.
    let spec_ids = ["fig10", "fig11"];
    let mut requests = Vec::new();
    for id in spec_ids {
        requests.extend(specs::find(id).expect("registered").runs_needed(s));
    }

    let cache_dir = temp_cache_dir();
    std::fs::remove_dir_all(&cache_dir).ok();

    let (serial, serial_stats) = matrix::execute(&requests, &MatrixOptions::serial());
    let cached = MatrixOptions {
        threads: 4,
        cache_dir: Some(cache_dir.clone()),
    };
    let (parallel, parallel_stats) = matrix::execute(&requests, &cached);
    let (warm, warm_stats) = matrix::execute(&requests, &cached);

    // The cold parallel pass computed everything; the warm pass
    // computed nothing.
    assert_eq!(parallel_stats.cache_hits, 0);
    assert_eq!(warm_stats.cache_hits, serial_stats.unique);

    // Identical RunReports for every request, run however.
    for req in &requests {
        assert_eq!(serial.get(req), parallel.get(req), "{}", req.key());
        assert_eq!(serial.get(req), warm.get(req), "{}", req.key());
    }

    // Byte-identical rendered artefacts.
    for id in spec_ids {
        let spec = specs::find(id).expect("registered");
        let a = spec.output(&serial, s);
        let b = spec.output(&parallel, s);
        let c = spec.output(&warm, s);
        assert_eq!(a, b, "{id}: parallel render differs from serial");
        assert_eq!(a, c, "{id}: warm-cache render differs from serial");
        assert!(a.starts_with(&format!("== {}:", spec.title)));
    }

    std::fs::remove_dir_all(&cache_dir).ok();
}

#[test]
fn cache_keys_isolate_settings() {
    // Same spec at a different seed must share nothing with the run
    // above even through a shared cache directory.
    let spec = specs::find("fig11").expect("registered");
    let a = RunSettings {
        instructions: 1_000,
        seed: 1,
    };
    let mut b = a;
    b.seed = 2;
    let keys_a: std::collections::HashSet<String> =
        spec.runs_needed(a).iter().map(|r| r.key()).collect();
    assert!(spec.runs_needed(b).iter().all(|r| !keys_a.contains(&r.key())));
}
