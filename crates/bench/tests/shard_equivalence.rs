//! The sharded coordinator's compatibility and determinism
//! guarantees at the harness layer:
//!
//! * a `--streams 1 --shards 1` request is the *same request* as an
//!   unsharded one — same cache key, same report, byte-identical
//!   rendered artefacts;
//! * sharded runs are deterministic: worker-thread count, repetition
//!   and cache state cannot move a single field of any report.

use plp_bench::{matrix, specs, MatrixOptions, RunSettings};
use plp_core::ShardTopology;

#[test]
fn unit_topology_is_the_unsharded_request() {
    let s = RunSettings {
        instructions: 2_000,
        seed: 3,
    };
    let spec = specs::find("fig10").expect("registered");
    let plain = spec.runs_needed(s);
    let unit: Vec<_> = plain
        .iter()
        .map(|r| r.clone().with_topology(ShardTopology::unit()))
        .collect();

    // Identical keys: the unit topology leaves the pre-sharding cache
    // key untouched, so existing on-disk caches keep hitting.
    for (a, b) in plain.iter().zip(&unit) {
        assert_eq!(a.key(), b.key());
        assert!(!a.key().contains("streams="));
    }

    // Identical reports and artefact bytes.
    let (plain_results, _) = matrix::execute(&plain, &MatrixOptions::serial());
    let (unit_results, _) = matrix::execute(&unit, &MatrixOptions::serial());
    for (a, b) in plain.iter().zip(&unit) {
        assert_eq!(plain_results.get(a), unit_results.get(b));
    }
    assert_eq!(
        spec.output(&plain_results, s),
        spec.output(&unit_results, s),
        "unit topology moved a rendered artefact byte"
    );
}

#[test]
fn sharded_matrix_is_deterministic_across_threads_and_repeats() {
    let s = RunSettings {
        instructions: 4_000,
        seed: 5,
    };
    // A reduced sweep: every topology point, one scheme, one bench.
    let requests: Vec<_> = specs::shard_spec()
        .runs_needed(s)
        .into_iter()
        .filter(|r| r.bench == "gcc" && r.config.scheme == plp_core::UpdateScheme::O3)
        .collect();
    assert_eq!(requests.len(), 4, "one request per topology point");

    let (serial, _) = matrix::execute(&requests, &MatrixOptions::serial());
    let (parallel, _) = matrix::execute(
        &requests,
        &MatrixOptions {
            threads: 4,
            cache_dir: None,
        },
    );
    let (again, _) = matrix::execute(&requests, &MatrixOptions::serial());
    for req in &requests {
        assert_eq!(serial.get(req), parallel.get(req), "{}", req.key());
        assert_eq!(serial.get(req), again.get(req), "{}", req.key());
        assert!(
            serial.get(req).sanitizer.is_clean(),
            "correct coordinator flagged: {}",
            req.key()
        );
    }

    // Stream count scales simulated work: the 8x8 point retires ~8x
    // the instructions of the 1x1 point.
    let unit = requests.iter().find(|r| r.topology.is_unit()).unwrap();
    let eight = requests
        .iter()
        .find(|r| r.topology == ShardTopology::new(8, 8))
        .unwrap();
    let unit_instr = serial.get(unit).instructions;
    let eight_instr = serial.get(eight).instructions;
    assert!(eight_instr > 7 * unit_instr);
}
