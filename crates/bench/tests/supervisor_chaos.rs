//! End-to-end supervision and chaos tests (the PR's acceptance
//! criteria): a chaos sweep with 20+ injected retryable faults must
//! complete with zero harness aborts, a full result set and
//! byte-identical reports; the degradation report must be a pure
//! function of the chaos seed; an unrecoverable fault must degrade to
//! a partial result set instead of a panic; and a corrupted cache
//! entry must quarantine and regenerate transparently mid-matrix.

use std::path::PathBuf;
use std::time::Duration;

use plp_bench::supervisor::RunVerdict;
use plp_bench::{
    execute_supervised, ChaosOptions, MatrixOptions, RunRequest, RunSettings, SupervisorOptions,
};
use plp_core::retry::RetryPolicy;
use plp_core::{SystemConfig, UpdateScheme};

fn tiny() -> RunSettings {
    RunSettings {
        instructions: 2_000,
        seed: 5,
    }
}

/// 24 distinct runs: every update scheme × four benchmarks.
fn requests() -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for scheme in UpdateScheme::all() {
        for bench in ["gcc", "milc", "astar", "namd"] {
            reqs.push(RunRequest::new(
                bench,
                SystemConfig::for_scheme(scheme),
                tiny(),
            ));
        }
    }
    reqs
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plp-supchaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Supervision options tuned for tests: a watchdog generous next to a
/// 2k-instruction run (~ms) but small enough that injected stalls
/// resolve quickly, and near-instant backoff.
fn test_sup(cache_dir: Option<PathBuf>, threads: usize) -> SupervisorOptions {
    let mut sup = SupervisorOptions::new(MatrixOptions { threads, cache_dir });
    sup.watchdog = Duration::from_secs(2);
    sup.retry = RetryPolicy::constant(3, 1.0e6); // 1 ms, three retries
    sup
}

#[test]
fn chaos_sweep_recovers_every_retryable_fault() {
    let dir = temp_dir("sweep");
    let reqs = requests();

    // Ground truth: the same matrix, unsupervised by faults.
    let clean = test_sup(None, 4);
    let (want, _, clean_report) = execute_supervised(&reqs, &clean);
    assert!(clean_report.is_event_free());

    // Full-intensity chaos: every one of the 24 runs gets a fault.
    let mut sup = test_sup(Some(dir.clone()), 4);
    sup.chaos = Some(ChaosOptions {
        seed: 0xC0FFEE,
        intensity: 1.0,
        unrecoverable: 0,
    });
    let (got, stats, report) = execute_supervised(&reqs, &sup);

    assert!(
        report.chaos_faults.len() >= 20,
        "acceptance asks for 20+ injected faults, planned {}",
        report.chaos_faults.len()
    );
    assert!(report.fully_recovered(), "all faults were retryable");
    assert_eq!(report.counts().lost(), 0);
    assert_eq!(got.len(), stats.unique, "no run may be missing");
    for req in &reqs {
        assert!(got.contains(req));
        assert_eq!(
            got.get(req),
            want.get(req),
            "recovered runs must render byte-identically: {}",
            req.key()
        );
    }
    // The eventful verdicts add up to the whole fault plan: every run
    // was afflicted, so none can be a plain first-attempt Ok.
    let c = report.counts();
    assert_eq!(c.ok, 0, "intensity 1.0 afflicts every run: {c:?}");
    assert_eq!(
        c.cache_quarantined + c.retried,
        stats.unique,
        "every fault recovers through quarantine or retry: {c:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degradation_report_is_a_pure_function_of_the_chaos_seed() {
    let reqs = requests();
    let run = |name: &str, threads: usize| {
        let dir = temp_dir(name);
        let mut sup = test_sup(Some(dir.clone()), threads);
        sup.chaos = Some(ChaosOptions {
            seed: 0xDEAD_BEEF,
            intensity: 1.0,
            unrecoverable: 0,
        });
        let (_, _, report) = execute_supervised(&reqs, &sup);
        let _ = std::fs::remove_dir_all(&dir);
        report
    };
    let first = run("det-a", 4);
    let second = run("det-b", 2);
    assert_eq!(
        first, second,
        "same seed, different cache dirs and thread counts — the reports must be equal"
    );
}

#[test]
fn unrecoverable_faults_degrade_to_a_partial_result_set() {
    let reqs = requests();
    let mut sup = test_sup(None, 4);
    sup.retry = RetryPolicy::constant(1, 1.0e6); // sticky runs fail fast
    sup.chaos = Some(ChaosOptions {
        seed: 1,
        intensity: 0.0,
        unrecoverable: 2,
    });
    let (results, stats, report) = execute_supervised(&reqs, &sup);

    assert!(!report.fully_recovered());
    assert_eq!(report.counts().panicked, 2);
    assert_eq!(results.len(), stats.unique - 2, "partial, not empty");
    // The lost runs are exactly the sticky-panic entries, each having
    // burned the whole retry budget.
    let lost: Vec<_> = report
        .entries()
        .filter(|(_, log)| !log.verdict.recovered())
        .collect();
    assert_eq!(lost.len(), 2);
    for (key, log) in lost {
        assert_eq!(log.verdict, RunVerdict::Panicked { attempts: 2 });
        assert_eq!(log.failures.len(), 2);
        assert!(
            !results.iter().any(|(k, _)| k == key),
            "a lost run must not appear in the result set"
        );
    }
    // Every other run is untouched.
    assert_eq!(report.counts().ok, stats.unique - 2);
}

#[test]
fn corrupt_cache_entries_quarantine_and_regenerate_mid_matrix() {
    let dir = temp_dir("quarantine");
    let reqs = requests();

    // Warm the cache.
    let sup = test_sup(Some(dir.clone()), 4);
    let (want, _, warm_report) = execute_supervised(&reqs, &sup);
    assert!(warm_report.is_event_free());

    // Corrupt one entry: truncate the stored file mid-body.
    let victim = &reqs[5];
    let path = plp_bench::cache::cache_path(&dir, &victim.key());
    let text = std::fs::read_to_string(&path).expect("entry exists after warm run");
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();

    // Re-run: the corrupt entry is quarantined and regenerated; every
    // other run is a clean cache hit.
    let (got, stats, report) = execute_supervised(&reqs, &sup);
    assert!(report.fully_recovered());
    assert_eq!(report.counts().cache_quarantined, 1);
    assert_eq!(report.counts().ok, stats.unique - 1);
    assert_eq!(stats.cache_hits, stats.unique - 1);
    let (key, log) = report.entries().next().expect("one eventful run");
    assert_eq!(key, &victim.key());
    assert_eq!(log.verdict, RunVerdict::CacheQuarantined);
    assert_eq!(log.quarantine.as_deref(), Some("truncated entry"));
    assert_eq!(got.get(victim), want.get(victim));

    // The bad bytes moved into quarantine and the slot healed: a third
    // run is all cache hits.
    let quarantined = std::fs::read_dir(plp_bench::cache::quarantine_dir(&dir))
        .expect("quarantine dir exists")
        .count();
    assert_eq!(quarantined, 1);
    let (_, third_stats, third_report) = execute_supervised(&reqs, &sup);
    assert!(third_report.is_event_free());
    assert_eq!(third_stats.cache_hits, third_stats.unique);
    let _ = std::fs::remove_dir_all(&dir);
}
