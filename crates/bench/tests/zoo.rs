//! Zoo-scheme end-to-end guarantees through the bench harness: the
//! `zoo` artefact (triad_nvm + phoenix vs the sp baseline) renders
//! byte-identically under the chaos supervisor, and every zoo run —
//! unsharded or fanned out over a 4x4 stream/shard topology — upholds
//! its sanitizer contract.

use std::path::PathBuf;
use std::time::Duration;

use plp_bench::{
    execute_supervised, specs, ChaosOptions, MatrixOptions, RunSettings, SupervisorOptions,
};
use plp_core::retry::RetryPolicy;
use plp_core::{ShardTopology, UpdateScheme};

fn tiny() -> RunSettings {
    RunSettings {
        instructions: 2_000,
        seed: 5,
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plp-zoo-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_sup(cache_dir: Option<PathBuf>, threads: usize) -> SupervisorOptions {
    let mut sup = SupervisorOptions::new(MatrixOptions { threads, cache_dir });
    sup.watchdog = Duration::from_secs(2);
    sup.retry = RetryPolicy::constant(3, 1.0e6);
    sup
}

#[test]
fn zoo_artefact_renders_identically_under_chaos() {
    let s = tiny();
    let spec = specs::find("zoo").expect("zoo is registered");
    let reqs = spec.runs_needed(s);
    assert!(
        reqs.iter().any(|r| r.config.scheme == UpdateScheme::TriadNvm)
            && reqs.iter().any(|r| r.config.scheme == UpdateScheme::Phoenix),
        "the zoo artefact must run both new schemes"
    );

    let clean = test_sup(None, 4);
    let (want, _, clean_report) = execute_supervised(&reqs, &clean);
    assert!(clean_report.is_event_free());

    let dir = temp_dir("chaos");
    let mut sup = test_sup(Some(dir.clone()), 4);
    sup.chaos = Some(ChaosOptions {
        seed: 0xC0FFEE,
        intensity: 1.0,
        unrecoverable: 0,
    });
    let (got, _, report) = execute_supervised(&reqs, &sup);
    assert!(
        report.fully_recovered(),
        "chaos faults must all recover: {}",
        report.render()
    );

    // Byte-identical artefact and identical per-run reports; every run
    // (chaos-recovered included) sanitizer-clean.
    assert_eq!(spec.output(&want, s), spec.output(&got, s));
    for req in &reqs {
        assert_eq!(want.get(req), got.get(req), "{}", req.key());
        let r = got.get(req);
        assert!(
            r.sanitizer.is_clean(),
            "{}: {:?}",
            req.key(),
            r.sanitizer.violations
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zoo_schemes_stay_sanitizer_clean_under_sharded_topology() {
    let s = tiny();
    let spec = specs::find("zoo").expect("zoo is registered");
    let topology = ShardTopology::new(4, 4);
    let reqs: Vec<_> = spec
        .runs_needed(s)
        .into_iter()
        .map(|r| r.with_topology(topology))
        .collect();

    let (results, _, report) = execute_supervised(&reqs, &test_sup(None, 4));
    assert!(report.is_event_free());
    for req in &reqs {
        let r = results.get(req);
        assert!(
            r.sanitizer.is_clean(),
            "{} sharded 4x4: {:?}",
            req.key(),
            r.sanitizer.violations
        );
        // Four streams of work actually flowed through the shards.
        if req.config.scheme != UpdateScheme::SecureWb {
            assert!(r.persists > 0, "{}: no persists", req.key());
        }
        assert!(
            r.instructions > 3 * s.instructions,
            "{}: four streams must retire ~4x the work",
            req.key()
        );
    }
}
