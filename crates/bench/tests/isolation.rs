//! End-to-end gates for process-isolated matrix supervision, driving
//! the real `all` binary (`--isolate` re-execs it once per run as
//! `all … --run-one <key>`).
//!
//! Pinned behaviours:
//! - stdout is byte-identical between in-process and isolated sweeps;
//! - the degradation report (stderr minus the timing line) is equal
//!   across thread counts under a chaos seed in isolated mode;
//! - a child that exhausts its address-space rlimit degrades to an
//!   `oom-killed` verdict promptly instead of hanging the sweep;
//! - no `--run-one` child processes survive a finished sweep.

use std::process::{Command, Output};
use std::sync::Mutex;
use std::time::Instant;

/// Sweeps in this file spawn and then assert on child *processes*, so
/// they must not interleave: a test's no-survivors scan would observe
/// another test's live children.
static SWEEP_LOCK: Mutex<()> = Mutex::new(());

// The artefact renderers assert structural minimums (e.g. adjacent
// same-page persists) that need a few thousand instructions of trace.
const INSTRUCTIONS: &str = "2000";
const SEED: &str = "7";

fn all_binary() -> &'static str {
    env!("CARGO_BIN_EXE_all")
}

fn run_all(args: &[&str]) -> Output {
    Command::new(all_binary())
        .args([INSTRUCTIONS, SEED])
        .args(args)
        .output()
        .expect("all binary runs")
}

/// stderr with the one legitimately run-dependent line (the stats
/// summary, which embeds wall-clock timing and the thread count)
/// removed.
fn stable_stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr)
        .lines()
        .filter(|line| !line.starts_with("[plp-bench] all ("))
        .collect::<Vec<_>>()
        .join("\n")
}

/// True if any live process on the system has `needle` in its argv.
fn any_process_cmdline_contains(needle: &str) -> bool {
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return false;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.chars().all(|c| c.is_ascii_digit()) {
            continue;
        }
        if let Ok(cmdline) = std::fs::read(entry.path().join("cmdline")) {
            if String::from_utf8_lossy(&cmdline)
                .split('\0')
                .any(|arg| arg.contains(needle))
            {
                return true;
            }
        }
    }
    false
}

fn assert_no_surviving_children() {
    assert!(
        !any_process_cmdline_contains("--run-one"),
        "a --run-one child process survived the sweep"
    );
}

#[test]
fn isolated_sweep_stdout_is_byte_identical_to_in_process() {
    let _guard = SWEEP_LOCK.lock().unwrap();
    let in_process = run_all(&["--no-cache"]);
    let isolated = run_all(&["--no-cache", "--isolate"]);
    assert!(in_process.status.success(), "in-process sweep failed");
    assert!(isolated.status.success(), "isolated sweep degraded");
    assert_eq!(
        in_process.stdout, isolated.stdout,
        "isolated stdout diverged from in-process stdout"
    );
    assert_no_surviving_children();
}

#[test]
fn isolated_chaos_report_is_deterministic_across_thread_counts() {
    let _guard = SWEEP_LOCK.lock().unwrap();
    let two = run_all(&["--no-cache", "--isolate", "--chaos", "0xC0FFEE", "--threads", "2"]);
    let four = run_all(&["--no-cache", "--isolate", "--chaos", "0xC0FFEE", "--threads", "4"]);
    assert_eq!(
        two.status.code(),
        four.status.code(),
        "exit code changed with thread count"
    );
    assert_eq!(
        two.stdout, four.stdout,
        "chaos stdout changed with thread count"
    );
    assert_eq!(
        stable_stderr(&two),
        stable_stderr(&four),
        "degradation report changed with thread count"
    );
    // Every injected fault must be visible in the report: the chaos
    // plan for this seed includes worker faults, and recovery must be
    // total (exit 0) — isolation may not weaken chaos coverage.
    let report = stable_stderr(&two);
    assert!(
        report.contains("faults injected"),
        "chaos banner missing from stderr:\n{report}"
    );
    assert_eq!(two.status.code(), Some(0), "chaos sweep did not recover");
    assert_no_surviving_children();
}

/// Pinned regression: an isolated child that exhausts its rlimit is
/// reported as `oom-killed` — terminal, never retried — and the sweep
/// finishes promptly and degrades instead of hanging. Before process
/// isolation an allocation bomb inside a worker thread took the whole
/// sweep down with it.
#[test]
fn oom_child_degrades_to_oom_killed_without_hanging_the_sweep() {
    let _guard = SWEEP_LOCK.lock().unwrap();
    let started = Instant::now();
    let output = run_all(&[
        "--no-cache",
        "--isolate",
        "--test-oom-key",
        "bench=gcc|",
    ]);
    let elapsed = started.elapsed();
    assert_eq!(
        output.status.code(),
        Some(3),
        "oom-killed runs must degrade the sweep (exit 3)"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("runs oom-killed"),
        "isolation tally missing from stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("exceeded its address-space limit"),
        "oom verdict detail missing from stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("0 ipc-corrupt"),
        "oom children misclassified as ipc corruption:\n{stderr}"
    );
    // Terminal classification means no retry backoff: even a debug
    // build finishes the whole sweep in well under this bound, while a
    // hung watchdog-less sweep would blow straight through it.
    assert!(
        elapsed.as_secs() < 300,
        "oom sweep took {elapsed:?}; child OOM is stalling the matrix"
    );
    assert_no_surviving_children();
}
