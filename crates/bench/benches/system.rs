//! Whole-system simulation throughput: how many simulated instructions
//! per host second each scheme's model sustains, plus trace
//! generation. These are the numbers that size the harness run times.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use plp_core::{SimSetup, SystemConfig, UpdateScheme};
use plp_trace::{spec, TraceGenerator};
use std::hint::black_box;

const INSTRUCTIONS: u64 = 20_000;

fn bench_trace_generation(c: &mut Criterion) {
    let profile = spec::benchmark("gcc").unwrap();
    c.bench_function("system/trace-gen-20k-instr", |b| {
        b.iter_batched(
            || TraceGenerator::new(profile.clone(), 1),
            |mut g| black_box(g.generate(INSTRUCTIONS)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_schemes(c: &mut Criterion) {
    let profile = spec::benchmark("gcc").unwrap();
    let trace = TraceGenerator::new(profile.clone(), 1).generate(INSTRUCTIONS);
    for scheme in UpdateScheme::all() {
        let setup = SimSetup::with_base_ipc(SystemConfig::for_scheme(scheme), profile.base_ipc)
            .expect("valid configuration");
        c.bench_function(&format!("system/run-20k-{}", scheme.name()), |b| {
            b.iter_batched(
                || setup.simulation(),
                |sim| black_box(sim.run(&trace)),
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group!(benches, bench_trace_generation, bench_schemes);
criterion_main!(benches);
