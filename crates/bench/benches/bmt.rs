//! Microbenchmarks for the Bonsai Merkle Tree: leaf updates (the
//! per-persist functional work), LCA computation (the coalescing
//! primitive) and tree rebuilds (the recovery path).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use plp_bmt::{BmtGeometry, BonsaiTree};
use plp_crypto::{CounterBlock, SipKey};
use std::hint::black_box;

fn bench_update_leaf(c: &mut Criterion) {
    let g = BmtGeometry::new(8, 9); // the paper's default shape
    c.bench_function("bmt/update-leaf-9-levels", |b| {
        let mut tree = BonsaiTree::new(g, SipKey::new(1, 2));
        let mut cb = CounterBlock::new();
        let mut page = 0u64;
        b.iter(|| {
            page = (page + 1) % 4096;
            cb.bump((page % 64) as usize);
            black_box(tree.update_leaf(page, &cb))
        })
    });
}

fn bench_lca(c: &mut Criterion) {
    let g = BmtGeometry::new(8, 9);
    let a = g.leaf(12_345);
    let far = g.leaf(9_999_999);
    let near = g.leaf(12_346);
    c.bench_function("bmt/lca-far", |b| {
        b.iter(|| black_box(g.lca(black_box(a), black_box(far))))
    });
    c.bench_function("bmt/lca-near", |b| {
        b.iter(|| black_box(g.lca(black_box(a), black_box(near))))
    });
}

fn bench_rebuild(c: &mut Criterion) {
    let g = BmtGeometry::new(8, 9);
    let key = SipKey::new(1, 2);
    // 256 pages of persisted counters — a typical recovery working set.
    let counters: Vec<(u64, CounterBlock)> = (0..256u64)
        .map(|p| {
            let mut cb = CounterBlock::new();
            cb.bump((p % 64) as usize);
            (p, cb)
        })
        .collect();
    c.bench_function("bmt/rebuild-256-pages", |b| {
        b.iter_batched(
            || counters.clone(),
            |cs| {
                black_box(BonsaiTree::from_counters(
                    g,
                    key,
                    cs.iter().map(|(p, c)| (*p, c)),
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_update_leaf, bench_lca, bench_rebuild);
criterion_main!(benches);
