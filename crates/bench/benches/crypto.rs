//! Microbenchmarks for the functional crypto layer: the SipHash PRF,
//! counter-mode encryption, stateful MACs and split-counter updates.
//! These bound the *simulator's* own speed (the modelled hardware
//! latency is a separate, configured quantity).

use criterion::{criterion_group, criterion_main, Criterion};
use plp_crypto::{CounterBlock, CounterValue, CtrEngine, DataBlock, MacEngine, SipKey};
use plp_events::addr::BlockAddr;
use std::hint::black_box;

fn bench_siphash(c: &mut Criterion) {
    let key = SipKey::new(1, 2);
    let data = [0xa5u8; 64];
    c.bench_function("siphash/64B-bytes", |b| {
        b.iter(|| black_box(key.hash_bytes(black_box(&data))))
    });
    let words = [7u64; 9];
    c.bench_function("siphash/9-words", |b| {
        b.iter(|| black_box(key.hash_words(black_box(&words))))
    });
}

fn bench_ctr(c: &mut Criterion) {
    let engine = CtrEngine::new(SipKey::new(3, 4));
    let plain = DataBlock::from_u64(42);
    let addr = BlockAddr::new(1000);
    let ctr = CounterValue::new(5, 6);
    c.bench_function("ctr/encrypt-64B", |b| {
        b.iter(|| black_box(engine.encrypt(black_box(plain), addr, ctr)))
    });
}

fn bench_mac(c: &mut Criterion) {
    let engine = MacEngine::new(SipKey::new(3, 4));
    let cipher = DataBlock::from_u64(42);
    let addr = BlockAddr::new(1000);
    let ctr = CounterValue::new(5, 6);
    c.bench_function("mac/compute-64B", |b| {
        b.iter(|| black_box(engine.compute(black_box(&cipher), addr, ctr)))
    });
    let tag = engine.compute(&cipher, addr, ctr);
    c.bench_function("mac/verify-64B", |b| {
        b.iter(|| black_box(engine.verify(black_box(&cipher), addr, ctr, tag)))
    });
}

fn bench_counters(c: &mut Criterion) {
    c.bench_function("counter/bump", |b| {
        let mut cb = CounterBlock::new();
        let mut slot = 0usize;
        b.iter(|| {
            slot = (slot + 1) % 64;
            black_box(cb.bump(slot))
        })
    });
}

criterion_group!(benches, bench_siphash, bench_ctr, bench_mac, bench_counters);
criterion_main!(benches);
