//! Cache and NVM model microbenchmarks.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use plp_cache::{Cache, CacheConfig, Hierarchy, WriteMode};
use plp_events::{addr::BlockAddr, Cycle};
use plp_nvm::{NvmConfig, NvmDevice};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/lookup-hit", |b| {
        let mut cache = Cache::new(CacheConfig::new(128 << 10, 8));
        for i in 0..1024 {
            cache.fill(BlockAddr::new(i), false);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            black_box(cache.lookup(BlockAddr::new(i), false))
        })
    });
    c.bench_function("cache/fill-evict", |b| {
        let mut cache = Cache::new(CacheConfig::new(64 * 16, 2));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.fill(BlockAddr::new(i), true))
        })
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    c.bench_function("hierarchy/store-stream", |b| {
        b.iter_batched(
            || Hierarchy::paper_default(4 << 20),
            |mut h| {
                for i in 0..512u64 {
                    black_box(h.store(BlockAddr::new(i * 7 % 2048), WriteMode::WriteBack));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_nvm(c: &mut Criterion) {
    c.bench_function("nvm/read-write-mix", |b| {
        b.iter_batched(
            || NvmDevice::new(NvmConfig::paper_default()),
            |mut d| {
                let mut t = Cycle::ZERO;
                for i in 0..256u64 {
                    if i % 3 == 0 {
                        t = t.max(d.read(Cycle::new(i * 10), BlockAddr::new(i)));
                    } else {
                        t = t.max(d.write(Cycle::new(i * 10), BlockAddr::new(i)));
                    }
                }
                black_box(t)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_cache, bench_hierarchy, bench_nvm);
criterion_main!(benches);
