//! Engine-model microbenchmarks: scheduling throughput of the four
//! PLP update engines, and the simulated completion times of a fixed
//! burst (an ablation of mechanism cost vs mechanism benefit — the
//! *simulated* cycles differ per engine; the *host* cost of scheduling
//! is what criterion measures).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use plp_bmt::BmtGeometry;
use plp_core::engine::{
    CoalescingEngine, EngineCtx, EngineStats, OooEngine, PipelinedEngine, SequentialEngine,
    UpdateRequest,
};
use plp_core::meta::MetadataCaches;
use plp_events::Cycle;
use plp_nvm::{NvmConfig, NvmDevice};
use std::hint::black_box;

struct Harness {
    geometry: BmtGeometry,
    meta: MetadataCaches,
    nvm: NvmDevice,
    stats: EngineStats,
    walk: Vec<plp_bmt::NodeLabel>,
}

impl Harness {
    fn new() -> Self {
        Harness {
            geometry: BmtGeometry::new(8, 9),
            meta: MetadataCaches::new(128 << 10, true),
            nvm: NvmDevice::new(NvmConfig::paper_default()),
            stats: EngineStats::default(),
            walk: Vec::new(),
        }
    }

    fn ctx(&mut self) -> EngineCtx<'_> {
        EngineCtx {
            geometry: self.geometry,
            mac_latency: Cycle::new(40),
            meta: &mut self.meta,
            nvm: &mut self.nvm,
            stats: &mut self.stats,
            tap: None,
            walk: &mut self.walk,
            failpoints: None,
        }
    }
}

const BURST: u64 = 256;

fn bench_sequential(c: &mut Criterion) {
    c.bench_function("engine/sequential-256-persists", |b| {
        b.iter_batched(
            || (Harness::new(), SequentialEngine::new(Cycle::new(40))),
            |(mut h, mut e)| {
                let mut last = Cycle::ZERO;
                for i in 0..BURST {
                    let req = UpdateRequest {
                        leaf: h.geometry.leaf(i * 13 % 4096),
                        now: Cycle::new(i),
                    };
                    last = e.persist(req, &mut h.ctx());
                }
                black_box(last)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_pipelined(c: &mut Criterion) {
    c.bench_function("engine/pipelined-256-persists", |b| {
        b.iter_batched(
            || (Harness::new(), PipelinedEngine::new(Cycle::new(40), 9, 64)),
            |(mut h, mut e)| {
                let mut last = Cycle::ZERO;
                for i in 0..BURST {
                    let req = UpdateRequest {
                        leaf: h.geometry.leaf(i * 13 % 4096),
                        now: Cycle::new(i),
                    };
                    last = e.persist(req, &mut h.ctx());
                }
                black_box(last)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_ooo(c: &mut Criterion) {
    c.bench_function("engine/ooo-8-epochs-of-32", |b| {
        b.iter_batched(
            || (Harness::new(), OooEngine::new(Cycle::new(40), 9, 2)),
            |(mut h, mut e)| {
                let mut last = Cycle::ZERO;
                for epoch in 0..8u64 {
                    for i in 0..32u64 {
                        let req = UpdateRequest {
                            leaf: h.geometry.leaf((epoch * 32 + i) * 13 % 4096),
                            now: Cycle::new(epoch * 100),
                        };
                        let _ = e.persist(req, &mut h.ctx());
                    }
                    last = e.seal_epoch();
                }
                black_box(last)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_coalescing(c: &mut Criterion) {
    c.bench_function("engine/coalescing-8-epochs-of-32", |b| {
        b.iter_batched(
            || (Harness::new(), CoalescingEngine::new(Cycle::new(40), 9, 2)),
            |(mut h, mut e)| {
                let mut last = Cycle::ZERO;
                for epoch in 0..8u64 {
                    for i in 0..32u64 {
                        let req = UpdateRequest {
                            // Page-local bursts so LCAs sit low in the
                            // tree, the coalescing-friendly case.
                            leaf: h.geometry.leaf(epoch * 64 + i / 8),
                            now: Cycle::new(epoch * 100),
                        };
                        let _ = e.persist(req, &mut h.ctx());
                    }
                    last = e.seal_epoch(&mut h.ctx());
                }
                black_box(last)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_sequential,
    bench_pipelined,
    bench_ooo,
    bench_coalescing
);
criterion_main!(benches);
