//! §V-D ablation: strict persistency over a Bonsai Merkle Tree vs an
//! SGX-style counter tree.
//!
//! The counter tree must persist the *entire* update path (its MAC
//! chain needs parent counters), so each persist issues `levels` NVM
//! writes instead of one and crash recovery depends on all of them.
//! This harness quantifies the cost the paper cites as the reason to
//! focus on BMTs.

fn main() {
    plp_bench::run_spec(plp_bench::specs::find("sgx_compare").expect("registered spec"));
}
