//! §V-D ablation: strict persistency over a Bonsai Merkle Tree vs an
//! SGX-style counter tree.
//!
//! The counter tree must persist the *entire* update path (its MAC
//! chain needs parent counters), so each persist issues `levels` NVM
//! writes instead of one and crash recovery depends on all of them.
//! This harness quantifies the cost the paper cites as the reason to
//! focus on BMTs.

use plp_bench::{banner, run, RunSettings, SeriesTable};
use plp_core::{sgx, SystemConfig, UpdateScheme};
use plp_trace::spec;

fn main() {
    let settings = RunSettings::from_args();
    banner(
        "SGX ablation",
        "sp over a BMT vs sp over an SGX-style counter tree",
        settings,
    );

    let mut table = SeriesTable::new("bench", &["sp(BMT)", "sp_ctree", "ratio"]);
    for profile in spec::all_benchmarks() {
        let base = run(
            &profile,
            &SystemConfig::for_scheme(UpdateScheme::SecureWb),
            settings,
        );
        let bmt = run(
            &profile,
            &SystemConfig::for_scheme(UpdateScheme::Sp),
            settings,
        )
        .normalized_to(&base);
        let ctree = run(
            &profile,
            &SystemConfig::for_scheme(UpdateScheme::SpCounterTree),
            settings,
        )
        .normalized_to(&base);
        table.push(&profile.name, vec![bmt, ctree, ctree / bmt]);
    }
    print!("{}", table.render());
    println!();
    let g = SystemConfig::default().bmt;
    println!(
        "analytic write amplification at this geometry: {:.0}x NVM persists per store",
        sgx::sgx_write_amplification(g)
    );
    println!("paper §V-D: 'we focus only on BMT due to the extra cost incurred by the counter tree'");
}
