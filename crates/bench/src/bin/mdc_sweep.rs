//! §VII metadata-cache sweep: each of the three metadata caches
//! (counter/MAC/BMT) sized {32, 64, 128, 256} KB, `coalescing` scheme,
//! normalized to `secure_WB`. Paper reference: at most ~2% difference
//! across sizes for any scheme.

fn main() {
    plp_bench::run_spec(plp_bench::specs::find("mdc_sweep").expect("registered spec"));
}
