//! §VII metadata-cache sweep: each of the three metadata caches
//! (counter/MAC/BMT) sized {32, 64, 128, 256} KB, `coalescing` scheme,
//! normalized to `secure_WB`. Paper reference: at most ~2% difference
//! across sizes for any scheme.

use plp_bench::{banner, run, RunSettings, SeriesTable};
use plp_core::{SystemConfig, UpdateScheme};
use plp_trace::spec;

fn main() {
    let settings = RunSettings::from_args();
    banner("MDC sweep", "coalescing vs metadata-cache capacity", settings);

    let mut table = SeriesTable::new("bench", &["32KB", "64KB", "128KB", "256KB"]);
    for profile in spec::all_benchmarks() {
        let base = run(
            &profile,
            &SystemConfig::for_scheme(UpdateScheme::SecureWb),
            settings,
        );
        let mut row = Vec::new();
        for kb in [32usize, 64, 128, 256] {
            let mut cfg = SystemConfig::for_scheme(UpdateScheme::Coalescing);
            cfg.metadata_cache_bytes = kb << 10;
            row.push(run(&profile, &cfg, settings).normalized_to(&base));
        }
        table.push(&profile.name, row);
    }
    print!("{}", table.render());
    println!();
    println!("paper reference: <= ~2% spread across capacities");
}
