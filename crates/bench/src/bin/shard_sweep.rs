//! Shard sweep: the sharded multi-stream coordinator scaled over
//! shards ∈ {1, 2, 4, 8} (one client stream per shard), three schemes
//! (`sp`, `o3`, `coalescing`), two benchmarks.
//!
//! Three sections:
//!
//! 1. The artefact table (cycles per instruction normalized to the
//!    unsharded 1×1 point) from the declarative `shard_sweep` spec.
//! 2. A cross-shard mutation check: three deliberately broken
//!    coordinators (`SkipRootOfRoots`, `SkipEpochBarrier`,
//!    `ReorderAcks`) must each be caught by the new sanitizer rules,
//!    while the correct coordinator stays clean.
//! 3. Per-shard-count throughput, written to
//!    `results/shard_sweep_throughput.txt`.
//!
//! Exit codes: 0 clean, 1 sanitizer/mutation failure, 2 usage.
//!
//! Usage: `shard_sweep [instructions] [seed] [--threads N] [--serial]`

use std::time::Instant;

use plp_bench::{matrix, shard_spec, MatrixOptions, RunSettings};
use plp_core::{
    ShardMutation, ShardTopology, ShardedSetup, SimSetup, SystemConfig, UpdateScheme,
    ViolationKind,
};
use plp_events::stats::ShardedThroughput;
use plp_trace::{multi, spec, Trace, TraceGenerator};

fn usage() -> ! {
    eprintln!("usage: shard_sweep [instructions] [seed] [--threads N] [--serial]");
    std::process::exit(2);
}

fn sharded(scheme: UpdateScheme, streams: u32, shards: u32, seed: u64) -> ShardedSetup {
    let profile = spec::benchmark("gcc").expect("gcc profile");
    let setup = SimSetup::for_profile(SystemConfig::for_scheme(scheme), &profile, seed)
        .expect("valid config");
    ShardedSetup::new(setup, ShardTopology::new(streams, shards))
}

fn stream_traces(streams: u32, seed: u64, instructions: u64) -> Vec<Trace> {
    let profile = spec::benchmark("gcc").expect("gcc profile");
    (0..streams)
        .map(|s| {
            TraceGenerator::new(profile.clone(), multi::stream_seed(seed, s))
                .generate(instructions)
        })
        .collect()
}

fn main() {
    let mut settings = RunSettings::default();
    let mut positionals = 0;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--serial" => threads = 1,
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => usage(),
            },
            _ => match (arg.parse::<u64>(), positionals) {
                (Ok(n), 0) => {
                    settings.instructions = n;
                    positionals = 1;
                }
                (Ok(n), 1) => {
                    settings.seed = n;
                    positionals = 2;
                }
                _ => usage(),
            },
        }
    }

    // 1. The sweep artefact through the shared matrix (parallel,
    // cached, supervised like `all`).
    let spec_ = shard_spec();
    let requests = spec_.runs_needed(settings);
    let opts = MatrixOptions {
        threads,
        cache_dir: Some(matrix::default_cache_dir()),
    };
    let (results, stats) = matrix::execute(&requests, &opts);
    print!("{}", spec_.output(&results, settings));
    eprintln!("[plp-bench] shard_sweep: {}", stats.summary());

    let mut failed = false;

    // Correct sharded runs must uphold the whole contract, the new
    // cross-shard rules included.
    for req in &requests {
        let report = results.get(req);
        if !report.sanitizer.is_clean() {
            failed = true;
            eprintln!(
                "[plp-bench] shard_sweep: sanitizer violations in {}",
                req.key()
            );
        }
    }

    // 2. Mutation checks: each broken coordinator must trip its rule.
    let s = spec_.settings(settings);
    let mutant_instr = s.instructions.min(30_000);
    println!();
    println!("-- cross-shard mutation checks (2 streams x 2 shards, gcc)");
    let mutants: [(ShardMutation, UpdateScheme, ViolationKind); 3] = [
        (
            ShardMutation::SkipRootOfRoots,
            UpdateScheme::O3,
            ViolationKind::CrossShardRootOrder,
        ),
        (
            ShardMutation::SkipEpochBarrier,
            UpdateScheme::O3,
            ViolationKind::CrossShardRootOrder,
        ),
        (
            ShardMutation::ReorderAcks,
            UpdateScheme::Sp,
            ViolationKind::StreamOrder,
        ),
    ];
    for (mutation, scheme, kind) in mutants {
        let setup = sharded(scheme, 2, 2, s.seed);
        let traces = stream_traces(2, s.seed, mutant_instr);
        let refs: Vec<&Trace> = traces.iter().collect();
        let report = setup.run_mutated(&refs, mutation);
        let caught = report.sanitizer.count_of(kind);
        println!(
            "{:<18} {:<10} {:<22} {}",
            format!("{mutation:?}"),
            scheme.name(),
            kind.name(),
            if caught > 0 {
                format!("CAUGHT ({caught} violations)")
            } else {
                "MISSED".to_string()
            }
        );
        if caught == 0 {
            failed = true;
        }
    }

    // 3. Per-shard-count simulation throughput, recorded to results/.
    let mut throughput = ShardedThroughput::new();
    for (streams, shards) in plp_bench::specs::SHARD_POINTS {
        let setup = sharded(UpdateScheme::O3, streams, shards, s.seed);
        let traces = stream_traces(streams, s.seed, mutant_instr);
        let refs: Vec<&Trace> = traces.iter().collect();
        // lint: allow(nondeterminism) wall-clock feeds the throughput file, never a simulation
        let started = Instant::now();
        let report = setup.run(&refs);
        throughput.record(shards, report.total_cycles.get(), started.elapsed());
    }
    let mut out = String::from("shard_sweep per-shard-count throughput (gcc, o3)\n");
    for (shards, t) in throughput.shards() {
        out.push_str(&format!(
            "shards={shards}: {:.2}M sim-cycles/s ({} runs)\n",
            t.cycles_per_sec() / 1e6,
            t.runs()
        ));
    }
    out.push_str(&format!(
        "merged: {:.2}M sim-cycles/s over {} runs\n",
        throughput.merged().cycles_per_sec() / 1e6,
        throughput.merged().runs()
    ));
    let path = std::path::Path::new("results").join("shard_sweep_throughput.txt");
    match std::fs::create_dir_all("results").and_then(|_| std::fs::write(&path, &out)) {
        Ok(()) => eprintln!("[plp-bench] shard_sweep: throughput written to {}", path.display()),
        Err(e) => eprintln!("[plp-bench] shard_sweep: could not write {}: {e}", path.display()),
    }

    if failed {
        std::process::exit(1);
    }
}
