//! Table I: recovery failure cases due to persist failure.
//!
//! For each memory-tuple component, build a run in which that
//! component of one persist silently fails to reach the persistence
//! domain, crash, recover, and report which verifications fail.
//! Expected outcomes (the paper's Table I):
//!
//! | lost | outcome |
//! |---|---|
//! | R | BMT (verification) failure |
//! | M | MAC (verification) failure |
//! | γ | wrong plaintext, BMT & MAC failure |
//! | C | wrong plaintext, MAC failure |

fn main() {
    plp_bench::run_spec(plp_bench::specs::find("table1").expect("registered spec"));
}
