//! Table I: recovery failure cases due to persist failure.
//!
//! For each memory-tuple component, build a run in which that
//! component of one persist silently fails to reach the persistence
//! domain, crash, recover, and report which verifications fail.
//! Expected outcomes (the paper's Table I):
//!
//! | lost | outcome |
//! |---|---|
//! | R | BMT (verification) failure |
//! | M | MAC (verification) failure |
//! | γ | wrong plaintext, BMT & MAC failure |
//! | C | wrong plaintext, MAC failure |

use plp_bench::{banner, RunSettings};
use plp_core::{
    run_with_crash, with_component_lost, ObserverExpectation, PersistImage, RecoveryChecker,
    SystemConfig, TupleComponent, UpdateScheme,
};
use plp_events::Cycle;
use plp_trace::{spec, TraceGenerator};

fn main() {
    let mut settings = RunSettings::from_args();
    settings.instructions = settings.instructions.min(20_000); // records are heavy
    banner("Table I", "recovery failures due to persist failure", settings);

    let mut cfg = SystemConfig::for_scheme(UpdateScheme::Sp);
    cfg.record_persists = true;
    let profile = spec::benchmark("milc").expect("known benchmark");
    let trace = TraceGenerator::new(profile.clone(), settings.seed).generate(settings.instructions);
    let (report, _, _) = run_with_crash(&cfg, profile.base_ipc, &trace, None);
    // The victim must be the *last* persist to its address, or a later
    // persist re-supplies the lost component.
    let victim = report.records.len() - 1;
    let checker = RecoveryChecker::new(cfg.bmt, cfg.key);
    // A finite crash point after everything drained: the lost
    // component (stamped `Cycle::MAX`) is the only thing missing.
    let crash_at = report.total_cycles + Cycle::new(1_000_000);

    println!(
        "{:<12} {:>6} {:>6} {:>6}   paper outcome",
        "lost", "BMT", "MAC", "P"
    );
    let expected_text = [
        (TupleComponent::Root, "BMT failure"),
        (TupleComponent::Mac, "MAC failure"),
        (
            TupleComponent::Counter,
            "wrong plaintext, BMT & MAC failure",
        ),
        (TupleComponent::Ciphertext, "wrong plaintext, MAC failure"),
    ];
    for (component, paper) in expected_text {
        let faulty = with_component_lost(&report.records, victim, component);
        let image = PersistImage::at_time(&faulty, crash_at, cfg.bmt, cfg.key);
        let expected = ObserverExpectation::at_time(&report.records, crash_at);
        let rec = checker.check(&image, &expected);
        println!(
            "{:<12} {:>6} {:>6} {:>6}   {}",
            format!("{component:?}"),
            if rec.bmt_failure { "FAIL" } else { "ok" },
            if rec.mac_failures.is_empty() { "ok" } else { "FAIL" },
            if rec.plaintext_failures.is_empty() { "ok" } else { "WRONG" },
            paper
        );
    }
    println!();
    println!("(control: nothing lost)");
    let image = PersistImage::at_time(&report.records, crash_at, cfg.bmt, cfg.key);
    let expected = ObserverExpectation::at_time(&report.records, crash_at);
    let rec = checker.check(&image, &expected);
    println!("all components persisted -> {rec}");
}
