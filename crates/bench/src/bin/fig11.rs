//! Figure 11: persists per kilo-instruction (PPKI) under epoch
//! persistency as the epoch size sweeps {4, 8, 16, 32, 64, 128, 256}
//! stores. Paper reference shape: PPKI falls monotonically with epoch
//! size — larger epochs let more stores coalesce onto the same cache
//! block before the flush.

use plp_bench::{banner, run, RunSettings, SeriesTable};
use plp_core::{SystemConfig, UpdateScheme};
use plp_trace::spec;

const EPOCHS: [usize; 7] = [4, 8, 16, 32, 64, 128, 256];

fn main() {
    let settings = RunSettings::from_args();
    banner("Fig. 11", "PPKI vs epoch size (coalescing scheme)", settings);

    let mut table = SeriesTable::new(
        "bench",
        &["ep4", "ep8", "ep16", "ep32", "ep64", "ep128", "ep256"],
    );
    for profile in spec::all_benchmarks() {
        let mut row = Vec::new();
        for epoch in EPOCHS {
            let mut cfg = SystemConfig::for_scheme(UpdateScheme::Coalescing);
            cfg.epoch_size = epoch;
            let r = run(&profile, &cfg, settings);
            row.push(r.persist_ppki());
        }
        table.push(&profile.name, row);
    }
    print!("{}", table.precision(2).render());
    println!();
    println!("paper reference: monotonically decreasing; Table V's o3 column is ep32");
}
