//! Figure 11: persists per kilo-instruction (PPKI) under epoch
//! persistency as the epoch size sweeps {4, 8, 16, 32, 64, 128, 256}
//! stores. Paper reference shape: PPKI falls monotonically with epoch
//! size — larger epochs let more stores coalesce onto the same cache
//! block before the flush.

fn main() {
    plp_bench::run_spec(plp_bench::specs::find("fig11").expect("registered spec"));
}
