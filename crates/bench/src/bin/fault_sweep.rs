//! Fault-injection robustness matrix: for every update scheme, sweep
//! recovery across all enumerated crash points while injecting torn
//! line writes, single-bit flips and dropped acknowledged persists,
//! then report the verdict counts per fault class.
//!
//! Expected shape of the result:
//!
//! * the four correct engines (`sp`, `pipeline`, `o3`, `coalescing`)
//!   must show **zero** stale-rollback / undetected outcomes under the
//!   pure-crash baseline and the torn-write and bit-flip classes — the
//!   detect-or-recover contract;
//! * the dropped-persist class legitimately produces stale rollbacks
//!   on every scheme (a broken ADR promise resurrects an older but
//!   authentic tuple, which no integrity machinery can flag) — it is
//!   reported separately and excluded from the PASS gate;
//! * the `unordered` strawman fails its baseline (Tables I/II torn
//!   tuples) but must still never yield silent garbage: the MAC + BMT
//!   always catch non-authentic states.
//!
//! Usage: `fault_sweep [instructions] [seed]` (defaults 60000, 7).
//! The whole matrix is a pure function of the two arguments.

use plp_core::fault::{ClassTally, FaultClass, FaultConfig, FaultSweep};
use plp_core::{run_with_crash, SystemConfig, UpdateScheme};
use plp_trace::{spec, TraceGenerator};

fn tally_row(scheme: UpdateScheme, points: usize, label: &str, t: &ClassTally) -> String {
    format!(
        "{:<12} {:>6}  {:<9} {:>8} {:>7} {:>9} {:>9} {:>7} {:>7} {:>11}",
        scheme.name(),
        points,
        label,
        t.attempts,
        t.clean,
        t.repaired,
        t.detected_loss,
        t.stale_rollback,
        t.undetected_corruption,
        t.mean_recovery_cycles(),
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let instructions: u64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(60_000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let profile = spec::benchmark("gcc").expect("gcc profile exists");

    println!("== Fault sweep: crash-point enumeration x fault injection ==");
    println!(
        "workload gcc, {instructions} instructions, seed {seed}; \
         faults and crash points derive deterministically from the seed"
    );
    println!();
    println!(
        "{:<12} {:>6}  {:<9} {:>8} {:>7} {:>9} {:>9} {:>7} {:>7} {:>11}",
        "scheme",
        "points",
        "class",
        "attempts",
        "clean",
        "repaired",
        "det-loss",
        "stale",
        "undet",
        "avg-cycles"
    );

    let mut all_pass = true;
    let correct = UpdateScheme::correct();
    let mut schemes: Vec<UpdateScheme> = correct.to_vec();
    schemes.push(UpdateScheme::Unordered);
    for scheme in schemes {
        let mut cfg = SystemConfig::for_scheme(scheme);
        cfg.record_persists = true;
        let trace = TraceGenerator::new(profile.clone(), seed).generate(instructions);
        let (report, _, _) = run_with_crash(&cfg, profile.base_ipc, &trace, None);

        let sweep = FaultSweep::new(&cfg, FaultConfig::all_classes(seed));
        let result = sweep.run(scheme, &report.records);
        assert!(
            result.crash_points >= 100,
            "{scheme}: only {} crash points enumerated; raise [instructions]",
            result.crash_points
        );

        println!(
            "{}",
            tally_row(scheme, result.crash_points, "baseline", &result.baseline)
        );
        for (class, tally) in &result.classes {
            println!(
                "{}",
                tally_row(scheme, result.crash_points, class.name(), tally)
            );
        }

        let silent_garbage: u64 = result.baseline.undetected_corruption
            + result
                .classes
                .iter()
                .map(|(_, t)| t.undetected_corruption)
                .sum::<u64>();
        if correct.contains(&scheme) {
            let ok = result.detect_or_recover_holds();
            all_pass &= ok;
            println!(
                "  -> {}: detect-or-recover {}",
                scheme.name(),
                if ok { "PASS" } else { "FAIL" }
            );
            if !ok {
                for ex in &result.examples {
                    println!(
                        "     example: crash at {:?}, {:?} -> {}",
                        ex.crash_at, ex.spec, ex.verdict
                    );
                }
            }
        } else {
            let baseline_failures = result.baseline.attempts - result.baseline.clean;
            println!(
                "  -> {}: negative control; {} baseline failure(s) across {} points, \
                 silent garbage {} (must be 0: {})",
                scheme.name(),
                baseline_failures,
                result.crash_points,
                silent_garbage,
                if silent_garbage == 0 { "PASS" } else { "FAIL" }
            );
            all_pass &= silent_garbage == 0;
        }
        if let Some(drop) = result.class(FaultClass::DroppedPersist) {
            if drop.stale_rollback > 0 {
                println!(
                    "     note: {} dropped-ack rollback(s) — undetectable by design, \
                     the ADR flush domain is the trust anchor",
                    drop.stale_rollback
                );
            }
        }
        println!();
    }

    println!(
        "overall: {}",
        if all_pass { "PASS" } else { "FAIL" }
    );
    if !all_pass {
        std::process::exit(1);
    }
}
