//! `plp-sim` — the general-purpose simulation CLI.
//!
//! Run any benchmark (or a custom workload) under any scheme with any
//! knob, and print the full report:
//!
//! ```text
//! plp_sim --bench gcc --scheme coalescing --instructions 1000000 \
//!         --epoch 64 --wpq 32 --mac 40 --seed 7 --scope nonstack
//! plp_sim --list
//! ```

use plp_core::{ProtectionScope, SystemConfig, UpdateScheme};
use plp_events::Cycle;
use plp_trace::spec;

struct Args {
    bench: String,
    scheme: UpdateScheme,
    instructions: u64,
    seed: u64,
    config: SystemConfig,
    baseline: bool,
    save_trace: Option<String>,
    load_trace: Option<String>,
}

fn parse_scheme(s: &str) -> Option<UpdateScheme> {
    UpdateScheme::all_extended()
        .into_iter()
        .find(|u| u.name().eq_ignore_ascii_case(s))
}

fn usage() -> ! {
    eprintln!(
        "usage: plp_sim [--bench NAME] [--scheme NAME] [--instructions N] [--seed N]\n\
        \x20              [--epoch N] [--wpq N] [--ett N] [--mac CYCLES] [--llc MB]\n\
        \x20              [--mdc KB] [--scope nonstack|full] [--ideal-mdc] [--no-baseline]\n\
        \x20              [--sanitizer off|check]\n\
        \x20      plp_sim --list\n\
        \n\
        schemes: {}",
        UpdateScheme::all_extended()
            .map(|s| s.name())
            .join(", ")
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        bench: "gcc".to_string(),
        scheme: UpdateScheme::Coalescing,
        instructions: 400_000,
        seed: 7,
        config: SystemConfig::default(),
        baseline: true,
        save_trace: None,
        load_trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = |it: &mut dyn Iterator<Item = String>| -> String {
            it.next().unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--list" => {
                println!("benchmarks:");
                for p in spec::all_benchmarks() {
                    println!(
                        "  {:<11} ipc={:<5} store_ppki={:<7} nonstack={:<6}",
                        p.name, p.base_ipc, p.store_ppki_full, p.store_ppki_nonstack
                    );
                }
                println!();
                println!("schemes: {}", UpdateScheme::all_extended().map(|s| s.name()).join(", "));
                std::process::exit(0);
            }
            "--bench" => args.bench = value(&mut it),
            "--scheme" => {
                args.scheme =
                    parse_scheme(&value(&mut it)).unwrap_or_else(|| usage())
            }
            "--instructions" => {
                args.instructions = value(&mut it).parse().unwrap_or_else(|_| usage())
            }
            "--seed" => args.seed = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--epoch" => {
                args.config.epoch_size = value(&mut it).parse().unwrap_or_else(|_| usage())
            }
            "--wpq" => {
                args.config.wpq_entries = value(&mut it).parse().unwrap_or_else(|_| usage())
            }
            "--ett" => {
                args.config.ett_entries = value(&mut it).parse().unwrap_or_else(|_| usage())
            }
            "--mac" => {
                args.config.mac_latency =
                    Cycle::new(value(&mut it).parse().unwrap_or_else(|_| usage()))
            }
            "--llc" => {
                let mb: usize = value(&mut it).parse().unwrap_or_else(|_| usage());
                args.config.llc_bytes = mb << 20;
            }
            "--mdc" => {
                let kb: usize = value(&mut it).parse().unwrap_or_else(|_| usage());
                args.config.metadata_cache_bytes = kb << 10;
            }
            "--scope" => {
                args.config.scope = match value(&mut it).as_str() {
                    "nonstack" => ProtectionScope::NonStack,
                    "full" => ProtectionScope::Full,
                    _ => usage(),
                }
            }
            "--sanitizer" => {
                args.config.sanitizer = plp_core::sanitizer::SanitizerMode::parse(
                    &value(&mut it),
                )
                .unwrap_or_else(|| usage())
            }
            "--ideal-mdc" => args.config.ideal_metadata = true,
            "--no-baseline" => args.baseline = false,
            "--save-trace" => args.save_trace = Some(value(&mut it)),
            "--load-trace" => args.load_trace = Some(value(&mut it)),
            _ => usage(),
        }
    }
    args.config.scheme = args.scheme;
    args
}

fn main() {
    let args = parse_args();
    let Some(profile) = spec::benchmark(&args.bench) else {
        eprintln!(
            "unknown benchmark '{}' — try --list for the 15 available profiles",
            args.bench
        );
        std::process::exit(2);
    };

    // Build (or load) the trace, optionally persist it, then run.
    let trace = match &args.load_trace {
        Some(path) => plp_trace::codec::load_trace(path).unwrap_or_else(|e| {
            eprintln!("failed to load trace {path}: {e}");
            std::process::exit(1);
        }),
        None => plp_trace::TraceGenerator::new(profile.clone(), args.seed)
            .generate(args.instructions),
    };
    if let Some(path) = &args.save_trace {
        if let Err(e) = plp_trace::codec::save_trace(&trace, path) {
            eprintln!("failed to save trace {path}: {e}");
            std::process::exit(1);
        }
        println!("trace saved to {path} ({} events)", trace.op_count());
    }
    let setup = plp_core::SimSetup::with_base_ipc(args.config.clone(), profile.base_ipc)
        .unwrap_or_else(|e| {
            eprintln!("invalid configuration: {e}");
            std::process::exit(2);
        });
    let report = setup.run(&trace);
    println!(
        "{} / {} / {} instructions (seed {})",
        profile.name,
        args.scheme.name(),
        args.instructions,
        args.seed
    );
    println!("  {report}");
    println!(
        "  writebacks={} wpq_stall={} wpq_peak={} bmt_fetches={} saved_updates={}",
        report.writebacks,
        report.wpq_stall_cycles,
        report.wpq_peak,
        report.engine.bmt_fetches,
        report.coalesced_saved_updates
    );
    println!(
        "  caches: L1 {:.1}% L2 {:.1}% L3 {:.1}% | ctr {:.1}% mac {:.1}% bmt {:.1}%",
        report.data_caches[0].hit_ratio() * 100.0,
        report.data_caches[1].hit_ratio() * 100.0,
        report.data_caches[2].hit_ratio() * 100.0,
        report.metadata.counter.hit_ratio() * 100.0,
        report.metadata.mac.hit_ratio() * 100.0,
        report.metadata.bmt.hit_ratio() * 100.0,
    );
    println!(
        "  nvm: reads={} writes={} (+{} combined) row-hit={:.1}%",
        report.nvm.reads,
        report.nvm.writes,
        report.nvm.writes_combined,
        if report.nvm.row_hits + report.nvm.row_misses > 0 {
            report.nvm.row_hits as f64 * 100.0
                / (report.nvm.row_hits + report.nvm.row_misses) as f64
        } else {
            0.0
        }
    );

    if args.baseline && args.scheme != UpdateScheme::SecureWb {
        let mut base_cfg = args.config.clone();
        base_cfg.scheme = UpdateScheme::SecureWb;
        let base = plp_core::SimSetup::with_base_ipc(base_cfg, profile.base_ipc)
            .expect("baseline config derives from a validated one")
            .run(&trace);
        println!(
            "  vs secure_WB: {:.3}x ({:+.1}% overhead)",
            report.normalized_to(&base),
            (report.normalized_to(&base) - 1.0) * 100.0
        );
    }
}
