//! Figure 12: `coalescing` execution time normalized to `secure_WB`
//! as the epoch size sweeps {4..256}. Paper reference shape: overhead
//! generally falls with epoch size, but very large epochs can *hurt*
//! some benchmarks (gamess, milc, zeusmp at 256) because small epochs
//! smooth the write traffic and reduce memory-controller queueing.

use plp_bench::{banner, run, RunSettings, SeriesTable};
use plp_core::{SystemConfig, UpdateScheme};
use plp_trace::spec;

const EPOCHS: [usize; 7] = [4, 8, 16, 32, 64, 128, 256];

fn main() {
    let settings = RunSettings::from_args();
    banner(
        "Fig. 12",
        "coalescing execution time vs epoch size, normalized to secure_WB",
        settings,
    );

    let mut table = SeriesTable::new(
        "bench",
        &["ep4", "ep8", "ep16", "ep32", "ep64", "ep128", "ep256"],
    );
    for profile in spec::all_benchmarks() {
        let base = run(
            &profile,
            &SystemConfig::for_scheme(UpdateScheme::SecureWb),
            settings,
        );
        let mut row = Vec::new();
        for epoch in EPOCHS {
            let mut cfg = SystemConfig::for_scheme(UpdateScheme::Coalescing);
            cfg.epoch_size = epoch;
            row.push(run(&profile, &cfg, settings).normalized_to(&base));
        }
        table.push(&profile.name, row);
    }
    print!("{}", table.render());
    println!();
    println!("paper reference: falling with epoch size, with a late-sweep upturn on some benchmarks");
}
