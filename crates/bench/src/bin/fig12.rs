//! Figure 12: `coalescing` execution time normalized to `secure_WB`
//! as the epoch size sweeps {4..256}. Paper reference shape: overhead
//! generally falls with epoch size, but very large epochs can *hurt*
//! some benchmarks (gamess, milc, zeusmp at 256) because small epochs
//! smooth the write traffic and reduce memory-controller queueing.

fn main() {
    plp_bench::run_spec(plp_bench::specs::find("fig12").expect("registered spec"));
}
