//! Figure 10: epoch-persistency schemes (`o3`, `coalescing`)
//! normalized to `secure_WB`, default epoch size 32. Paper reference
//! gmeans: o3 ≈ 1.207, coalescing ≈ 1.202 (2.42× / 2.35× for full
//! memory); some benchmarks match or beat secure_WB because evictions
//! in the baseline update the BMT sequentially.

fn main() {
    plp_bench::run_spec(plp_bench::specs::find("fig10").expect("registered spec"));
}
