//! Figure 10: epoch-persistency schemes (`o3`, `coalescing`)
//! normalized to `secure_WB`, default epoch size 32. Paper reference
//! gmeans: o3 ≈ 1.207, coalescing ≈ 1.202 (2.42× / 2.35× for full
//! memory); some benchmarks match or beat secure_WB because evictions
//! in the baseline update the BMT sequentially.

use plp_bench::{banner, run, RunSettings, SeriesTable, FIG10_SCHEMES};
use plp_core::{ProtectionScope, SystemConfig};
use plp_trace::spec;

fn table_for(scope: ProtectionScope, settings: RunSettings) -> SeriesTable {
    let mut table = SeriesTable::new("bench", &["o3", "coalescing"]);
    for profile in spec::all_benchmarks() {
        let mut base_cfg = SystemConfig::for_scheme(plp_core::UpdateScheme::SecureWb);
        base_cfg.scope = scope;
        let base = run(&profile, &base_cfg, settings);
        let mut row = Vec::new();
        for scheme in FIG10_SCHEMES {
            let mut cfg = SystemConfig::for_scheme(scheme);
            cfg.scope = scope;
            row.push(run(&profile, &cfg, settings).normalized_to(&base));
        }
        table.push(&profile.name, row);
    }
    table
}

fn main() {
    let settings = RunSettings::from_args();
    banner(
        "Fig. 10",
        "EP-scheme execution time normalized to secure_WB",
        settings,
    );
    println!("-- default scope (non-stack persists)");
    print!("{}", table_for(ProtectionScope::NonStack, settings).render());
    println!();
    println!("-- full-memory scope");
    print!("{}", table_for(ProtectionScope::Full, settings).render());
    println!();
    println!("paper reference gmeans: o3 1.207 (2.42 full), coalescing 1.202 (2.35 full)");
}
