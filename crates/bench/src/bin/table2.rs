//! Table II: recovery failures due to memory-tuple ordering
//! violations.
//!
//! Two ordered persists α1 → α2; one tuple component's persists are
//! swapped in time and the system crashes between them. Expected
//! outcomes (the paper's Table II):
//!
//! | violated | outcome |
//! |---|---|
//! | γ1 → γ2 | plaintext P1 not recoverable |
//! | M1 → M2 | MAC failure |
//! | R1 → R2 | BMT failure for C1 |

fn main() {
    plp_bench::run_spec(plp_bench::specs::find("table2").expect("registered spec"));
}
