//! Table II: recovery failures due to memory-tuple ordering
//! violations.
//!
//! Two ordered persists α1 → α2; one tuple component's persists are
//! swapped in time and the system crashes between them. Expected
//! outcomes (the paper's Table II):
//!
//! | violated | outcome |
//! |---|---|
//! | γ1 → γ2 | plaintext P1 not recoverable |
//! | M1 → M2 | MAC failure |
//! | R1 → R2 | BMT failure for C1 |

use plp_bench::{banner, RunSettings};
use plp_core::{
    run_with_crash, with_component_reordered, ObserverExpectation, PersistImage, RecoveryChecker,
    SystemConfig, TupleComponent, UpdateScheme,
};
use plp_events::Cycle;
use plp_trace::{spec, TraceGenerator};

fn main() {
    let mut settings = RunSettings::from_args();
    settings.instructions = settings.instructions.min(20_000);
    banner(
        "Table II",
        "recovery failures due to ordering violations",
        settings,
    );

    let mut cfg = SystemConfig::for_scheme(UpdateScheme::Sp);
    cfg.record_persists = true;
    let profile = spec::benchmark("milc").expect("known benchmark");
    let trace = TraceGenerator::new(profile.clone(), settings.seed).generate(settings.instructions);
    let (report, _, _) = run_with_crash(&cfg, profile.base_ipc, &trace, None);
    let checker = RecoveryChecker::new(cfg.bmt, cfg.key);

    // Pick two mid-run persists to *different* pages so the component
    // swap is meaningful, and crash between their completions.
    let first = (report.records.len() / 2..report.records.len() - 1)
        .find(|&i| report.records[i].addr.page() != report.records[i + 1].addr.page())
        .expect("adjacent different-page persists");
    let second = first + 1;
    let t1 = report.records[first].completed_at();
    let t2 = report.records[second].completed_at();
    let crash_at = Cycle::new((t1.get() + t2.get()) / 2);

    println!(
        "α1 = {} ({}), α2 = {} ({}), crash between their persists",
        report.records[first].id,
        report.records[first].addr,
        report.records[second].id,
        report.records[second].addr
    );
    println!();
    println!(
        "{:<12} {:>6} {:>6} {:>6}   paper outcome",
        "violated", "BMT", "MAC", "P"
    );
    let rows = [
        (TupleComponent::Counter, "plaintext P1 not recoverable"),
        (TupleComponent::Mac, "MAC failure"),
        (TupleComponent::Root, "BMT failure for C1"),
    ];
    for (component, paper) in rows {
        let faulty = with_component_reordered(&report.records, first, second, component);
        let image = PersistImage::at_time(&faulty, crash_at, cfg.bmt, cfg.key);
        let expected = ObserverExpectation::at_time(&report.records, crash_at);
        let rec = checker.check(&image, &expected);
        println!(
            "{:<12} {:>6} {:>6} {:>6}   {}",
            format!("{component:?}"),
            if rec.bmt_failure { "FAIL" } else { "ok" },
            if rec.mac_failures.is_empty() { "ok" } else { "FAIL" },
            if rec.plaintext_failures.is_empty() { "ok" } else { "WRONG" },
            paper
        );
    }
}
