//! Every paper artefact in one invocation.
//!
//! Collects the run requests of every registered [`plp_bench::specs`]
//! experiment, executes the union as one deduplicated matrix — in
//! parallel and through the on-disk run cache by default — and prints
//! each artefact exactly as its standalone binary would, separated by
//! blank lines. Execution statistics go to stderr so stdout is
//! byte-identical across serial, parallel and warm-cache runs.
//!
//! Usage: `all [instructions] [seed] [--serial] [--threads N]
//! [--no-cache]`

use plp_bench::{all_specs, matrix, MatrixOptions, RunSettings};

fn usage() -> ! {
    eprintln!("usage: all [instructions] [seed] [--serial] [--threads N] [--no-cache]");
    std::process::exit(2);
}

fn main() {
    let mut settings = RunSettings::default();
    let mut positionals = 0;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut cached = true;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--serial" => threads = 1,
            "--no-cache" => cached = false,
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => usage(),
            },
            _ => match (arg.parse::<u64>(), positionals) {
                (Ok(n), 0) => {
                    settings.instructions = n;
                    positionals = 1;
                }
                (Ok(n), 1) => {
                    settings.seed = n;
                    positionals = 2;
                }
                _ => usage(),
            },
        }
    }

    let opts = MatrixOptions {
        threads,
        cache_dir: cached.then(matrix::default_cache_dir),
    };

    let mut requests = Vec::new();
    for spec in all_specs() {
        requests.extend(spec.runs_needed(settings));
    }
    let (results, stats) = matrix::execute(&requests, &opts);

    let mut first = true;
    for spec in all_specs() {
        if !first {
            println!();
        }
        first = false;
        print!("{}", spec.output(&results, settings));
    }
    eprintln!(
        "[plp-bench] all ({} threads{}): {}",
        opts.threads,
        if cached { ", cached" } else { ", uncached" },
        stats.summary()
    );

    // Sanitizer verdict — stderr only, so stdout stays byte-identical
    // with sanitizer-off runs. Any invariant violation fails the
    // invocation: the numbers above would be measurements of a broken
    // ordering model.
    let (mut checked, mut violations) = (0u64, 0u64);
    let mut offenders = Vec::new();
    for (key, report) in results.iter() {
        let s = &report.sanitizer;
        checked += s.checked_persists + s.checked_node_updates + s.checked_epochs;
        violations += s.total_violations();
        if s.total_violations() > 0 {
            offenders.push((key.as_str(), s));
        }
    }
    eprintln!(
        "[plp-bench] sanitizer: {} events checked across {} runs, {} violations",
        checked,
        results.len(),
        violations
    );
    if violations > 0 {
        offenders.sort_unstable_by_key(|(key, _)| *key);
        for (key, s) in offenders {
            eprintln!(
                "[plp-bench]   {} violations ({} detailed, {} dropped) in {key}",
                s.total_violations(),
                s.violations.len(),
                s.dropped_violations
            );
            for v in s.violations.iter().take(5) {
                eprintln!("[plp-bench]     {v}");
            }
        }
        std::process::exit(1);
    }
}
