//! Every paper artefact in one invocation.
//!
//! Collects the run requests of every registered [`plp_bench::specs`]
//! experiment, executes the union as one deduplicated matrix — in
//! parallel, through the on-disk run cache, and under the run
//! supervisor by default — and prints each artefact exactly as its
//! standalone binary would, separated by blank lines. Execution
//! statistics and the supervisor's degradation report go to stderr so
//! stdout is byte-identical across serial, parallel, warm-cache and
//! fully-recovered chaos runs.
//!
//! Chaos mode (`--chaos SEED`) injects a deterministic fault plan —
//! worker panics, artificial stalls, cache truncation, bit-flips and
//! IO errors — that the supervisor must absorb; `--chaos-hard N`
//! additionally makes N runs unrecoverable to demonstrate graceful
//! degradation (partial output, exit code 3).
//!
//! Sharded mode (`--streams N --shards M`) fans every run out over the
//! sharded coordinator: N client streams over M per-shard engines under
//! one root-of-roots. `--streams 1 --shards 1` is the unsharded
//! simulator — stdout is byte-identical to omitting the flags, and the
//! run-cache keys are unchanged.
//!
//! Isolated mode (`--isolate`) re-execs this binary as
//! `all … --run-one <key>` once per simulated run: the child applies
//! rlimits to itself, runs exactly one request, and returns its report
//! over stdout as one checksummed frame (see `plp_bench::isolate`).
//! Stdout stays byte-identical to in-process execution; watchdog trips
//! become real SIGKILLs and an over-limit child degrades to an
//! `oom-killed` verdict instead of a hung sweep.
//!
//! Exit codes: 0 clean (all faults, if any, recovered), 1 sanitizer
//! violation, 2 usage, 3 degraded (some runs produced no report).
//!
//! Usage: `all [instructions] [seed] [--serial] [--threads N]
//! [--no-cache] [--chaos SEED] [--chaos-hard N] [--watchdog-ms N]
//! [--streams N] [--shards M] [--isolate]`

use std::io::Write;
use std::time::Duration;

use plp_bench::{
    all_specs, isolate, matrix, ChaosOptions, IsolateOptions, MatrixOptions, ResourceLimits,
    RunSettings, SupervisorOptions,
};
use plp_core::ShardTopology;

fn usage() -> ! {
    eprintln!(
        "usage: all [instructions] [seed] [--serial] [--threads N] [--no-cache] \
         [--chaos SEED] [--chaos-hard N] [--watchdog-ms N] [--streams N] [--shards M] \
         [--isolate]"
    );
    std::process::exit(2);
}

/// Child mode (`--run-one <key>`): apply rlimits, fire any injected
/// chaos, reconstruct the request whose identity is `key` from the
/// spec registry, run it, and write the report frame to stdout.
fn run_one_main(args: &[String]) -> ! {
    let mut key: Option<String> = None;
    let mut settings = RunSettings::default();
    let mut positionals = 0;
    let (mut streams, mut shards) = (1u32, 1u32);
    let mut limits = ResourceLimits {
        address_space_bytes: None,
        cpu_secs: None,
    };
    let mut chaos_panic = false;
    let mut chaos_oom = false;
    let mut stall_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--run-one" => key = it.next().cloned(),
            "--streams" => streams = it.next().and_then(|v| v.parse().ok()).unwrap_or(1),
            "--shards" => shards = it.next().and_then(|v| v.parse().ok()).unwrap_or(1),
            "--limit-as" => limits.address_space_bytes = it.next().and_then(|v| v.parse().ok()),
            "--limit-cpu" => limits.cpu_secs = it.next().and_then(|v| v.parse().ok()),
            "--chaos-panic" => chaos_panic = true,
            "--chaos-oom" => chaos_oom = true,
            "--chaos-stall-ms" => stall_ms = it.next().and_then(|v| v.parse().ok()),
            other => {
                if let Ok(n) = other.parse::<u64>() {
                    match positionals {
                        0 => settings.instructions = n,
                        1 => settings.seed = n,
                        _ => {}
                    }
                    positionals += 1;
                }
            }
        }
    }
    let Some(key) = key else {
        eprintln!("run-one: missing key");
        std::process::exit(2);
    };
    if let Err(e) = isolate::apply_self_limits(&limits) {
        eprintln!("run-one: {e} (continuing unlimited)");
    }
    if let Some(ms) = stall_ms {
        std::thread::sleep(Duration::from_millis(ms));
    }
    if chaos_panic {
        panic!("chaos: injected worker panic");
    }
    if chaos_oom {
        isolate::allocation_bomb();
    }
    let topology = ShardTopology::new(streams, shards);
    let request = all_specs()
        .iter()
        .flat_map(|spec| spec.runs_needed(settings))
        .map(|req| req.with_topology(topology))
        .find(|req| req.key() == key);
    let Some(request) = request else {
        eprintln!("run-one: no spec produces key {key}");
        std::process::exit(isolate::EXIT_UNKNOWN_KEY);
    };
    match matrix::run_single(&request) {
        Ok(report) => {
            let frame = isolate::encode_report(&key, &report);
            if std::io::stdout().write_all(&frame).is_err() {
                std::process::exit(isolate::EXIT_RUN_FAILED);
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("run-one: {e}");
            std::process::exit(isolate::EXIT_RUN_FAILED);
        }
    }
}

/// Parses a chaos seed, accepting both decimal and `0x`-prefixed hex
/// (the verify gate uses `--chaos 0xC0FFEE`).
fn parse_seed(arg: &str) -> Option<u64> {
    if let Some(hex) = arg.strip_prefix("0x").or_else(|| arg.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        arg.parse().ok()
    }
}

fn main() {
    let raw_args: Vec<String> = std::env::args().skip(1).collect();
    if raw_args.iter().any(|a| a == "--run-one") {
        run_one_main(&raw_args);
    }

    let mut settings = RunSettings::default();
    let mut positionals = 0;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut cached = true;
    let mut chaos_seed: Option<u64> = None;
    let mut chaos_hard = 0usize;
    let mut watchdog_ms: Option<u64> = None;
    let mut streams = 1u32;
    let mut shards = 1u32;
    let mut isolated = false;
    let mut test_oom_key: Option<String> = None;
    let mut test_stall_key: Option<String> = None;

    let mut args = raw_args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--serial" => threads = 1,
            "--no-cache" => cached = false,
            "--isolate" => isolated = true,
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => usage(),
            },
            "--chaos" => match args.next().as_deref().and_then(parse_seed) {
                Some(seed) => chaos_seed = Some(seed),
                None => usage(),
            },
            "--chaos-hard" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => chaos_hard = n,
                None => usage(),
            },
            "--watchdog-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => watchdog_ms = Some(n),
                _ => usage(),
            },
            "--streams" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => streams = n,
                _ => usage(),
            },
            "--shards" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => shards = n,
                _ => usage(),
            },
            // Test-only hooks: force one isolated child (matched by key
            // substring) to OOM under its rlimit or stall past the
            // watchdog. Hidden from usage; no effect without --isolate.
            "--test-oom-key" => test_oom_key = args.next(),
            "--test-stall-key" => test_stall_key = args.next(),
            _ => match (arg.parse::<u64>(), positionals) {
                (Ok(n), 0) => {
                    settings.instructions = n;
                    positionals = 1;
                }
                (Ok(n), 1) => {
                    settings.seed = n;
                    positionals = 2;
                }
                _ => usage(),
            },
        }
    }

    let opts = MatrixOptions {
        threads,
        cache_dir: cached.then(matrix::default_cache_dir),
    };
    let mut sup = SupervisorOptions::new(opts.clone());
    if let Some(seed) = chaos_seed {
        sup.chaos = Some(ChaosOptions {
            seed,
            unrecoverable: chaos_hard,
            ..ChaosOptions::new(seed)
        });
        // Chaos stalls are sized to trip the watchdog; a snappy
        // timeout keeps the sweep's wall-clock reasonable.
        sup.watchdog = Duration::from_millis(1500);
    }
    if let Some(ms) = watchdog_ms {
        sup.watchdog = Duration::from_millis(ms);
    }
    if isolated {
        let exe = match std::env::current_exe() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("[plp-bench] --isolate: cannot locate own binary: {e}");
                std::process::exit(2);
            }
        };
        let mut base_args = vec![settings.instructions.to_string(), settings.seed.to_string()];
        if streams != 1 || shards != 1 {
            base_args.extend([
                "--streams".into(),
                streams.to_string(),
                "--shards".into(),
                shards.to_string(),
            ]);
        }
        let mut iso = IsolateOptions::new(exe, base_args);
        iso.oom_key = test_oom_key;
        iso.stall_key = test_stall_key;
        sup.isolation = Some(iso);
    }

    let topology = ShardTopology::new(streams, shards);
    let mut requests = Vec::new();
    for spec in all_specs() {
        requests.extend(
            spec.runs_needed(settings)
                .into_iter()
                .map(|req| req.with_topology(topology)),
        );
    }
    let (mut results, stats, degradation) = matrix::execute_supervised(&requests, &sup);

    // Sanitizer tallies come off the executed result set before any
    // re-keying, so each run is counted exactly once.
    let (mut checked, mut violations) = (0u64, 0u64);
    let mut offenders = Vec::new();
    let executed_runs = results.len();
    for (key, report) in results.iter() {
        let s = &report.sanitizer;
        checked += s.checked_persists + s.checked_node_updates + s.checked_epochs;
        violations += s.total_violations();
        if s.total_violations() > 0 {
            offenders.push((key.clone(), s.clone()));
        }
    }

    // Specs render by unit-topology keys; under a sharded run, alias
    // each executed (sharded) report back under its unit key.
    if !topology.is_unit() {
        for spec in all_specs() {
            for req in spec.runs_needed(settings) {
                let sharded = req.clone().with_topology(topology);
                if results.contains(&sharded) {
                    let report = results.get(&sharded).clone();
                    results.insert(&req, report);
                }
            }
        }
    }

    // Render only the artefacts whose every run survived; a spec with
    // missing runs is skipped (noted on stderr below) instead of
    // panicking mid-print. Surviving artefacts keep their exact bytes
    // and blank-line separation.
    let mut first = true;
    let mut skipped = Vec::new();
    for spec in all_specs() {
        let complete = spec
            .runs_needed(settings)
            .iter()
            .all(|req| results.contains(req));
        if !complete {
            skipped.push(spec.id);
            continue;
        }
        if !first {
            println!();
        }
        first = false;
        print!("{}", spec.output(&results, settings));
    }
    eprintln!(
        "[plp-bench] all ({} threads{}): {}",
        opts.threads,
        if cached { ", cached" } else { ", uncached" },
        stats.summary()
    );
    if !degradation.is_event_free() {
        eprint!("{}", degradation.render());
    }
    for id in &skipped {
        eprintln!("[plp-bench] artefact {id} skipped: runs missing after degraded execution");
    }

    // Sanitizer verdict — stderr only, so stdout stays byte-identical
    // with sanitizer-off runs. Any invariant violation fails the
    // invocation: the numbers above would be measurements of a broken
    // ordering model.
    eprintln!(
        "[plp-bench] sanitizer: {} events checked across {} runs, {} violations",
        checked, executed_runs, violations
    );
    if violations > 0 {
        offenders.sort_unstable_by_key(|(key, _)| key.clone());
        for (key, s) in offenders {
            eprintln!(
                "[plp-bench]   {} violations ({} detailed, {} dropped) in {key}",
                s.total_violations(),
                s.violations.len(),
                s.dropped_violations
            );
            for v in s.violations.iter().take(5) {
                eprintln!("[plp-bench]     {v}");
            }
        }
        std::process::exit(1);
    }
    if !degradation.fully_recovered() {
        std::process::exit(3);
    }
}
