//! Every paper artefact in one invocation.
//!
//! Collects the run requests of every registered [`plp_bench::specs`]
//! experiment, executes the union as one deduplicated matrix — in
//! parallel and through the on-disk run cache by default — and prints
//! each artefact exactly as its standalone binary would, separated by
//! blank lines. Execution statistics go to stderr so stdout is
//! byte-identical across serial, parallel and warm-cache runs.
//!
//! Usage: `all [instructions] [seed] [--serial] [--threads N]
//! [--no-cache]`

use plp_bench::{all_specs, matrix, MatrixOptions, RunSettings};

fn usage() -> ! {
    eprintln!("usage: all [instructions] [seed] [--serial] [--threads N] [--no-cache]");
    std::process::exit(2);
}

fn main() {
    let mut settings = RunSettings::default();
    let mut positionals = 0;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut cached = true;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--serial" => threads = 1,
            "--no-cache" => cached = false,
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => usage(),
            },
            _ => match (arg.parse::<u64>(), positionals) {
                (Ok(n), 0) => {
                    settings.instructions = n;
                    positionals = 1;
                }
                (Ok(n), 1) => {
                    settings.seed = n;
                    positionals = 2;
                }
                _ => usage(),
            },
        }
    }

    let opts = MatrixOptions {
        threads,
        cache_dir: cached.then(matrix::default_cache_dir),
    };

    let mut requests = Vec::new();
    for spec in all_specs() {
        requests.extend(spec.runs_needed(settings));
    }
    let (results, stats) = matrix::execute(&requests, &opts);

    let mut first = true;
    for spec in all_specs() {
        if !first {
            println!();
        }
        first = false;
        print!("{}", spec.output(&results, settings));
    }
    eprintln!(
        "[plp-bench] all ({} threads{}): {}",
        opts.threads,
        if cached { ", cached" } else { ", uncached" },
        stats.summary()
    );
}
