//! §VII LLC-capacity sweep: `coalescing` with a {1, 2, 4} MB
//! last-level cache, normalized to `secure_WB` at the *same* LLC size.
//! Paper reference: overhead varies modestly, 20.2% at 4MB to 22.8%
//! at 1MB.

fn main() {
    plp_bench::run_spec(plp_bench::specs::find("llc_sweep").expect("registered spec"));
}
