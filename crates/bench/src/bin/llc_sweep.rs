//! §VII LLC-capacity sweep: `coalescing` with a {1, 2, 4} MB
//! last-level cache, normalized to `secure_WB` at the *same* LLC size.
//! Paper reference: overhead varies modestly, 20.2% at 4MB to 22.8%
//! at 1MB.

use plp_bench::{banner, run, RunSettings, SeriesTable};
use plp_core::{SystemConfig, UpdateScheme};
use plp_trace::spec;

fn main() {
    let settings = RunSettings::from_args();
    banner("LLC sweep", "coalescing vs LLC capacity", settings);

    let mut table = SeriesTable::new("bench", &["llc1MB", "llc2MB", "llc4MB"]);
    for profile in spec::all_benchmarks() {
        let mut row = Vec::new();
        for mb in [1usize, 2, 4] {
            let mut base_cfg = SystemConfig::for_scheme(UpdateScheme::SecureWb);
            base_cfg.llc_bytes = mb << 20;
            let base = run(&profile, &base_cfg, settings);
            let mut cfg = SystemConfig::for_scheme(UpdateScheme::Coalescing);
            cfg.llc_bytes = mb << 20;
            row.push(run(&profile, &cfg, settings).normalized_to(&base));
        }
        table.push(&profile.name, row);
    }
    print!("{}", table.render());
    println!();
    println!("paper reference: 22.8% (1MB) -> 20.2% (4MB) overhead");
}
