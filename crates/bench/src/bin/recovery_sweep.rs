//! Recovery-time axis of the scheme zoo: a runtime-vs-recovery Pareto
//! frontier, measured.
//!
//! Per durable-capable scheme and BMT height, the sweep runs a full
//! simulation with the file-backed durable sink attached, cuts the
//! image at enumerated byte fractions (every cut is a legal SIGKILL
//! instant — the same quantification the recovery-idempotence proptest
//! uses), replays each cut and times the modeled full-device recovery
//! through [`RecoveryManager::for_config`]. The worst cut per height is
//! the reported recovery latency, so the table answers "how long until
//! service resumes after the least convenient crash, as a function of
//! protected-memory size".
//!
//! The runtime axis is the same run's simulated execution time at the
//! default geometry, normalized to `secure_WB` — together the two
//! columns are the Pareto frontier the zoo schemes span: `phoenix`
//! pays the highest runtime for O(1) tree recovery, `triad_nvm` a
//! middling runtime for a truncated rebuild, the volatile-tree paper
//! schemes the lowest runtime for a full rebuild.
//!
//! Everything here is simulated, so the table is byte-deterministic:
//! the verify gate regenerates it and `cmp`s against the committed
//! `results/recovery_pareto.txt`, and `--check` compares the JSON
//! envelope against `results/BENCH_recovery_baseline.json` exactly
//! (integers) / to float-print precision (overheads).
//!
//! Usage: `recovery_sweep [instructions] [seed] [--out PATH]
//! [--check BASELINE] [--table PATH]`

use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;

use plp_core::{
    replay_image, DurableSink, FaultVerdict, ObserverExpectation, PersistRecord, RebuildStrategy,
    RecoveryManager, SimSetup, SystemConfig, UpdateScheme,
};
use plp_trace::spec;

/// BMT heights swept: 8-ary trees covering 256K, 16M and 1G leaf
/// blocks — the protected-memory-size axis.
const LEVELS: [u32; 3] = [7, 9, 11];

/// Height the runtime column is measured at (the paper default).
const RUNTIME_LEVELS: u32 = 9;

/// Image-cut fractions of the post-header bytes: the enumerated crash
/// points. 1.0 is the graceful-shutdown control; the others land the
/// kill mid-history.
const CUTS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Every scheme that can attach the durable sink, zoo included.
const SCHEMES: [UpdateScheme; 7] = [
    UpdateScheme::Unordered,
    UpdateScheme::Sp,
    UpdateScheme::Pipeline,
    UpdateScheme::O3,
    UpdateScheme::Coalescing,
    UpdateScheme::TriadNvm,
    UpdateScheme::Phoenix,
];

/// Relative tolerance when `--check`ing the printed-then-parsed
/// runtime overheads; recovery cycles must match exactly.
const FLOAT_TOLERANCE: f64 = 1e-6;

struct Options {
    instructions: u64,
    seed: u64,
    out: PathBuf,
    check: Option<PathBuf>,
    table: PathBuf,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            // Same budget as the crash-analysis tables: per-persist
            // records are memory-heavy.
            instructions: 20_000,
            seed: 7,
            out: PathBuf::from("BENCH_recovery.json"),
            check: None,
            table: PathBuf::from("results/recovery_pareto.txt"),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: recovery_sweep [instructions] [seed] [--out PATH] [--check BASELINE] \
         [--table PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut o = Options::default();
    let mut positionals = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => o.out = PathBuf::from(p),
                None => usage(),
            },
            "--check" => match args.next() {
                Some(p) => o.check = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--table" => match args.next() {
                Some(p) => o.table = PathBuf::from(p),
                None => usage(),
            },
            other => match (other.parse::<u64>(), positionals) {
                (Ok(n), 0) if n > 0 => {
                    o.instructions = n;
                    positionals = 1;
                }
                (Ok(n), 1) => {
                    o.seed = n;
                    positionals = 2;
                }
                _ => usage(),
            },
        }
    }
    o
}

/// One scheme's measured row.
struct ParetoRow {
    scheme: UpdateScheme,
    strategy: RebuildStrategy,
    /// Execution time at [`RUNTIME_LEVELS`], normalized to secure_WB.
    runtime_overhead: f64,
    /// Worst-cut modeled recovery cycles, one per [`LEVELS`] entry.
    recovery_cycles: Vec<u64>,
}

fn temp_image(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("plp-recovery-sweep-{name}-{}.img", std::process::id()))
}

/// Program-order fold of the completely-persisted prefix — the
/// observer recovery is judged against (same shape as the crash
/// harness and the idempotence proptest).
fn expectation_for(records: &[PersistRecord], complete: &BTreeSet<u64>) -> ObserverExpectation {
    let mut plaintexts = HashMap::new();
    for r in records.iter().filter(|r| complete.contains(&r.id.0)) {
        plaintexts.insert(r.addr, r.plaintext);
    }
    ObserverExpectation { plaintexts }
}

fn config_for(scheme: UpdateScheme, levels: u32) -> SystemConfig {
    let mut config = SystemConfig::for_scheme(scheme);
    config.bmt = plp_bmt::BmtGeometry::new(8, levels);
    config
}

/// Simulated execution cycles of `scheme` at `levels`, no sink.
fn runtime_cycles(scheme: UpdateScheme, levels: u32, o: &Options) -> u64 {
    let config = config_for(scheme, levels);
    let profile = spec::benchmark("gcc").expect("gcc is a registered benchmark");
    let setup = SimSetup::for_profile(config, &profile, o.seed).expect("valid sweep config");
    let trace = setup.generate_trace(o.instructions);
    setup.simulation().run(&trace).total_cycles.get()
}

/// Worst-cut recovery latency for `scheme` at `levels`: run once with
/// the sink attached, then replay + recover every enumerated cut.
/// Exits non-zero if a recovery-correct scheme ever shows silent
/// corruption or rollback — the table must not tabulate a broken
/// scheme as if it were merely slow.
fn worst_recovery_cycles(scheme: UpdateScheme, levels: u32, o: &Options) -> u64 {
    let mut config = config_for(scheme, levels);
    config.record_persists = true;
    let profile = spec::benchmark("gcc").expect("gcc is a registered benchmark");
    let setup = SimSetup::for_profile(config, &profile, o.seed).expect("valid sweep config");
    let trace = setup.generate_trace(o.instructions);
    let path = temp_image(&format!("{}-{levels}", scheme.name()));
    let mut sim = setup.simulation();
    sim.attach_durable_sink(
        DurableSink::create(&path, setup.config(), o.seed).expect("writable temp image"),
    );
    let (report, finished) = sim.run_with_state(&trace);
    assert_eq!(finished.durable_error(), None, "durable sink failed");
    let bytes = std::fs::read(&path).expect("readable image");
    let _ = std::fs::remove_file(&path);

    let manager = RecoveryManager::for_config(setup.config());
    let key = setup.config().key;
    let correct = UpdateScheme::correct().contains(&scheme);
    let mut worst = 0u64;
    for (i, cut) in CUTS.iter().enumerate() {
        // Keep the 32-byte header — the sink writes it before the run
        // starts, so no kill can halve it.
        let header = 32.min(bytes.len());
        let len = header + ((bytes.len() - header) as f64 * cut) as usize;
        let cut_path = temp_image(&format!("{}-{levels}-cut{i}", scheme.name()));
        std::fs::write(&cut_path, &bytes[..len]).expect("writable cut image");
        let replayed = replay_image(&cut_path, key).expect("replayable cut image");
        let _ = std::fs::remove_file(&cut_path);
        let expected = expectation_for(&report.records, &replayed.complete_ids);
        let outcome = manager.recover(&replayed.image, &report.records, &expected);
        if correct
            && matches!(
                outcome.verdict(),
                FaultVerdict::UndetectedCorruption | FaultVerdict::StaleRollback
            )
        {
            eprintln!(
                "recovery_sweep: {} at {levels} levels, cut {cut}: {}",
                scheme.name(),
                outcome
            );
            std::process::exit(1);
        }
        worst = worst.max(outcome.recovery_cycles);
    }
    worst
}

fn render_table(o: &Options, rows: &[ParetoRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "-- runtime-vs-recovery Pareto frontier (gcc, {} instructions, seed {})\n",
        o.instructions, o.seed
    ));
    out.push_str(&format!(
        "-- runtime: execution time at {RUNTIME_LEVELS} levels normalized to secure_WB\n"
    ));
    out.push_str(
        "-- recovery: worst-cut modeled cycles to resume service, per BMT height\n",
    );
    out.push_str(&format!(
        "{:<11} {:>8} {:>9}",
        "scheme", "strategy", "runtime"
    ));
    for levels in LEVELS {
        out.push_str(&format!(" {:>11}", format!("rec@{levels}lv")));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!(
            "{:<11} {:>8} {:>8.3}x",
            row.scheme.name(),
            row.strategy.name(),
            row.runtime_overhead
        ));
        for cycles in &row.recovery_cycles {
            out.push_str(&format!(" {cycles:>11}"));
        }
        out.push('\n');
    }
    let frontier: Vec<&str> = rows
        .iter()
        .filter(|r| {
            // Pareto-optimal at the largest height: no other scheme is
            // at least as good on both axes and better on one.
            !rows.iter().any(|other| {
                let (ro, rr) = (other.runtime_overhead, *other.recovery_cycles.last().unwrap());
                let (so, sr) = (r.runtime_overhead, *r.recovery_cycles.last().unwrap());
                ro <= so && rr <= sr && (ro < so || rr < sr)
            })
        })
        .map(|r| r.scheme.name())
        .collect();
    out.push_str(&format!(
        "-- Pareto-optimal at {} levels: {}\n",
        LEVELS[LEVELS.len() - 1],
        frontier.join(", ")
    ));
    out
}

fn render_json(o: &Options, rows: &[ParetoRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"format\": 1,\n");
    out.push_str(&format!("  \"instructions\": {},\n", o.instructions));
    out.push_str(&format!("  \"seed\": {},\n", o.seed));
    out.push_str("  \"runtime_overhead\": {\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {:.6}{}\n",
            row.scheme.name(),
            row.runtime_overhead,
            comma
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"recovery_cycles\": {\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            row.scheme.name(),
            row.recovery_cycles.last().unwrap(),
            comma
        ));
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Pulls `"key": number` out of a flat JSON document (the only shape
/// this tool reads or writes — no dependency needed).
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = doc.find(&needle)? + needle.len();
    let rest = doc[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares fresh values against the committed baseline. The sweep is
/// fully simulated, so this is an equality check, not a tolerance
/// band: recovery cycles must match exactly, overheads to print
/// precision. A scheme missing from the baseline is tolerated — the
/// next refresh will pin it.
fn check_baseline(baseline: &str, rows: &[ParetoRow]) -> Vec<String> {
    let mut failures = Vec::new();
    let section = |name: &str| baseline.find(name).map(|pos| &baseline[pos..]);
    let Some(overheads) = section("\"runtime_overhead\"") else {
        return vec!["  baseline has no \"runtime_overhead\" section".to_string()];
    };
    let Some(cycles) = section("\"recovery_cycles\"") else {
        return vec!["  baseline has no \"recovery_cycles\" section".to_string()];
    };
    for row in rows {
        if let Some(base) = json_number(overheads, row.scheme.name()) {
            let fresh = row.runtime_overhead;
            if (fresh - base).abs() > FLOAT_TOLERANCE * base.max(1.0) {
                failures.push(format!(
                    "  {}: runtime overhead {fresh:.6} vs baseline {base:.6}",
                    row.scheme.name()
                ));
            }
        }
        if let Some(base) = json_number(cycles, row.scheme.name()) {
            let fresh = *row.recovery_cycles.last().unwrap() as f64;
            if fresh != base {
                failures.push(format!(
                    "  {}: recovery cycles {fresh} vs baseline {base}",
                    row.scheme.name()
                ));
            }
        }
    }
    failures
}

fn main() {
    let o = parse_args();

    let wb_cycles = runtime_cycles(UpdateScheme::SecureWb, RUNTIME_LEVELS, &o);
    let mut rows = Vec::new();
    for scheme in SCHEMES {
        let runtime_overhead = runtime_cycles(scheme, RUNTIME_LEVELS, &o) as f64
            / wb_cycles.max(1) as f64;
        let recovery_cycles: Vec<u64> = LEVELS
            .iter()
            .map(|&levels| worst_recovery_cycles(scheme, levels, &o))
            .collect();
        eprintln!(
            "recovery_sweep: {:<10} runtime {:>6.3}x  recovery {:?}",
            scheme.name(),
            runtime_overhead,
            recovery_cycles
        );
        rows.push(ParetoRow {
            scheme,
            strategy: RebuildStrategy::for_config(&config_for(scheme, RUNTIME_LEVELS)),
            runtime_overhead,
            recovery_cycles,
        });
    }

    let table = render_table(&o, &rows);
    print!("{table}");
    if let Some(parent) = o.table.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&o.table, &table) {
        eprintln!("recovery_sweep: cannot write {}: {e}", o.table.display());
        std::process::exit(2);
    }

    let doc = render_json(&o, &rows);
    if let Err(e) = std::fs::write(&o.out, &doc) {
        eprintln!("recovery_sweep: cannot write {}: {e}", o.out.display());
        std::process::exit(2);
    }
    eprintln!(
        "recovery_sweep: wrote {} and {}",
        o.table.display(),
        o.out.display()
    );

    if let Some(baseline_path) = &o.check {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "recovery_sweep: cannot read baseline {}: {e}",
                    baseline_path.display()
                );
                std::process::exit(2);
            }
        };
        let failures = check_baseline(&baseline, &rows);
        if !failures.is_empty() {
            eprintln!("recovery_sweep: BASELINE GATE FAILED:");
            for f in &failures {
                eprintln!("{f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "recovery_sweep: baseline gate passed against {}",
            baseline_path.display()
        );
    }
}
