//! Figure 9: strict persistency (`sp`) normalized to `secure_WB`
//! while sweeping the MAC latency {0, 20, 40, 80} cycles, plus the
//! ideal-metadata-cache configuration (`MDC`: never-miss caches,
//! zero-cycle MAC). The paper's reference shape: overhead scales
//! nearly proportionally with MAC latency, and MDC shows negligible
//! overhead — persisting the data itself is cheap; the leaf-to-root
//! MAC chain is the bottleneck.

use plp_bench::{banner, run, RunSettings, SeriesTable};
use plp_core::{SystemConfig, UpdateScheme};
use plp_events::Cycle;
use plp_trace::spec;

fn main() {
    let settings = RunSettings::from_args();
    banner("Fig. 9", "sp vs MAC latency and ideal metadata caches", settings);

    let mut table = SeriesTable::new("bench", &["mac0", "mac20", "mac40", "mac80", "MDC"]);
    for profile in spec::all_benchmarks() {
        let base = run(
            &profile,
            &SystemConfig::for_scheme(UpdateScheme::SecureWb),
            settings,
        );
        let mut row = Vec::new();
        for mac in [0u64, 20, 40, 80] {
            let mut cfg = SystemConfig::for_scheme(UpdateScheme::Sp);
            cfg.mac_latency = Cycle::new(mac);
            row.push(run(&profile, &cfg, settings).normalized_to(&base));
        }
        let mut ideal = SystemConfig::for_scheme(UpdateScheme::Sp);
        ideal.ideal_metadata = true;
        row.push(run(&profile, &ideal, settings).normalized_to(&base));
        table.push(&profile.name, row);
    }
    print!("{}", table.render());
    println!();
    println!("paper reference: overhead ~ proportional to MAC latency; MDC ~ 1.0");
}
