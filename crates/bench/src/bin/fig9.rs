//! Figure 9: strict persistency (`sp`) normalized to `secure_WB`
//! while sweeping the MAC latency {0, 20, 40, 80} cycles, plus the
//! ideal-metadata-cache configuration (`MDC`: never-miss caches,
//! zero-cycle MAC). The paper's reference shape: overhead scales
//! nearly proportionally with MAC latency, and MDC shows negligible
//! overhead — persisting the data itself is cheap; the leaf-to-root
//! MAC chain is the bottleneck.

fn main() {
    plp_bench::run_spec(plp_bench::specs::find("fig9").expect("registered spec"));
}
