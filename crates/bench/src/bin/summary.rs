//! The paper's headline results in one run (§VII "Summary" plus the
//! §V-D counter-tree observation):
//!
//! * scheme overheads vs `secure_WB` (paper: sp 720%, pipeline 210%,
//!   o3 20.7%, coalescing 20.2%);
//! * pipelining speedup over sequential SP (paper: 3.4×);
//! * o3+coalescing speedup over sequential (paper: 5.99×);
//! * coalescing's BMT node-update reduction vs o3 (paper: 26.1%);
//! * best-to-worst overhead ratio (paper: 36×);
//! * SGX counter-tree persist amplification (paper §V-D: scales with
//!   tree height).

fn main() {
    plp_bench::run_spec(plp_bench::specs::find("summary").expect("registered spec"));
}
