//! The paper's headline results in one run (§VII "Summary" plus the
//! §V-D counter-tree observation):
//!
//! * scheme overheads vs `secure_WB` (paper: sp 720%, pipeline 210%,
//!   o3 20.7%, coalescing 20.2%);
//! * pipelining speedup over sequential SP (paper: 3.4×);
//! * o3+coalescing speedup over sequential (paper: 5.99×);
//! * coalescing's BMT node-update reduction vs o3 (paper: 26.1%);
//! * best-to-worst overhead ratio (paper: 36×);
//! * SGX counter-tree persist amplification (paper §V-D: scales with
//!   tree height).

use plp_bench::{banner, run_all, RunSettings};
use plp_core::{sgx, RunReport, SystemConfig, UpdateScheme};
use plp_events::stats::geometric_mean;
use plp_trace::WorkloadProfile;

fn gmean_normalized(
    runs: &[(WorkloadProfile, RunReport)],
    base: &[(WorkloadProfile, RunReport)],
) -> f64 {
    let values: Vec<f64> = runs
        .iter()
        .zip(base)
        .map(|((_, r), (_, b))| r.normalized_to(b))
        .collect();
    geometric_mean(&values).expect("positive normalized times")
}

fn main() {
    let settings = RunSettings::from_args();
    banner("Summary", "headline results across all 15 benchmarks", settings);

    let base = run_all(settings, |_| {
        SystemConfig::for_scheme(UpdateScheme::SecureWb)
    });
    let mut gmeans = Vec::new();
    for scheme in [
        UpdateScheme::Unordered,
        UpdateScheme::Sp,
        UpdateScheme::Pipeline,
        UpdateScheme::O3,
        UpdateScheme::Coalescing,
    ] {
        let runs = run_all(settings, |_| SystemConfig::for_scheme(scheme));
        let g = gmean_normalized(&runs, &base);
        gmeans.push((scheme, g, runs));
    }

    println!("normalized execution time (gmean over benchmarks):");
    let paper = [
        ("unordered", "n/a (incorrect under crash)"),
        ("sp", "~8.2x (720% overhead)"),
        ("pipeline", "~3.1x (210% overhead)"),
        ("o3", "1.207x (20.7% overhead)"),
        ("coalescing", "1.202x (20.2% overhead)"),
    ];
    for ((scheme, g, _), (_, p)) in gmeans.iter().zip(paper) {
        println!("  {:<11} {:>6.2}x   paper: {}", scheme.name(), g, p);
    }
    println!();

    let sp = gmeans.iter().find(|(s, ..)| *s == UpdateScheme::Sp).unwrap();
    let pipe = gmeans
        .iter()
        .find(|(s, ..)| *s == UpdateScheme::Pipeline)
        .unwrap();
    let o3 = gmeans.iter().find(|(s, ..)| *s == UpdateScheme::O3).unwrap();
    let co = gmeans
        .iter()
        .find(|(s, ..)| *s == UpdateScheme::Coalescing)
        .unwrap();

    println!(
        "pipelining speedup over sequential sp: {:.2}x (paper: 3.4x)",
        sp.1 / pipe.1
    );
    println!(
        "o3+coalescing speedup over sequential sp: {:.2}x (paper: 5.99x)",
        sp.1 / co.1
    );
    println!(
        "best-to-worst overhead ratio: {:.1}x (paper: 36x)",
        (sp.1 - 1.0) / (co.1 - 1.0).max(1e-9)
    );
    println!();

    // Coalescing's node-update reduction vs o3, summed over benchmarks.
    let o3_updates: u64 = o3.2.iter().map(|(_, r)| r.engine.node_updates).sum();
    let co_updates: u64 = co.2.iter().map(|(_, r)| r.engine.node_updates).sum();
    println!(
        "coalescing BMT node-update reduction vs o3: {:.1}% (paper: 26.1%)",
        (1.0 - co_updates as f64 / o3_updates as f64) * 100.0
    );
    println!();

    // §V-D: why the paper sticks to BMTs instead of SGX counter trees.
    let g = SystemConfig::default().bmt;
    println!(
        "SGX counter-tree persist amplification at the default geometry: {:.0}x\n\
         ({} NVM persists per store vs 1 for a BMT; paper §V-D)",
        sgx::sgx_write_amplification(g),
        sgx::sgx_persist_cost(g).nvm_persists
    );
}
