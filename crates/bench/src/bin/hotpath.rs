//! Hot-path microbenchmark: steady-state host cost of the persist
//! path per scheme, plus the cold/warm wall-clock of a reduced
//! experiment sweep.
//!
//! Per scheme, the benchmark generates one trace, warms the process
//! with an untimed run, then times `--reps` full simulations and
//! reports the *fastest* observed host nanoseconds per persist-path
//! invocation (ordered persists + eviction write-backs — every call
//! that walks the BMT). Host noise is strictly additive, so the
//! minimum is the stable estimator of the code's actual cost — a
//! median would gate on machine load. Each sample is additionally
//! divided by the wall-clock of a fixed pure-CPU calibration
//! workload timed around it, yielding a load-normalized *relative
//! cost*: a slow or contended machine inflates numerator and
//! denominator alike, while a code regression inflates only the
//! numerator. The sweep section executes every registered
//! experiment's requests at a reduced instruction count, cold then
//! warm, through [`plp_bench::matrix::time_sweep`].
//!
//! The result is written to `BENCH_hotpath.json` (override with
//! `--out`). With `--check <baseline.json>` the run compares its
//! per-scheme *relative costs* against the committed baseline's
//! `relative_cost` section and exits 1 on a >10% regression; raw
//! nanoseconds and wall-clock numbers are reported but never gate
//! (they track machine load, not just code).
//!
//! Host timing is intentionally nondeterministic (it measures this
//! machine); simulated results never flow through this binary.
//!
//! Usage: `hotpath [--out PATH] [--check BASELINE] [--instructions N]
//! [--seed N] [--reps N] [--sweep-instructions N] [--threads N]`

use std::path::PathBuf;
use std::time::Instant;

use plp_bench::matrix::{time_sweep, MatrixOptions, RunRequest, SweepTiming};
use plp_bench::{all_specs, RunSettings};
use plp_core::{SimSetup, SystemConfig, UpdateScheme};
use plp_trace::{spec, TraceGenerator};

/// Tolerated per-scheme slowdown before `--check` fails the run.
const REGRESSION_TOLERANCE: f64 = 1.10;

struct Options {
    out: PathBuf,
    check: Option<PathBuf>,
    instructions: u64,
    seed: u64,
    reps: usize,
    sweep_instructions: u64,
    threads: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            out: PathBuf::from("BENCH_hotpath.json"),
            check: None,
            instructions: 100_000,
            seed: 7,
            reps: 7,
            sweep_instructions: 50_000,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: hotpath [--out PATH] [--check BASELINE] [--instructions N] \
         [--seed N] [--reps N] [--sweep-instructions N] [--threads N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut o = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => o.out = PathBuf::from(p),
                None => usage(),
            },
            "--check" => match args.next() {
                Some(p) => o.check = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--instructions" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => o.instructions = n,
                _ => usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => o.seed = n,
                None => usage(),
            },
            "--reps" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => o.reps = n,
                _ => usage(),
            },
            "--sweep-instructions" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => o.sweep_instructions = n,
                _ => usage(),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => o.threads = n,
                _ => usage(),
            },
            _ => usage(),
        }
    }
    o
}

/// Iterations of the calibration workload (a fixed pure-CPU mul/add
/// chain the optimizer cannot elide).
const CAL_ITERS: u64 = 1 << 22;

/// Times the fixed calibration workload once, in nanoseconds. Pure
/// CPU with no memory traffic: machine load slows it and the
/// simulator alike, so their ratio is load-invariant.
fn calibration_ns() -> f64 {
    // lint: allow(nondeterminism) host wall-clock is the measurand
    let started = Instant::now();
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..CAL_ITERS {
        x = std::hint::black_box(x.wrapping_mul(0x0100_0000_01B3).wrapping_add(i));
    }
    std::hint::black_box(x);
    started.elapsed().as_nanos() as f64
}

/// One scheme's steady-state persist-path cost: `(ns_per_persist,
/// relative_cost)` where the relative cost is the load-normalized
/// gate metric — host ns per persist divided by the host ns of the
/// calibration workload timed around the same sample. One untimed
/// warmup run, then the minimum over `reps` timed runs of each.
fn scheme_persist_cost(scheme: UpdateScheme, o: &Options) -> (f64, f64) {
    let profile = spec::benchmark("milc").expect("milc is a registered benchmark");
    let trace = TraceGenerator::new(profile.clone(), o.seed).generate(o.instructions);
    let mut cfg = SystemConfig::for_scheme(scheme);
    cfg.ideal_metadata = true;
    let setup = SimSetup::for_profile(cfg, &profile, o.seed).expect("paper-default config");

    let _ = setup.simulation().run(&trace); // warmup
    let (mut best_ns, mut best_rel) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..o.reps {
        let cal_before = calibration_ns();
        let sim = setup.simulation();
        // lint: allow(nondeterminism) host wall-clock is the measurand
        let started = Instant::now();
        let report = sim.run(&trace);
        let elapsed = started.elapsed();
        let cal = cal_before.min(calibration_ns());
        let calls = (report.persists + report.writebacks).max(1);
        let ns = elapsed.as_nanos() as f64 / calls as f64;
        best_ns = best_ns.min(ns);
        best_rel = best_rel.min(ns / cal);
    }
    (best_ns, best_rel)
}

/// The reduced all-experiments sweep, executed cold then warm through
/// a fresh throwaway cache directory.
fn sweep_timing(o: &Options) -> SweepTiming {
    let settings = RunSettings {
        instructions: o.sweep_instructions,
        seed: o.seed,
    };
    let mut requests: Vec<RunRequest> = Vec::new();
    for spec in all_specs() {
        requests.extend(spec.runs_needed(settings));
    }
    let cache_dir = std::env::temp_dir().join(format!(
        "plp-hotpath-cache-{}-{}",
        std::process::id(),
        o.seed
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let opts = MatrixOptions {
        threads: o.threads,
        cache_dir: Some(cache_dir.clone()),
    };
    let timing = time_sweep(&requests, &opts);
    let _ = std::fs::remove_dir_all(&cache_dir);
    timing
}

fn render_json(o: &Options, timings: &[(UpdateScheme, f64, f64)], sweep: &SweepTiming) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"format\": 1,\n");
    out.push_str(&format!("  \"instructions\": {},\n", o.instructions));
    out.push_str(&format!("  \"seed\": {},\n", o.seed));
    out.push_str(&format!("  \"reps\": {},\n", o.reps));
    out.push_str(&format!(
        "  \"sweep_instructions\": {},\n",
        o.sweep_instructions
    ));
    out.push_str("  \"relative_cost\": {\n");
    for (i, (scheme, _, rel)) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        out.push_str(&format!("    \"{}\": {:.6}{}\n", scheme.name(), rel, comma));
    }
    out.push_str("  },\n");
    out.push_str("  \"ns_per_persist\": {\n");
    for (i, (scheme, ns, _)) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        out.push_str(&format!("    \"{}\": {:.1}{}\n", scheme.name(), ns, comma));
    }
    out.push_str("  },\n");
    out.push_str(&format!("  \"sweep_unique_runs\": {},\n", sweep.unique_runs));
    out.push_str(&format!(
        "  \"cold_sweep_ms\": {:.1},\n",
        sweep.cold.as_secs_f64() * 1e3
    ));
    out.push_str(&format!(
        "  \"warm_sweep_ms\": {:.1}\n",
        sweep.warm.as_secs_f64() * 1e3
    ));
    out.push_str("}\n");
    out
}

/// Pulls `"key": number` out of a flat JSON document (the only shape
/// this tool reads or writes — no dependency needed).
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = doc.find(&needle)? + needle.len();
    let rest = doc[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares fresh per-scheme relative costs against the committed
/// baseline's `relative_cost` section; returns the regression report
/// lines (empty = gate passes). Only the load-normalized metric
/// gates — raw nanoseconds track the machine, not the code.
fn check_regressions(baseline: &str, timings: &[(UpdateScheme, f64, f64)]) -> Vec<String> {
    let rel_section = match baseline.find("\"relative_cost\"") {
        Some(pos) => &baseline[pos..],
        None => return vec!["  baseline has no \"relative_cost\" section".to_string()],
    };
    let mut failures = Vec::new();
    for (scheme, _, rel) in timings {
        let Some(base) = json_number(rel_section, scheme.name()) else {
            // A scheme missing from the baseline is not a regression —
            // the next baseline refresh will pin it.
            continue;
        };
        if *rel > base * REGRESSION_TOLERANCE {
            failures.push(format!(
                "  {}: relative cost {:.4} vs baseline {:.4} (+{:.0}%)",
                scheme.name(),
                rel,
                base,
                (rel / base - 1.0) * 100.0
            ));
        }
    }
    failures
}

fn main() {
    let o = parse_args();

    let mut timings = Vec::new();
    for scheme in UpdateScheme::all_extended() {
        let (ns, rel) = scheme_persist_cost(scheme, &o);
        eprintln!(
            "hotpath: {:<10} {:>10.1} ns/persist  (relative cost {:.4})",
            scheme.name(),
            ns,
            rel
        );
        timings.push((scheme, ns, rel));
    }

    let sweep = sweep_timing(&o);
    eprintln!(
        "hotpath: sweep ({} unique runs) cold {:.2}s, warm {:.2}s",
        sweep.unique_runs,
        sweep.cold.as_secs_f64(),
        sweep.warm.as_secs_f64()
    );

    let doc = render_json(&o, &timings, &sweep);
    if let Err(e) = std::fs::write(&o.out, &doc) {
        eprintln!("hotpath: cannot write {}: {e}", o.out.display());
        std::process::exit(2);
    }
    eprintln!("hotpath: wrote {}", o.out.display());

    if let Some(baseline_path) = &o.check {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("hotpath: cannot read baseline {}: {e}", baseline_path.display());
                std::process::exit(2);
            }
        };
        let failures = check_regressions(&baseline, &timings);
        if !failures.is_empty() {
            eprintln!(
                "hotpath: PERF GATE FAILED (>{:.0}% over baseline):",
                (REGRESSION_TOLERANCE - 1.0) * 100.0
            );
            for f in &failures {
                eprintln!("{f}");
            }
            std::process::exit(1);
        }
        eprintln!("hotpath: perf gate passed against {}", baseline_path.display());
    }
}
