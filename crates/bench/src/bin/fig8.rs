//! Figure 8: execution time of strict-persistency schemes
//! (`unordered`, `sp`, `pipeline`) normalized to `secure_WB`, for the
//! default non-stack protection scope and (second table) full-memory
//! protection. The paper's reference geometric means: sp ≈ 7.2×
//! (30.7× full), pipeline ≈ 2.1× (6.9× full); ordering
//! unordered < pipeline ≪ sp.

fn main() {
    plp_bench::run_spec(plp_bench::specs::find("fig8").expect("registered spec"));
}
