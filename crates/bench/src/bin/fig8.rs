//! Figure 8: execution time of strict-persistency schemes
//! (`unordered`, `sp`, `pipeline`) normalized to `secure_WB`, for the
//! default non-stack protection scope and (second table) full-memory
//! protection. The paper's reference geometric means: sp ≈ 7.2×
//! (30.7× full), pipeline ≈ 2.1× (6.9× full); ordering
//! unordered < pipeline ≪ sp.

use plp_bench::{banner, run, RunSettings, SeriesTable, FIG8_SCHEMES};
use plp_core::{ProtectionScope, SystemConfig};
use plp_trace::spec;

fn table_for(scope: ProtectionScope, settings: RunSettings) -> SeriesTable {
    let mut table = SeriesTable::new("bench", &["unordered", "sp", "pipeline"]);
    for profile in spec::all_benchmarks() {
        let mut base_cfg = SystemConfig::for_scheme(plp_core::UpdateScheme::SecureWb);
        base_cfg.scope = scope;
        let base = run(&profile, &base_cfg, settings);
        let mut row = Vec::new();
        for scheme in FIG8_SCHEMES {
            let mut cfg = SystemConfig::for_scheme(scheme);
            cfg.scope = scope;
            let r = run(&profile, &cfg, settings);
            row.push(r.normalized_to(&base));
        }
        table.push(&profile.name, row);
    }
    table
}

fn main() {
    let settings = RunSettings::from_args();
    banner(
        "Fig. 8",
        "SP-scheme execution time normalized to secure_WB",
        settings,
    );
    println!("-- default scope (non-stack persists)");
    print!("{}", table_for(ProtectionScope::NonStack, settings).render());
    println!();
    println!("-- full-memory scope (all stores persist)");
    print!("{}", table_for(ProtectionScope::Full, settings).render());
    println!();
    println!("paper reference gmeans: sp 7.2 (30.7 full), pipeline 2.1 (6.9 full)");
}
