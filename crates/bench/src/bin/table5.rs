//! Table V: persists per kilo-instruction, measured vs the paper.
//!
//! Four columns per benchmark: all stores (`sp_full`), `secure_WB`
//! write-backs, non-stack stores (`sp`) and epoch stores at epoch 32
//! (`o3`). Measured values come from actual runs; the paper's
//! published numbers print alongside. Paper averages:
//! 119.51 / 1.61 / 32.60 / 12.41.

use plp_bench::{banner, run, RunSettings};
use plp_core::{ProtectionScope, SystemConfig, UpdateScheme};
use plp_trace::spec;

fn main() {
    let settings = RunSettings::from_args();
    banner("Table V", "persists per kilo-instruction (PPKI)", settings);

    println!(
        "{:<11} {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "bench", "sp_full", "(paper)", "wb_full", "(paper)", "sp", "(paper)", "o3", "(paper)"
    );
    let (mut s1, mut s2, mut s3, mut s4) = (0.0, 0.0, 0.0, 0.0);
    let n = spec::all_benchmarks().len() as f64;
    for profile in spec::all_benchmarks() {
        let (p_full, p_wb, p_sp, p_o3) =
            spec::table5_reference(&profile.name).expect("known benchmark");

        let mut full_cfg = SystemConfig::for_scheme(UpdateScheme::Sp);
        full_cfg.scope = ProtectionScope::Full;
        let full = run(&profile, &full_cfg, settings).persist_ppki();

        let mut wb_cfg = SystemConfig::for_scheme(UpdateScheme::SecureWb);
        wb_cfg.scope = ProtectionScope::Full;
        let wb_report = run(&profile, &wb_cfg, settings);
        let wb = wb_report.writebacks as f64 * 1000.0 / wb_report.instructions as f64;

        let sp = run(
            &profile,
            &SystemConfig::for_scheme(UpdateScheme::Sp),
            settings,
        )
        .persist_ppki();

        let o3 = run(
            &profile,
            &SystemConfig::for_scheme(UpdateScheme::O3),
            settings,
        )
        .persist_ppki();

        println!(
            "{:<11} {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2}",
            profile.name, full, p_full, wb, p_wb, sp, p_sp, o3, p_o3
        );
        s1 += full;
        s2 += wb;
        s3 += sp;
        s4 += o3;
    }
    println!(
        "{:<11} {:>9.2} {:>9} | {:>9.2} {:>9} | {:>9.2} {:>9} | {:>9.2} {:>9}",
        "average",
        s1 / n,
        "119.51",
        s2 / n,
        "1.61",
        s3 / n,
        "32.60",
        s4 / n,
        "12.41"
    );
}
