//! Table V: persists per kilo-instruction, measured vs the paper.
//!
//! Four columns per benchmark: all stores (`sp_full`), `secure_WB`
//! write-backs, non-stack stores (`sp`) and epoch stores at epoch 32
//! (`o3`). Measured values come from actual runs; the paper's
//! published numbers print alongside. Paper averages:
//! 119.51 / 1.61 / 32.60 / 12.41.

fn main() {
    plp_bench::run_spec(plp_bench::specs::find("table5").expect("registered spec"));
}
