//! SIGKILL-and-recover robustness matrix over a *real* file-backed
//! device image (see `DESIGN.md` §11 and `crates/bench/src/crash.rs`).
//!
//! Two modes in one binary:
//!
//! * **parent** (default): GC stale images and quarantined cache
//!   entries, then for every `(scheme, failpoint, hit)` cell re-execute
//!   itself in child mode, SIGKILL the child when its failpoint parks,
//!   replay the orphaned image and judge recovery against a golden
//!   in-process run. Exits 0 only if the gate passes: the four correct
//!   engines recover Clean/Repaired with matching counter state from
//!   every kill, the `unordered` strawman demonstrably loses data at
//!   least once (but never silently), and nothing times out.
//! * **child** (`--child ...`): one simulation with a durable sink
//!   attached and (optionally) a park-mode failpoint armed. Prints the
//!   park marker and waits for the kill, or a deterministic COMPLETED
//!   line — byte-identical whether or not `--image` is given, which
//!   `scripts/verify.sh` checks with `cmp`.
//!
//! A third mode, `--double-kill`, runs the nested-crash matrix: kill
//! the run, re-exec the image into durable recovery, SIGKILL the
//! recovery at each recovery failpoint, and require a third process
//! to finish with verdict Clean and field-exact counters (DetectedLoss
//! for the strawman). Recovery children are `--child --recover ...`.
//!
//! Usage:
//!   crash_harness [instructions] [seed] [--points p1,p2,..] [--hits h1,h2,..]
//!   crash_harness [instructions] [seed] --double-kill [--points ..]
//!   crash_harness --child --scheme S --benchmark B --instructions N \
//!                 --seed K [--image PATH] [--failpoint F --hit H] [--recover]

use std::time::Duration;

use plp_bench::crash::{
    render, render_double_kill, run_double_kill, run_harness, ChildSpec, HarnessOptions,
};
use plp_core::Failpoint;

fn child_main(args: &[String]) -> ! {
    let run = ChildSpec::from_args(args).and_then(|spec| {
        if spec.recover {
            plp_bench::crash::run_recover_child(&spec)
        } else {
            plp_bench::crash::run_child(&spec)
        }
    });
    match run {
        Ok(line) => {
            println!("{line}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("crash-harness child: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_points(list: &str) -> Result<Vec<Failpoint>, String> {
    list.split(',')
        .map(|name| Failpoint::parse(name.trim()).ok_or_else(|| format!("unknown failpoint {name}")))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--child") {
        child_main(&args);
    }

    let mut opts = HarnessOptions::default();
    let mut double_kill = false;
    let mut positional = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--double-kill" => double_kill = true,
            "--points" => {
                let list = it.next().expect("--points needs a comma-separated list");
                opts.points = parse_points(list).unwrap_or_else(|e| panic!("{e}"));
            }
            "--hits" => {
                let list = it.next().expect("--hits needs a comma-separated list");
                opts.hits = Some(
                    list.split(',')
                        .map(|h| h.trim().parse().expect("hit indices are integers"))
                        .collect(),
                );
            }
            "--watchdog-secs" => {
                let secs: u64 = it
                    .next()
                    .expect("--watchdog-secs needs a value")
                    .parse()
                    .expect("watchdog is an integer number of seconds");
                opts.watchdog = Duration::from_secs(secs);
            }
            other => {
                match positional {
                    0 => opts.instructions = other.parse().expect("instructions is an integer"),
                    1 => opts.seed = other.parse().expect("seed is an integer"),
                    _ => panic!("unexpected argument {other}"),
                }
                positional += 1;
            }
        }
    }

    let exe = std::env::current_exe().expect("current_exe resolves");
    if double_kill {
        println!("== Crash harness: nested-crash (double-kill) recovery matrix ==");
        println!(
            "workload {}, {} instructions, seed {}; each cell kills a run, \
             kills its recovery at a recovery failpoint, then requires a \
             third process to recover completely",
            opts.benchmark, opts.instructions, opts.seed
        );
        println!();
        match run_double_kill(&opts, &exe) {
            Ok(report) => {
                print!("{}", render_double_kill(&report));
                println!();
                if report.pass {
                    println!("crash harness: PASS");
                    return;
                }
                println!("crash harness: FAIL");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("crash harness: {e}");
                std::process::exit(1);
            }
        }
    }

    println!("== Crash harness: real-process SIGKILL x file-backed recovery ==");
    println!(
        "workload {}, {} instructions, seed {}; each cell forks a child, \
         kills it at a named failpoint, and replays the surviving image",
        opts.benchmark, opts.instructions, opts.seed
    );
    println!();

    match run_harness(&opts, &exe) {
        Ok(report) => {
            print!("{}", render(&report));
            println!();
            if report.pass {
                println!("crash harness: PASS");
            } else {
                println!("crash harness: FAIL");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("crash harness: {e}");
            std::process::exit(1);
        }
    }
}
