//! Design-choice ablations (DESIGN.md D1–D5): isolate what each
//! mechanism and each structural parameter buys, on one representative
//! benchmark, normalized to `secure_WB`.

use plp_bench::{banner, run, RunSettings};
use plp_core::{RunReport, SystemConfig, UpdateScheme};
use plp_events::Cycle;
use plp_trace::{spec, WorkloadProfile};

fn norm(profile: &WorkloadProfile, cfg: &SystemConfig, settings: RunSettings) -> (f64, RunReport) {
    let base = run(
        profile,
        &SystemConfig::for_scheme(UpdateScheme::SecureWb),
        settings,
    );
    let r = run(profile, cfg, settings);
    (r.normalized_to(&base), r)
}

fn main() {
    let settings = RunSettings::from_args();
    banner("Ablations", "design-choice isolation on gcc", settings);
    let profile = spec::benchmark("gcc").expect("known benchmark");

    // D1 — what Invariant 2 (root ordering) costs under SP.
    let (sp, _) = norm(&profile, &SystemConfig::for_scheme(UpdateScheme::Sp), settings);
    let (un, _) = norm(
        &profile,
        &SystemConfig::for_scheme(UpdateScheme::Unordered),
        settings,
    );
    println!("D1 root-ordering enforcement (sp vs unordered):");
    println!("   sp {sp:.2}x vs unordered {un:.2}x -> correctness costs {:.2}x", sp / un);
    println!();

    // D2 — in-order pipelining vs intra-epoch OOO.
    let (pipe, _) = norm(
        &profile,
        &SystemConfig::for_scheme(UpdateScheme::Pipeline),
        settings,
    );
    let (o3, o3r) = norm(&profile, &SystemConfig::for_scheme(UpdateScheme::O3), settings);
    println!("D2 in-order pipeline vs OOO epochs:");
    println!("   pipeline {pipe:.2}x vs o3 {o3:.2}x -> relaxing intra-epoch order buys {:.2}x", pipe / o3);
    println!();

    // D3 — coalescing: same runtime class, fewer node updates.
    let (co, cor) = norm(
        &profile,
        &SystemConfig::for_scheme(UpdateScheme::Coalescing),
        settings,
    );
    println!("D3 LCA coalescing on top of o3:");
    println!(
        "   runtime {co:.2}x (o3 {o3:.2}x); node updates {} -> {} (-{:.1}%)",
        o3r.engine.node_updates,
        cor.engine.node_updates,
        cor.node_update_reduction_vs(&o3r) * 100.0
    );
    println!();

    // D4 — ETT depth: how many concurrent epochs matter.
    println!("D4 ETT entries (concurrent epochs), coalescing scheme:");
    for ett in [1usize, 2, 4, 8] {
        let mut cfg = SystemConfig::for_scheme(UpdateScheme::Coalescing);
        cfg.ett_entries = ett;
        let (n, _) = norm(&profile, &cfg, settings);
        println!("   ett={ett}: {n:.3}x");
    }
    println!();

    // D5 — tree height: deeper trees lengthen every walk, but the
    // pipelined engine's throughput is height-independent.
    println!("D5 BMT height (memory size), sp vs pipeline:");
    for levels in [7u32, 8, 9, 10, 11] {
        let mut sp_cfg = SystemConfig::for_scheme(UpdateScheme::Sp);
        sp_cfg.bmt = plp_bmt::BmtGeometry::new(8, levels);
        let (sp_n, _) = norm(&profile, &sp_cfg, settings);
        let mut pipe_cfg = SystemConfig::for_scheme(UpdateScheme::Pipeline);
        pipe_cfg.bmt = plp_bmt::BmtGeometry::new(8, levels);
        let (pipe_n, _) = norm(&profile, &pipe_cfg, settings);
        println!(
            "   {levels} levels: sp {sp_n:5.2}x   pipeline {pipe_n:5.2}x   (ratio {:.2})",
            sp_n / pipe_n
        );
    }
    println!();
    println!(
        "paper §IV-A2: 'with larger memories, the degree of PLP increases and\n\
         pipelined BMT updates becomes even more effective versus non-pipelined'"
    );

    // Bonus — MAC latency interacts with everything (Fig. 9 logic).
    println!();
    println!("MAC-latency scaling, sp scheme:");
    for mac in [0u64, 20, 40, 80] {
        let mut cfg = SystemConfig::for_scheme(UpdateScheme::Sp);
        cfg.mac_latency = Cycle::new(mac);
        let (n, _) = norm(&profile, &cfg, settings);
        println!("   mac={mac:>2}: {n:.2}x");
    }
}
