//! Design-choice ablations (DESIGN.md D1–D5): isolate what each
//! mechanism and each structural parameter buys, on one representative
//! benchmark, normalized to `secure_WB`.

fn main() {
    plp_bench::run_spec(plp_bench::specs::find("ablation").expect("registered spec"));
}
