//! §VII WPQ-size sweep: `coalescing` execution time normalized to
//! `secure_WB` with WPQ = {4, 8, 16, 32, 64} entries. Paper
//! reference: sizes below 32 add overhead (~12% at 4 entries); sizes
//! above 32 add nothing — which is why 32 is the default.

use plp_bench::{banner, run, RunSettings, SeriesTable};
use plp_core::{SystemConfig, UpdateScheme};
use plp_trace::spec;

fn main() {
    let settings = RunSettings::from_args();
    banner("WPQ sweep", "coalescing vs WPQ entries", settings);

    let mut table = SeriesTable::new("bench", &["wpq4", "wpq8", "wpq16", "wpq32", "wpq64"]);
    for profile in spec::all_benchmarks() {
        let base = run(
            &profile,
            &SystemConfig::for_scheme(UpdateScheme::SecureWb),
            settings,
        );
        let mut row = Vec::new();
        for wpq in [4usize, 8, 16, 32, 64] {
            let mut cfg = SystemConfig::for_scheme(UpdateScheme::Coalescing);
            cfg.wpq_entries = wpq;
            row.push(run(&profile, &cfg, settings).normalized_to(&base));
        }
        table.push(&profile.name, row);
    }
    print!("{}", table.render());
    println!();
    println!("paper reference: ~12% penalty at 4 entries vs 32; flat at >= 32");
}
