//! §VII WPQ-size sweep: `coalescing` execution time normalized to
//! `secure_WB` with WPQ = {4, 8, 16, 32, 64} entries. Paper
//! reference: sizes below 32 add overhead (~12% at 4 entries); sizes
//! above 32 add nothing — which is why 32 is the default.

fn main() {
    plp_bench::run_spec(plp_bench::specs::find("wpq_sweep").expect("registered spec"));
}
