//! The run supervisor: panic isolation, watchdog timeouts, seeded
//! retry/backoff and graceful degradation for the experiment matrix.
//!
//! PR 1 made the *simulated* system crash-recoverable; this module
//! applies the same discipline to the harness that measures it. Every
//! run attempt executes on a dedicated thread under
//! [`std::panic::catch_unwind`] with a watchdog timeout; failures are
//! retried with the shared [`plp_core::retry`] policy (jitter seeded by
//! the run key, so schedules replay exactly); runs that exhaust their
//! budget degrade to a structured [`RunVerdict`] in a
//! [`DegradationReport`] instead of aborting the whole matrix. Output
//! discipline: supervision never touches stdout — surviving runs render
//! byte-identically to a clean run, and everything about failures goes
//! to stderr via [`DegradationReport::render`].
//!
//! One sharp edge is documented rather than hidden: a timed-out attempt
//! thread is *abandoned*, not killed (Rust has no thread cancellation).
//! An artificially stalled attempt therefore finishes in the
//! background and may bump the cache-hit counter after stats are
//! collected; reports and stdout are unaffected because result slots
//! are written once by the retry driver only. Process isolation
//! (`crate::isolate`, [`SupervisorOptions::isolation`]) removes the
//! edge entirely: each attempt re-execs the harness binary under
//! rlimits, so a watchdog trip is a real SIGKILL and nothing is ever
//! abandoned.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Once;
use std::time::Duration;

use plp_core::retry::{RetryPolicy, RetryToken};
use plp_core::{ConfigError, RunReport};

use crate::chaos::ChaosOptions;
use crate::matrix::MatrixOptions;

/// Why a run request could not produce a report — the typed form of
/// what used to be worker panics in `matrix::run_request`.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The request names a benchmark the trace registry does not know.
    UnknownBenchmark(String),
    /// The request's system configuration failed validation.
    InvalidConfig(ConfigError),
    /// The OS refused to spawn the attempt thread.
    SpawnFailed(String),
    /// An isolated child process died in a way the supervisor cannot
    /// classify: an unexpected exit code or fatal signal outside the
    /// `--run-one` protocol.
    ChildFailed(String),
}

impl RunError {
    /// Whether retrying could possibly help. Spec bugs (unknown
    /// benchmark, invalid configuration) are deterministic and fail
    /// every attempt identically, so the supervisor rejects them
    /// immediately instead of burning the retry budget.
    pub fn is_retryable(&self) -> bool {
        matches!(self, RunError::SpawnFailed(_) | RunError::ChildFailed(_))
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::UnknownBenchmark(b) => write!(f, "unknown benchmark '{b}' in run request"),
            RunError::InvalidConfig(e) => write!(f, "invalid configuration in run request: {e}"),
            RunError::SpawnFailed(e) => write!(f, "could not spawn attempt thread: {e}"),
            RunError::ChildFailed(e) => write!(f, "isolated child failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// How the supervised matrix executes: the base matrix options plus
/// the supervision envelope.
#[derive(Debug, Clone)]
pub struct SupervisorOptions {
    /// Threads and cache directory.
    pub matrix: MatrixOptions,
    /// Wall-clock budget per attempt before the watchdog abandons it.
    pub watchdog: Duration,
    /// Retry/backoff policy (delays in nanoseconds, per the shared
    /// `plp_core::retry` convention).
    pub retry: RetryPolicy,
    /// Seed mixed with each run key into the backoff jitter token.
    pub backoff_seed: u64,
    /// Harness-level fault injection, if enabled.
    pub chaos: Option<ChaosOptions>,
    /// Process isolation: when set, every attempt re-execs the harness
    /// binary under rlimits (`crate::isolate`) instead of running on
    /// an in-process thread. Warm-cache fast paths are unaffected.
    pub isolation: Option<crate::isolate::IsolateOptions>,
}

impl SupervisorOptions {
    /// Default supervision around `matrix`: a generous two-minute
    /// watchdog (the heaviest paper run takes a couple of seconds) and
    /// three retries backing off 25 ms → 100 ms → 400 ms with 25%
    /// seeded jitter.
    pub fn new(matrix: MatrixOptions) -> Self {
        SupervisorOptions {
            matrix,
            watchdog: Duration::from_secs(120),
            retry: RetryPolicy::exponential(3, 25.0e6)
                .with_multiplier(4.0)
                .with_max_delay_ns(400.0e6)
                .with_jitter(0.25),
            backoff_seed: 0x5355_5045_5256_4953, // "SUPERVIS"
            chaos: None,
            isolation: None,
        }
    }

    /// How long an injected stall sleeps: comfortably past the
    /// watchdog, so a chaos stall always trips it.
    pub fn chaos_stall(&self) -> Duration {
        self.watchdog * 2 + Duration::from_millis(50)
    }
}

/// The per-run outcome recorded in the [`DegradationReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunVerdict {
    /// First attempt, no cache trouble.
    Ok,
    /// The run succeeded first try, but only after its cache entry was
    /// quarantined and the report regenerated.
    CacheQuarantined,
    /// The run succeeded after `attempts` failed attempts.
    Retried {
        /// Failed attempts before the success.
        attempts: u32,
    },
    /// Every attempt tripped the watchdog; no report exists.
    TimedOut {
        /// Attempts made (initial try + retries).
        attempts: u32,
    },
    /// The retry budget drained with the last failure a panic; no
    /// report exists.
    Panicked {
        /// Attempts made (initial try + retries).
        attempts: u32,
    },
    /// A non-retryable typed error ([`RunError`]); no report exists.
    Rejected,
    /// The crash harness SIGKILLed the run on purpose at a named
    /// failpoint. No report exists *by design* — distinguish this
    /// from [`RunVerdict::TimedOut`], which is a watchdog losing a
    /// run it wanted to keep.
    KilledByHarness {
        /// The failpoint the kill landed on (stable kebab name).
        failpoint: &'static str,
    },
    /// The isolated child exceeded its address-space rlimit and was
    /// terminated by the allocator's abort. Terminal on the first
    /// occurrence — the same allocation would fail identically, so
    /// the retry budget is not burned; no report exists.
    OomKilled {
        /// Attempts made (always 1 more than the failing attempt's
        /// index — OOM is never retried).
        attempts: u32,
    },
    /// The isolated child exited cleanly but its result frame failed
    /// integrity verification on every attempt; no report exists.
    IpcCorrupt {
        /// Attempts made (initial try + retries).
        attempts: u32,
    },
}

impl RunVerdict {
    /// Short stable name for rendering and tests.
    pub fn name(&self) -> &'static str {
        match self {
            RunVerdict::Ok => "ok",
            RunVerdict::CacheQuarantined => "cache-quarantined",
            RunVerdict::Retried { .. } => "retried",
            RunVerdict::TimedOut { .. } => "timed-out",
            RunVerdict::Panicked { .. } => "panicked",
            RunVerdict::Rejected => "rejected",
            RunVerdict::KilledByHarness { .. } => "killed-by-harness",
            RunVerdict::OomKilled { .. } => "oom-killed",
            RunVerdict::IpcCorrupt { .. } => "ipc-corrupt",
        }
    }

    /// Whether the run produced a trustworthy report.
    pub fn recovered(&self) -> bool {
        matches!(
            self,
            RunVerdict::Ok | RunVerdict::CacheQuarantined | RunVerdict::Retried { .. }
        )
    }
}

/// Everything the supervisor observed about one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunLog {
    /// The final verdict.
    pub verdict: RunVerdict,
    /// One deterministic line per failed attempt.
    pub failures: Vec<String>,
    /// Why the run's cache entry was quarantined, if it was.
    pub quarantine: Option<String>,
    /// The terminal typed error, for [`RunVerdict::Rejected`].
    pub error: Option<RunError>,
}

impl RunLog {
    /// A clean first-attempt log.
    pub fn clean() -> Self {
        RunLog {
            verdict: RunVerdict::Ok,
            failures: Vec::new(),
            quarantine: None,
            error: None,
        }
    }

    /// Folds a cache-quarantine observation made *outside* the
    /// supervised attempt (the worker's fast-path probe) into the log,
    /// upgrading a plain `Ok` verdict to `CacheQuarantined`.
    pub fn absorb_quarantine(&mut self, reason: Option<String>) {
        if self.quarantine.is_none() {
            self.quarantine = reason;
        }
        if self.quarantine.is_some() && self.verdict == RunVerdict::Ok {
            self.verdict = RunVerdict::CacheQuarantined;
        }
    }
}

/// Per-verdict tallies of a finished matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictCounts {
    /// Clean first-attempt runs.
    pub ok: usize,
    /// Runs that regenerated a quarantined cache entry.
    pub cache_quarantined: usize,
    /// Runs that needed retries.
    pub retried: usize,
    /// Runs whose every attempt tripped the watchdog.
    pub timed_out: usize,
    /// Runs whose budget drained on panics.
    pub panicked: usize,
    /// Runs rejected with a typed, non-retryable error.
    pub rejected: usize,
    /// Runs the crash harness SIGKILLed on purpose at a failpoint.
    pub killed_by_harness: usize,
    /// Isolated children terminated for exceeding their memory rlimit.
    pub oom_killed: usize,
    /// Isolated children whose result frames never verified.
    pub ipc_corrupt: usize,
}

impl VerdictCounts {
    /// Runs that produced no report *against the supervisor's will*.
    /// Intentional harness kills are not losses: the kill site was the
    /// experiment.
    pub fn lost(&self) -> usize {
        self.timed_out + self.panicked + self.rejected + self.oom_killed + self.ipc_corrupt
    }
}

/// The structured outcome of a supervised matrix: what happened to
/// every run that was not a clean first-attempt success, plus the
/// chaos faults that were injected. Deterministic by construction —
/// entries are keyed by run key, failure lines carry no wall-clock —
/// so two runs with the same chaos seed produce equal reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationReport {
    /// Distinct runs the matrix executed.
    pub total_runs: usize,
    counts: VerdictCounts,
    /// Per-topology verdict tallies, keyed by `"streams x shards"`
    /// (run keys without a topology suffix group under `"1x1"`).
    grouped: BTreeMap<String, VerdictCounts>,
    entries: BTreeMap<String, RunLog>,
    /// Deterministic descriptions of every injected chaos fault.
    pub chaos_faults: Vec<String>,
}

/// The topology group of a run key: parses the `|streams=N|shards=M`
/// suffix that [`crate::RunRequest::key`] appends for sharded runs and
/// renders it `"NxM"`; keyless (unsharded) runs group under `"1x1"`.
fn topology_of_key(key: &str) -> String {
    if let Some(idx) = key.find("|streams=") {
        let tail = &key[idx + "|streams=".len()..];
        if let Some((streams, rest)) = tail.split_once("|shards=") {
            let shards = rest.split('|').next().unwrap_or(rest);
            return format!("{streams}x{shards}");
        }
    }
    "1x1".to_string()
}

impl DegradationReport {
    /// An empty report pre-loaded with the chaos fault enumeration.
    pub fn new(chaos_faults: Vec<String>) -> Self {
        DegradationReport {
            chaos_faults,
            ..DegradationReport::default()
        }
    }

    /// Records one run's log. Clean logs only bump counters; anything
    /// eventful keeps its full log for rendering.
    pub fn record(&mut self, key: &str, log: RunLog) {
        self.total_runs += 1;
        let group = self.grouped.entry(topology_of_key(key)).or_default();
        for counts in [&mut self.counts, group] {
            match log.verdict {
                RunVerdict::Ok => counts.ok += 1,
                RunVerdict::CacheQuarantined => counts.cache_quarantined += 1,
                RunVerdict::Retried { .. } => counts.retried += 1,
                RunVerdict::TimedOut { .. } => counts.timed_out += 1,
                RunVerdict::Panicked { .. } => counts.panicked += 1,
                RunVerdict::Rejected => counts.rejected += 1,
                RunVerdict::KilledByHarness { .. } => counts.killed_by_harness += 1,
                RunVerdict::OomKilled { .. } => counts.oom_killed += 1,
                RunVerdict::IpcCorrupt { .. } => counts.ipc_corrupt += 1,
            }
        }
        if log.verdict != RunVerdict::Ok {
            self.entries.insert(key.to_string(), log);
        }
    }

    /// Per-verdict tallies.
    pub fn counts(&self) -> VerdictCounts {
        self.counts
    }

    /// Per-topology verdict tallies, ordered by topology label. A
    /// mixed sharded/unsharded matrix (e.g. a shard sweep) splits its
    /// recoveries out per `streams x shards` group; a classic matrix
    /// has the single `"1x1"` group.
    pub fn grouped_counts(&self) -> impl Iterator<Item = (&String, &VerdictCounts)> {
        self.grouped.iter()
    }

    /// The eventful runs, keyed and ordered by run key.
    pub fn entries(&self) -> impl Iterator<Item = (&String, &RunLog)> {
        self.entries.iter()
    }

    /// Whether every run produced a report (faults, if any, were all
    /// recovered).
    pub fn fully_recovered(&self) -> bool {
        self.counts.lost() == 0
    }

    /// Whether there is anything worth printing at all.
    pub fn is_event_free(&self) -> bool {
        self.entries.is_empty() && self.chaos_faults.is_empty()
    }

    /// The stderr rendering: a summary line, the chaos fault
    /// enumeration, and one block per eventful run.
    pub fn render(&self) -> String {
        let c = self.counts;
        let mut out = format!(
            "[plp-bench] supervisor: {} runs — {} ok, {} cache-quarantined, {} retried, {} timed-out, {} panicked, {} rejected\n",
            self.total_runs, c.ok, c.cache_quarantined, c.retried, c.timed_out, c.panicked, c.rejected
        );
        if c.killed_by_harness > 0 {
            out.push_str(&format!(
                "[plp-bench] crash-harness: {} runs killed on purpose at failpoints\n",
                c.killed_by_harness
            ));
        }
        if c.oom_killed + c.ipc_corrupt > 0 {
            out.push_str(&format!(
                "[plp-bench] isolation: {} runs oom-killed, {} ipc-corrupt\n",
                c.oom_killed, c.ipc_corrupt
            ));
        }
        if self.grouped.len() > 1 {
            for (topo, g) in &self.grouped {
                out.push_str(&format!(
                    "[plp-bench]   topology {topo}: {} ok, {} recovered, {} lost\n",
                    g.ok,
                    g.cache_quarantined + g.retried + g.killed_by_harness,
                    g.lost()
                ));
            }
        }
        if !self.chaos_faults.is_empty() {
            out.push_str(&format!(
                "[plp-bench] chaos: {} faults injected\n",
                self.chaos_faults.len()
            ));
            for fault in &self.chaos_faults {
                out.push_str(&format!("[plp-bench]   chaos-fault {fault}\n"));
            }
        }
        for (key, log) in &self.entries {
            out.push_str(&format!("[plp-bench]   {} {key}\n", log.verdict.name()));
            if let Some(reason) = &log.quarantine {
                out.push_str(&format!("[plp-bench]     cache entry quarantined: {reason}\n"));
            }
            for failure in &log.failures {
                out.push_str(&format!("[plp-bench]     {failure}\n"));
            }
            if let Some(error) = &log.error {
                out.push_str(&format!("[plp-bench]     error: {error}\n"));
            }
        }
        out
    }
}

/// A successful supervised execution of one run.
#[derive(Debug)]
pub struct SupervisedRun {
    /// The run's report.
    pub report: RunReport,
    /// Whether the report came out of the on-disk cache.
    pub cache_hit: bool,
    /// Why the run's previous cache entry was quarantined, if it was.
    pub quarantined: Option<String>,
}

/// What one isolated attempt came back with.
enum AttemptOutcome {
    /// The attempt ran to completion (successfully or with a typed
    /// error).
    Finished(Box<Result<SupervisedRun, RunError>>),
    /// The attempt panicked; the payload rendered as text.
    Panicked(String),
    /// The watchdog expired; the attempt thread was abandoned.
    TimedOut,
}

thread_local! {
    /// Marks threads whose panics the quiet hook swallows.
    static SUPERVISED_THREAD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once) a panic hook that silences supervised attempt
/// threads — their panics are caught, recorded and rendered through
/// the [`DegradationReport`], so the default hook's stderr backtrace
/// would only be noise — while delegating every other thread's panic
/// to the previously installed hook.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPERVISED_THREAD.with(std::cell::Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Renders a panic payload the way the default hook would.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one attempt on a dedicated thread under `catch_unwind`,
/// bounded by the watchdog. A timed-out thread is abandoned (see the
/// module docs) — the channel send into a dropped receiver is simply
/// lost.
fn supervise_attempt<J>(job: J, watchdog: Duration) -> AttemptOutcome
where
    J: FnOnce() -> Result<SupervisedRun, RunError> + Send + 'static,
{
    let (tx, rx) = mpsc::sync_channel(1);
    let spawned = std::thread::Builder::new()
        .name("plp-run-attempt".to_string())
        .spawn(move || {
            SUPERVISED_THREAD.with(|s| s.set(true));
            let outcome = match catch_unwind(AssertUnwindSafe(job)) {
                Ok(result) => AttemptOutcome::Finished(Box::new(result)),
                Err(payload) => AttemptOutcome::Panicked(panic_message(payload.as_ref())),
            };
            let _ = tx.send(outcome);
        });
    let handle = match spawned {
        Ok(handle) => handle,
        Err(e) => {
            return AttemptOutcome::Finished(Box::new(Err(RunError::SpawnFailed(e.to_string()))))
        }
    };
    match rx.recv_timeout(watchdog) {
        Ok(outcome) => {
            let _ = handle.join();
            outcome
        }
        Err(mpsc::RecvTimeoutError::Timeout) => AttemptOutcome::TimedOut,
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            AttemptOutcome::Panicked("attempt thread exited without reporting".to_string())
        }
    }
}

/// The kind of the most recent failed attempt, for the terminal
/// verdict.
enum LastFailure {
    Timeout,
    Panic,
    Error(RunError),
}

/// Drives one run to a verdict: attempt, and on retryable failure back
/// off (deterministically, seeded by `key`) and attempt again until
/// success or budget exhaustion. `make_job` builds a fresh isolated
/// job for each attempt index.
pub fn supervise<F>(key: &str, opts: &SupervisorOptions, mut make_job: F) -> (Option<SupervisedRun>, RunLog)
where
    F: FnMut(u32) -> Box<dyn FnOnce() -> Result<SupervisedRun, RunError> + Send + 'static>,
{
    install_quiet_hook();
    let policy = &opts.retry;
    let token = RetryToken::new(opts.backoff_seed).mix_str(key);
    let mut failures = Vec::new();
    // Failed attempts cannot report a quarantine they performed (the
    // typed error channel carries no extras); the worker's fast-path
    // probe merges one in afterwards via `absorb_quarantine`.
    let quarantine = None;
    let mut last = LastFailure::Timeout;
    for attempt in 0..=policy.max_retries {
        if attempt > 0 {
            std::thread::sleep(Duration::from_nanos(policy.delay_ns(token, attempt) as u64));
        }
        match supervise_attempt(make_job(attempt), opts.watchdog) {
            AttemptOutcome::Finished(result) => match *result {
                Ok(run) => {
                    let mut log = RunLog {
                        verdict: if attempt > 0 {
                            RunVerdict::Retried { attempts: attempt }
                        } else {
                            RunVerdict::Ok
                        },
                        failures,
                        quarantine,
                        error: None,
                    };
                    log.absorb_quarantine(run.quarantined.clone());
                    return (Some(run), log);
                }
                Err(error) => {
                    failures.push(format!("attempt {attempt}: {error}"));
                    if !error.is_retryable() {
                        return (
                            None,
                            RunLog {
                                verdict: RunVerdict::Rejected,
                                failures,
                                quarantine,
                                error: Some(error),
                            },
                        );
                    }
                    last = LastFailure::Error(error);
                }
            },
            AttemptOutcome::Panicked(message) => {
                failures.push(format!("attempt {attempt}: panicked: {message}"));
                last = LastFailure::Panic;
            }
            AttemptOutcome::TimedOut => {
                failures.push(format!("attempt {attempt}: watchdog timeout"));
                last = LastFailure::Timeout;
            }
        }
    }
    let attempts = policy.max_retries + 1;
    let (verdict, error) = match last {
        LastFailure::Timeout => (RunVerdict::TimedOut { attempts }, None),
        LastFailure::Panic => (RunVerdict::Panicked { attempts }, None),
        LastFailure::Error(e) => (RunVerdict::Rejected, Some(e)),
    };
    (
        None,
        RunLog {
            verdict,
            failures,
            quarantine,
            error,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_opts() -> SupervisorOptions {
        let mut opts = SupervisorOptions::new(MatrixOptions::serial());
        opts.watchdog = Duration::from_millis(200);
        // Near-zero backoff keeps tests fast while still exercising
        // the scheduling path.
        opts.retry = RetryPolicy::constant(2, 1000.0);
        opts
    }

    fn ok_run() -> Result<SupervisedRun, RunError> {
        Ok(SupervisedRun {
            report: RunReport::default(),
            cache_hit: false,
            quarantined: None,
        })
    }

    #[test]
    fn clean_job_is_ok_first_try() {
        let (run, log) = supervise("k", &test_opts(), |_| Box::new(ok_run));
        assert!(run.is_some());
        assert_eq!(log.verdict, RunVerdict::Ok);
        assert!(log.failures.is_empty());
    }

    #[test]
    fn panicking_job_is_isolated_and_retried() {
        let (run, log) = supervise("k", &test_opts(), |attempt| {
            if attempt == 0 {
                Box::new(|| panic!("injected"))
            } else {
                Box::new(ok_run)
            }
        });
        assert!(run.is_some());
        assert_eq!(log.verdict, RunVerdict::Retried { attempts: 1 });
        assert_eq!(log.failures, vec!["attempt 0: panicked: injected".to_string()]);
    }

    #[test]
    fn stalled_job_trips_watchdog_and_retries() {
        let opts = test_opts();
        let stall = opts.chaos_stall();
        let (run, log) = supervise("k", &opts, move |attempt| {
            if attempt == 0 {
                Box::new(move || {
                    std::thread::sleep(stall);
                    ok_run()
                })
            } else {
                Box::new(ok_run)
            }
        });
        assert!(run.is_some());
        assert_eq!(log.verdict, RunVerdict::Retried { attempts: 1 });
        assert_eq!(log.failures, vec!["attempt 0: watchdog timeout".to_string()]);
    }

    #[test]
    fn always_panicking_job_exhausts_budget() {
        let (run, log) = supervise("k", &test_opts(), |_| Box::new(|| panic!("sticky")));
        assert!(run.is_none());
        assert_eq!(log.verdict, RunVerdict::Panicked { attempts: 3 });
        assert_eq!(log.failures.len(), 3);
    }

    #[test]
    fn non_retryable_error_rejects_immediately() {
        let mut calls = 0;
        let (run, log) = supervise("k", &test_opts(), |_| {
            calls += 1;
            Box::new(|| Err(RunError::UnknownBenchmark("nope".to_string())))
        });
        assert!(run.is_none());
        assert_eq!(calls, 1, "a spec bug must not burn the retry budget");
        assert_eq!(log.verdict, RunVerdict::Rejected);
        assert_eq!(
            log.error,
            Some(RunError::UnknownBenchmark("nope".to_string()))
        );
    }

    #[test]
    fn degradation_report_orders_and_counts() {
        let mut report = DegradationReport::new(vec!["worker-panic@0 b".to_string()]);
        report.record("b", {
            let mut log = RunLog::clean();
            log.verdict = RunVerdict::Retried { attempts: 1 };
            log.failures.push("attempt 0: panicked: chaos".to_string());
            log
        });
        report.record("a", RunLog::clean());
        report.record("c", {
            let mut log = RunLog::clean();
            log.verdict = RunVerdict::TimedOut { attempts: 3 };
            log
        });
        assert_eq!(report.total_runs, 3);
        assert_eq!(report.counts().ok, 1);
        assert_eq!(report.counts().retried, 1);
        assert_eq!(report.counts().timed_out, 1);
        assert!(!report.fully_recovered());
        let keys: Vec<&String> = report.entries().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "c"], "entries are key-ordered, clean runs elided");
        let rendered = report.render();
        assert!(rendered.contains("3 runs"));
        assert!(rendered.contains("chaos-fault worker-panic@0 b"));
        assert!(rendered.contains("timed-out c"));
    }

    #[test]
    fn degradation_report_groups_by_topology() {
        let mut report = DegradationReport::new(Vec::new());
        report.record("plp-run-cache v3|bench=gcc|instr=1|seed=7|Cfg", RunLog::clean());
        report.record(
            "plp-run-cache v3|bench=gcc|instr=1|seed=7|Cfg|streams=4|shards=2",
            RunLog::clean(),
        );
        report.record(
            "plp-run-cache v3|bench=milc|instr=1|seed=7|Cfg|streams=4|shards=2",
            {
                let mut log = RunLog::clean();
                log.verdict = RunVerdict::Retried { attempts: 1 };
                log
            },
        );
        let groups: Vec<(&String, &VerdictCounts)> = report.grouped_counts().collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "1x1");
        assert_eq!(groups[0].1.ok, 1);
        assert_eq!(groups[1].0, "4x2");
        assert_eq!(groups[1].1.ok, 1);
        assert_eq!(groups[1].1.retried, 1);
        // Mixed-topology reports render a per-group line.
        assert!(report.render().contains("topology 4x2: 1 ok, 1 recovered, 0 lost"));
    }

    #[test]
    fn isolation_verdicts_count_as_lost_and_render() {
        let mut report = DegradationReport::new(Vec::new());
        report.record("oom/run", {
            let mut log = RunLog::clean();
            log.verdict = RunVerdict::OomKilled { attempts: 1 };
            log
        });
        report.record("ipc/run", {
            let mut log = RunLog::clean();
            log.verdict = RunVerdict::IpcCorrupt { attempts: 3 };
            log
        });
        assert_eq!(report.counts().oom_killed, 1);
        assert_eq!(report.counts().ipc_corrupt, 1);
        assert_eq!(report.counts().lost(), 2);
        assert!(!report.fully_recovered());
        let oom = RunVerdict::OomKilled { attempts: 1 };
        assert_eq!(oom.name(), "oom-killed");
        assert!(!oom.recovered());
        let rendered = report.render();
        assert!(rendered.contains("1 runs oom-killed, 1 ipc-corrupt"));
        assert!(rendered.contains("oom-killed oom/run"));
        assert!(rendered.contains("ipc-corrupt ipc/run"));
        // The child-failure error is retryable (a transient spawn or
        // signal problem), unlike spec bugs.
        assert!(RunError::ChildFailed("signal 11".to_string()).is_retryable());
        assert!(!RunError::UnknownBenchmark("x".to_string()).is_retryable());
    }

    #[test]
    fn quarantine_upgrades_ok_verdict() {
        let mut log = RunLog::clean();
        log.absorb_quarantine(Some("content checksum mismatch".to_string()));
        assert_eq!(log.verdict, RunVerdict::CacheQuarantined);
        assert!(log.verdict.recovered());
        // But never downgrades an eventful verdict.
        let mut retried = RunLog::clean();
        retried.verdict = RunVerdict::Retried { attempts: 2 };
        retried.absorb_quarantine(Some("truncated entry".to_string()));
        assert_eq!(retried.verdict, RunVerdict::Retried { attempts: 2 });
    }

    #[test]
    fn harness_kills_are_counted_but_not_lost() {
        let mut report = DegradationReport::new(Vec::new());
        report.record("sp/mid-tuple", {
            let mut log = RunLog::clean();
            log.verdict = RunVerdict::KilledByHarness {
                failpoint: "mid-tuple",
            };
            log
        });
        report.record("sp/clean", RunLog::clean());
        assert_eq!(report.counts().killed_by_harness, 1);
        // An intentional SIGKILL is not a lost run: the kill site was
        // the experiment, unlike a watchdog timeout.
        assert_eq!(report.counts().lost(), 0);
        assert!(report.fully_recovered());
        let verdict = RunVerdict::KilledByHarness {
            failpoint: "mid-tuple",
        };
        assert_eq!(verdict.name(), "killed-by-harness");
        assert!(!verdict.recovered());
        let rendered = report.render();
        assert!(rendered.contains("1 runs killed on purpose"));
        assert!(rendered.contains("killed-by-harness sp/mid-tuple"));
    }
}
