//! The declarative experiment registry: every table and figure of the
//! paper as an [`ExperimentSpec`] — what runs it needs and how to
//! render them — instead of a hand-rolled binary loop.
//!
//! A spec is two pure functions over [`RunSettings`]: `requests`
//! declares the `(benchmark, config)` runs the artefact is computed
//! from, and `render` turns the keyed [`ResultSet`] into the exact
//! text the artefact prints. The split is what buys the harness its
//! speed: the [`crate::matrix`] executes the union of every spec's
//! requests once — deduplicated, in parallel, through the run cache —
//! and rendering stays deterministic because it never runs anything.

use std::fmt::Write as _;

use plp_core::{
    run_with_crash, sgx, with_component_lost, with_component_reordered, ObserverExpectation,
    PersistImage, ProtectionScope, RecoveryChecker, RunReport, ShardTopology, SystemConfig,
    TupleComponent, UpdateScheme,
};
use plp_events::stats::geometric_mean;
use plp_events::Cycle;
use plp_trace::{spec, TraceGenerator};

use crate::matrix::{ResultSet, RunRequest};
use crate::{banner_string, RunSettings, SeriesTable};

/// One paper artefact: its identity, the runs it needs and its
/// renderer.
pub struct ExperimentSpec {
    /// Binary/artefact name (`fig8`, `table5`, …).
    pub id: &'static str,
    /// Banner title (`Fig. 8`, `Table V`, …).
    pub title: &'static str,
    /// Banner description.
    pub what: &'static str,
    /// Settings adjustment (e.g. the crash tables clamp instruction
    /// count because per-persist records are memory-heavy).
    pub adjust: fn(RunSettings) -> RunSettings,
    /// The matrix runs the artefact needs at the given (already
    /// adjusted) settings.
    pub requests: fn(RunSettings) -> Vec<RunRequest>,
    /// Renders the artefact body (everything after the banner) from
    /// the executed matrix.
    pub render: fn(&ResultSet, RunSettings) -> String,
}

impl ExperimentSpec {
    /// This spec's effective settings for raw command-line settings.
    pub fn settings(&self, raw: RunSettings) -> RunSettings {
        (self.adjust)(raw)
    }

    /// The matrix runs this spec needs, at raw command-line settings.
    pub fn runs_needed(&self, raw: RunSettings) -> Vec<RunRequest> {
        (self.requests)(self.settings(raw))
    }

    /// The spec's complete stdout: banner plus rendered body,
    /// byte-identical to what the standalone binary prints.
    pub fn output(&self, results: &ResultSet, raw: RunSettings) -> String {
        let s = self.settings(raw);
        format!(
            "{}{}",
            banner_string(self.title, self.what, s),
            (self.render)(results, s)
        )
    }
}

/// Every registered artefact, in `all`-binary output order.
pub fn all_specs() -> &'static [ExperimentSpec] {
    &ALL_SPECS
}

/// Looks an artefact up by id.
pub fn find(id: &str) -> Option<&'static ExperimentSpec> {
    ALL_SPECS.iter().find(|s| s.id == id)
}

fn identity(s: RunSettings) -> RunSettings {
    s
}

/// The crash-analysis tables keep full per-persist records, which are
/// memory-heavy — they clamp the instruction count.
fn clamp_for_records(mut s: RunSettings) -> RunSettings {
    s.instructions = s.instructions.min(20_000);
    s
}

fn cfg(scheme: UpdateScheme) -> SystemConfig {
    SystemConfig::for_scheme(scheme)
}

fn scoped(scheme: UpdateScheme, scope: ProtectionScope) -> SystemConfig {
    let mut c = cfg(scheme);
    c.scope = scope;
    c
}

fn req(bench: &str, config: SystemConfig, s: RunSettings) -> RunRequest {
    RunRequest::new(bench, config, s)
}

// ---------------------------------------------------------------- fig8

fn fig8_table(results: &ResultSet, scope: ProtectionScope, s: RunSettings) -> SeriesTable {
    let cols = UpdateScheme::strict().map(|u| u.name());
    let mut table = SeriesTable::new("bench", &cols);
    for profile in spec::all_benchmarks() {
        let base = results.report(&profile.name, &scoped(UpdateScheme::SecureWb, scope), s);
        let row = UpdateScheme::strict()
            .iter()
            .map(|&scheme| {
                results
                    .report(&profile.name, &scoped(scheme, scope), s)
                    .normalized_to(base)
            })
            .collect();
        table.push(&profile.name, row);
    }
    table
}

fn fig8_requests(s: RunSettings) -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for scope in [ProtectionScope::NonStack, ProtectionScope::Full] {
        for profile in spec::all_benchmarks() {
            reqs.push(req(&profile.name, scoped(UpdateScheme::SecureWb, scope), s));
            for scheme in UpdateScheme::strict() {
                reqs.push(req(&profile.name, scoped(scheme, scope), s));
            }
        }
    }
    reqs
}

fn fig8_render(results: &ResultSet, s: RunSettings) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- default scope (non-stack persists)");
    out.push_str(&fig8_table(results, ProtectionScope::NonStack, s).render());
    out.push('\n');
    let _ = writeln!(out, "-- full-memory scope (all stores persist)");
    out.push_str(&fig8_table(results, ProtectionScope::Full, s).render());
    out.push('\n');
    let _ = writeln!(
        out,
        "paper reference gmeans: sp 7.2 (30.7 full), pipeline 2.1 (6.9 full)"
    );
    out
}

// ---------------------------------------------------------------- fig9

const FIG9_MACS: [u64; 4] = [0, 20, 40, 80];

fn fig9_configs() -> Vec<SystemConfig> {
    let mut configs = Vec::new();
    for mac in FIG9_MACS {
        let mut c = cfg(UpdateScheme::Sp);
        c.mac_latency = Cycle::new(mac);
        configs.push(c);
    }
    let mut ideal = cfg(UpdateScheme::Sp);
    ideal.ideal_metadata = true;
    configs.push(ideal);
    configs
}

fn fig9_requests(s: RunSettings) -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for profile in spec::all_benchmarks() {
        reqs.push(req(&profile.name, cfg(UpdateScheme::SecureWb), s));
        for c in fig9_configs() {
            reqs.push(req(&profile.name, c, s));
        }
    }
    reqs
}

fn fig9_render(results: &ResultSet, s: RunSettings) -> String {
    let mut table = SeriesTable::new("bench", &["mac0", "mac20", "mac40", "mac80", "MDC"]);
    for profile in spec::all_benchmarks() {
        let base = results.report(&profile.name, &cfg(UpdateScheme::SecureWb), s);
        let row = fig9_configs()
            .iter()
            .map(|c| results.report(&profile.name, c, s).normalized_to(base))
            .collect();
        table.push(&profile.name, row);
    }
    let mut out = table.render();
    out.push('\n');
    let _ = writeln!(
        out,
        "paper reference: overhead ~ proportional to MAC latency; MDC ~ 1.0"
    );
    out
}

// --------------------------------------------------------------- fig10

fn fig10_table(results: &ResultSet, scope: ProtectionScope, s: RunSettings) -> SeriesTable {
    let cols = UpdateScheme::epoch().map(|u| u.name());
    let mut table = SeriesTable::new("bench", &cols);
    for profile in spec::all_benchmarks() {
        let base = results.report(&profile.name, &scoped(UpdateScheme::SecureWb, scope), s);
        let row = UpdateScheme::epoch()
            .iter()
            .map(|&scheme| {
                results
                    .report(&profile.name, &scoped(scheme, scope), s)
                    .normalized_to(base)
            })
            .collect();
        table.push(&profile.name, row);
    }
    table
}

fn fig10_requests(s: RunSettings) -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for scope in [ProtectionScope::NonStack, ProtectionScope::Full] {
        for profile in spec::all_benchmarks() {
            reqs.push(req(&profile.name, scoped(UpdateScheme::SecureWb, scope), s));
            for scheme in UpdateScheme::epoch() {
                reqs.push(req(&profile.name, scoped(scheme, scope), s));
            }
        }
    }
    reqs
}

fn fig10_render(results: &ResultSet, s: RunSettings) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- default scope (non-stack persists)");
    out.push_str(&fig10_table(results, ProtectionScope::NonStack, s).render());
    out.push('\n');
    let _ = writeln!(out, "-- full-memory scope");
    out.push_str(&fig10_table(results, ProtectionScope::Full, s).render());
    out.push('\n');
    let _ = writeln!(
        out,
        "paper reference gmeans: o3 1.207 (2.42 full), coalescing 1.202 (2.35 full)"
    );
    out
}

// --------------------------------------------------------- fig11/fig12

const EPOCH_SWEEP: [usize; 7] = [4, 8, 16, 32, 64, 128, 256];
const EPOCH_COLUMNS: [&str; 7] = ["ep4", "ep8", "ep16", "ep32", "ep64", "ep128", "ep256"];

fn epoch_cfg(epoch: usize) -> SystemConfig {
    let mut c = cfg(UpdateScheme::Coalescing);
    c.epoch_size = epoch;
    c
}

fn fig11_requests(s: RunSettings) -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for profile in spec::all_benchmarks() {
        for epoch in EPOCH_SWEEP {
            reqs.push(req(&profile.name, epoch_cfg(epoch), s));
        }
    }
    reqs
}

fn fig11_render(results: &ResultSet, s: RunSettings) -> String {
    let mut table = SeriesTable::new("bench", &EPOCH_COLUMNS);
    for profile in spec::all_benchmarks() {
        let row = EPOCH_SWEEP
            .iter()
            .map(|&epoch| {
                results
                    .report(&profile.name, &epoch_cfg(epoch), s)
                    .persist_ppki()
            })
            .collect();
        table.push(&profile.name, row);
    }
    let mut out = table.precision(2).render();
    out.push('\n');
    let _ = writeln!(
        out,
        "paper reference: monotonically decreasing; Table V's o3 column is ep32"
    );
    out
}

fn fig12_requests(s: RunSettings) -> Vec<RunRequest> {
    let mut reqs = fig11_requests(s);
    for profile in spec::all_benchmarks() {
        reqs.push(req(&profile.name, cfg(UpdateScheme::SecureWb), s));
    }
    reqs
}

fn fig12_render(results: &ResultSet, s: RunSettings) -> String {
    let mut table = SeriesTable::new("bench", &EPOCH_COLUMNS);
    for profile in spec::all_benchmarks() {
        let base = results.report(&profile.name, &cfg(UpdateScheme::SecureWb), s);
        let row = EPOCH_SWEEP
            .iter()
            .map(|&epoch| {
                results
                    .report(&profile.name, &epoch_cfg(epoch), s)
                    .normalized_to(base)
            })
            .collect();
        table.push(&profile.name, row);
    }
    let mut out = table.render();
    out.push('\n');
    let _ = writeln!(
        out,
        "paper reference: falling with epoch size, with a late-sweep upturn on some benchmarks"
    );
    out
}

// -------------------------------------------------------------- table5

fn table5_configs() -> [SystemConfig; 4] {
    [
        scoped(UpdateScheme::Sp, ProtectionScope::Full),
        scoped(UpdateScheme::SecureWb, ProtectionScope::Full),
        cfg(UpdateScheme::Sp),
        cfg(UpdateScheme::O3),
    ]
}

fn table5_requests(s: RunSettings) -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for profile in spec::all_benchmarks() {
        for c in table5_configs() {
            reqs.push(req(&profile.name, c, s));
        }
    }
    reqs
}

fn table5_render(results: &ResultSet, s: RunSettings) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<11} {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "bench", "sp_full", "(paper)", "wb_full", "(paper)", "sp", "(paper)", "o3", "(paper)"
    );
    let (mut s1, mut s2, mut s3, mut s4) = (0.0, 0.0, 0.0, 0.0);
    let n = spec::all_benchmarks().len() as f64;
    let [full_cfg, wb_cfg, sp_cfg, o3_cfg] = table5_configs();
    for profile in spec::all_benchmarks() {
        let (p_full, p_wb, p_sp, p_o3) =
            // lint: allow(no-panic-lib) the reference table covers every registered benchmark
            spec::table5_reference(&profile.name).expect("known benchmark");
        let full = results.report(&profile.name, &full_cfg, s).persist_ppki();
        let wb_report = results.report(&profile.name, &wb_cfg, s);
        let wb = wb_report.writebacks as f64 * 1000.0 / wb_report.instructions as f64;
        let sp = results.report(&profile.name, &sp_cfg, s).persist_ppki();
        let o3 = results.report(&profile.name, &o3_cfg, s).persist_ppki();
        let _ = writeln!(
            out,
            "{:<11} {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2}",
            profile.name, full, p_full, wb, p_wb, sp, p_sp, o3, p_o3
        );
        s1 += full;
        s2 += wb;
        s3 += sp;
        s4 += o3;
    }
    let _ = writeln!(
        out,
        "{:<11} {:>9.2} {:>9} | {:>9.2} {:>9} | {:>9.2} {:>9} | {:>9.2} {:>9}",
        "average",
        s1 / n,
        "119.51",
        s2 / n,
        "1.61",
        s3 / n,
        "32.60",
        s4 / n,
        "12.41"
    );
    out
}

// ----------------------------------------------------------- §VII sweeps

const WPQ_SWEEP: [usize; 5] = [4, 8, 16, 32, 64];

fn wpq_cfg(entries: usize) -> SystemConfig {
    let mut c = cfg(UpdateScheme::Coalescing);
    c.wpq_entries = entries;
    c
}

fn wpq_requests(s: RunSettings) -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for profile in spec::all_benchmarks() {
        reqs.push(req(&profile.name, cfg(UpdateScheme::SecureWb), s));
        for entries in WPQ_SWEEP {
            reqs.push(req(&profile.name, wpq_cfg(entries), s));
        }
    }
    reqs
}

fn wpq_render(results: &ResultSet, s: RunSettings) -> String {
    let mut table = SeriesTable::new("bench", &["wpq4", "wpq8", "wpq16", "wpq32", "wpq64"]);
    for profile in spec::all_benchmarks() {
        let base = results.report(&profile.name, &cfg(UpdateScheme::SecureWb), s);
        let row = WPQ_SWEEP
            .iter()
            .map(|&entries| {
                results
                    .report(&profile.name, &wpq_cfg(entries), s)
                    .normalized_to(base)
            })
            .collect();
        table.push(&profile.name, row);
    }
    let mut out = table.render();
    out.push('\n');
    let _ = writeln!(
        out,
        "paper reference: ~12% penalty at 4 entries vs 32; flat at >= 32"
    );
    out
}

const MDC_SWEEP: [usize; 4] = [32, 64, 128, 256];

fn mdc_cfg(kb: usize) -> SystemConfig {
    let mut c = cfg(UpdateScheme::Coalescing);
    c.metadata_cache_bytes = kb << 10;
    c
}

fn mdc_requests(s: RunSettings) -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for profile in spec::all_benchmarks() {
        reqs.push(req(&profile.name, cfg(UpdateScheme::SecureWb), s));
        for kb in MDC_SWEEP {
            reqs.push(req(&profile.name, mdc_cfg(kb), s));
        }
    }
    reqs
}

fn mdc_render(results: &ResultSet, s: RunSettings) -> String {
    let mut table = SeriesTable::new("bench", &["32KB", "64KB", "128KB", "256KB"]);
    for profile in spec::all_benchmarks() {
        let base = results.report(&profile.name, &cfg(UpdateScheme::SecureWb), s);
        let row = MDC_SWEEP
            .iter()
            .map(|&kb| {
                results
                    .report(&profile.name, &mdc_cfg(kb), s)
                    .normalized_to(base)
            })
            .collect();
        table.push(&profile.name, row);
    }
    let mut out = table.render();
    out.push('\n');
    let _ = writeln!(out, "paper reference: <= ~2% spread across capacities");
    out
}

const LLC_SWEEP: [usize; 3] = [1, 2, 4];

fn llc_cfg(scheme: UpdateScheme, mb: usize) -> SystemConfig {
    let mut c = cfg(scheme);
    c.llc_bytes = mb << 20;
    c
}

fn llc_requests(s: RunSettings) -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for profile in spec::all_benchmarks() {
        for mb in LLC_SWEEP {
            reqs.push(req(&profile.name, llc_cfg(UpdateScheme::SecureWb, mb), s));
            reqs.push(req(&profile.name, llc_cfg(UpdateScheme::Coalescing, mb), s));
        }
    }
    reqs
}

fn llc_render(results: &ResultSet, s: RunSettings) -> String {
    let mut table = SeriesTable::new("bench", &["llc1MB", "llc2MB", "llc4MB"]);
    for profile in spec::all_benchmarks() {
        let row = LLC_SWEEP
            .iter()
            .map(|&mb| {
                let base = results.report(&profile.name, &llc_cfg(UpdateScheme::SecureWb, mb), s);
                results
                    .report(&profile.name, &llc_cfg(UpdateScheme::Coalescing, mb), s)
                    .normalized_to(base)
            })
            .collect();
        table.push(&profile.name, row);
    }
    let mut out = table.render();
    out.push('\n');
    let _ = writeln!(out, "paper reference: 22.8% (1MB) -> 20.2% (4MB) overhead");
    out
}

// --------------------------------------------------------- sgx_compare

fn sgx_requests(s: RunSettings) -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for profile in spec::all_benchmarks() {
        for scheme in [
            UpdateScheme::SecureWb,
            UpdateScheme::Sp,
            UpdateScheme::SpCounterTree,
        ] {
            reqs.push(req(&profile.name, cfg(scheme), s));
        }
    }
    reqs
}

fn sgx_render(results: &ResultSet, s: RunSettings) -> String {
    let mut table = SeriesTable::new("bench", &["sp(BMT)", "sp_ctree", "ratio"]);
    for profile in spec::all_benchmarks() {
        let base = results.report(&profile.name, &cfg(UpdateScheme::SecureWb), s);
        let bmt = results
            .report(&profile.name, &cfg(UpdateScheme::Sp), s)
            .normalized_to(base);
        let ctree = results
            .report(&profile.name, &cfg(UpdateScheme::SpCounterTree), s)
            .normalized_to(base);
        table.push(&profile.name, vec![bmt, ctree, ctree / bmt]);
    }
    let mut out = table.render();
    out.push('\n');
    let g = SystemConfig::default().bmt;
    let _ = writeln!(
        out,
        "analytic write amplification at this geometry: {:.0}x NVM persists per store",
        sgx::sgx_write_amplification(g)
    );
    let _ = writeln!(
        out,
        "paper §V-D: 'we focus only on BMT due to the extra cost incurred by the counter tree'"
    );
    out
}

// -------------------------------------------------------------- summary

fn summary_requests(s: RunSettings) -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for profile in spec::all_benchmarks() {
        reqs.push(req(&profile.name, cfg(UpdateScheme::SecureWb), s));
        for scheme in UpdateScheme::persisting() {
            reqs.push(req(&profile.name, cfg(scheme), s));
        }
    }
    reqs
}

fn summary_render(results: &ResultSet, s: RunSettings) -> String {
    let mut out = String::new();
    let profiles = spec::all_benchmarks();
    let reports_for = |scheme: UpdateScheme| -> Vec<&RunReport> {
        profiles
            .iter()
            .map(|p| results.report(&p.name, &cfg(scheme), s))
            .collect()
    };
    let base = reports_for(UpdateScheme::SecureWb);
    let mut gmeans = Vec::new();
    for scheme in UpdateScheme::persisting() {
        let runs = reports_for(scheme);
        let values: Vec<f64> = runs
            .iter()
            .zip(&base)
            .map(|(r, b)| r.normalized_to(b))
            .collect();
        // lint: allow(no-panic-lib) cycle counts are positive, so normalized times are too
        let g = geometric_mean(&values).expect("positive normalized times");
        gmeans.push((scheme, g, runs));
    }

    let _ = writeln!(out, "normalized execution time (gmean over benchmarks):");
    let paper = [
        ("unordered", "n/a (incorrect under crash)"),
        ("sp", "~8.2x (720% overhead)"),
        ("pipeline", "~3.1x (210% overhead)"),
        ("o3", "1.207x (20.7% overhead)"),
        ("coalescing", "1.202x (20.2% overhead)"),
    ];
    for ((scheme, g, _), (_, p)) in gmeans.iter().zip(paper) {
        let _ = writeln!(out, "  {:<11} {:>6.2}x   paper: {}", scheme.name(), g, p);
    }
    out.push('\n');

    let by_scheme = |want: UpdateScheme| {
        gmeans
            .iter()
            .find(|(s, ..)| *s == want)
            // lint: allow(no-panic-lib) gmeans covers every persisting scheme by construction
            .unwrap_or_else(|| panic!("gmean missing for {}", want.name()))
    };
    let sp = by_scheme(UpdateScheme::Sp);
    let pipe = by_scheme(UpdateScheme::Pipeline);
    let o3 = by_scheme(UpdateScheme::O3);
    let co = by_scheme(UpdateScheme::Coalescing);

    let _ = writeln!(
        out,
        "pipelining speedup over sequential sp: {:.2}x (paper: 3.4x)",
        sp.1 / pipe.1
    );
    let _ = writeln!(
        out,
        "o3+coalescing speedup over sequential sp: {:.2}x (paper: 5.99x)",
        sp.1 / co.1
    );
    let _ = writeln!(
        out,
        "best-to-worst overhead ratio: {:.1}x (paper: 36x)",
        (sp.1 - 1.0) / (co.1 - 1.0).max(1e-9)
    );
    out.push('\n');

    let o3_updates: u64 = o3.2.iter().map(|r| r.engine.node_updates).sum();
    let co_updates: u64 = co.2.iter().map(|r| r.engine.node_updates).sum();
    let _ = writeln!(
        out,
        "coalescing BMT node-update reduction vs o3: {:.1}% (paper: 26.1%)",
        (1.0 - co_updates as f64 / o3_updates as f64) * 100.0
    );
    out.push('\n');

    let g = SystemConfig::default().bmt;
    let _ = writeln!(
        out,
        "SGX counter-tree persist amplification at the default geometry: {:.0}x\n\
         ({} NVM persists per store vs 1 for a BMT; paper §V-D)",
        sgx::sgx_write_amplification(g),
        sgx::sgx_persist_cost(g).nvm_persists
    );
    out
}

// ------------------------------------------------------------- ablation

const ABLATION_BENCH: &str = "gcc";
const ABLATION_ETTS: [usize; 4] = [1, 2, 4, 8];
const ABLATION_LEVELS: [u32; 5] = [7, 8, 9, 10, 11];

fn ett_cfg(ett: usize) -> SystemConfig {
    let mut c = cfg(UpdateScheme::Coalescing);
    c.ett_entries = ett;
    c
}

fn height_cfg(scheme: UpdateScheme, levels: u32) -> SystemConfig {
    let mut c = cfg(scheme);
    c.bmt = plp_bmt::BmtGeometry::new(8, levels);
    c
}

fn mac_cfg(mac: u64) -> SystemConfig {
    let mut c = cfg(UpdateScheme::Sp);
    c.mac_latency = Cycle::new(mac);
    c
}

fn ablation_requests(s: RunSettings) -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for scheme in UpdateScheme::all() {
        reqs.push(req(ABLATION_BENCH, cfg(scheme), s));
    }
    for ett in ABLATION_ETTS {
        reqs.push(req(ABLATION_BENCH, ett_cfg(ett), s));
    }
    for levels in ABLATION_LEVELS {
        reqs.push(req(ABLATION_BENCH, height_cfg(UpdateScheme::Sp, levels), s));
        reqs.push(req(
            ABLATION_BENCH,
            height_cfg(UpdateScheme::Pipeline, levels),
            s,
        ));
    }
    for mac in FIG9_MACS {
        reqs.push(req(ABLATION_BENCH, mac_cfg(mac), s));
    }
    reqs
}

fn ablation_render(results: &ResultSet, s: RunSettings) -> String {
    let mut out = String::new();
    let base = results.report(ABLATION_BENCH, &cfg(UpdateScheme::SecureWb), s);
    let norm = |config: &SystemConfig| -> (f64, &RunReport) {
        let r = results.report(ABLATION_BENCH, config, s);
        (r.normalized_to(base), r)
    };

    let (sp, _) = norm(&cfg(UpdateScheme::Sp));
    let (un, _) = norm(&cfg(UpdateScheme::Unordered));
    let _ = writeln!(out, "D1 root-ordering enforcement (sp vs unordered):");
    let _ = writeln!(
        out,
        "   sp {sp:.2}x vs unordered {un:.2}x -> correctness costs {:.2}x",
        sp / un
    );
    out.push('\n');

    let (pipe, _) = norm(&cfg(UpdateScheme::Pipeline));
    let (o3, o3r) = norm(&cfg(UpdateScheme::O3));
    let _ = writeln!(out, "D2 in-order pipeline vs OOO epochs:");
    let _ = writeln!(
        out,
        "   pipeline {pipe:.2}x vs o3 {o3:.2}x -> relaxing intra-epoch order buys {:.2}x",
        pipe / o3
    );
    out.push('\n');

    let (co, cor) = norm(&cfg(UpdateScheme::Coalescing));
    let _ = writeln!(out, "D3 LCA coalescing on top of o3:");
    let _ = writeln!(
        out,
        "   runtime {co:.2}x (o3 {o3:.2}x); node updates {} -> {} (-{:.1}%)",
        o3r.engine.node_updates,
        cor.engine.node_updates,
        cor.node_update_reduction_vs(o3r) * 100.0
    );
    out.push('\n');

    let _ = writeln!(out, "D4 ETT entries (concurrent epochs), coalescing scheme:");
    for ett in ABLATION_ETTS {
        let (n, _) = norm(&ett_cfg(ett));
        let _ = writeln!(out, "   ett={ett}: {n:.3}x");
    }
    out.push('\n');

    let _ = writeln!(out, "D5 BMT height (memory size), sp vs pipeline:");
    for levels in ABLATION_LEVELS {
        let (sp_n, _) = norm(&height_cfg(UpdateScheme::Sp, levels));
        let (pipe_n, _) = norm(&height_cfg(UpdateScheme::Pipeline, levels));
        let _ = writeln!(
            out,
            "   {levels} levels: sp {sp_n:5.2}x   pipeline {pipe_n:5.2}x   (ratio {:.2})",
            sp_n / pipe_n
        );
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "paper §IV-A2: 'with larger memories, the degree of PLP increases and\n\
         pipelined BMT updates becomes even more effective versus non-pipelined'"
    );

    out.push('\n');
    let _ = writeln!(out, "MAC-latency scaling, sp scheme:");
    for mac in FIG9_MACS {
        let (n, _) = norm(&mac_cfg(mac));
        let _ = writeln!(out, "   mac={mac:>2}: {n:.2}x");
    }
    out
}

// ------------------------------------------------------- table1/table2

fn crash_requests(_s: RunSettings) -> Vec<RunRequest> {
    // Crash analysis needs per-persist records, which are never cached
    // or shared through the matrix; these specs run their own
    // record-enabled simulation at render time.
    Vec::new()
}

fn table1_render(_results: &ResultSet, settings: RunSettings) -> String {
    let mut out = String::new();
    let mut cfg = SystemConfig::for_scheme(UpdateScheme::Sp);
    cfg.record_persists = true;
    // lint: allow(no-panic-lib) static registry lookup of a benchmark this file names
    let profile = spec::benchmark("milc").expect("known benchmark");
    let trace = TraceGenerator::new(profile.clone(), settings.seed).generate(settings.instructions);
    let (report, _, _) = run_with_crash(&cfg, profile.base_ipc, &trace, None);
    // The victim must be the *last* persist to its address, or a later
    // persist re-supplies the lost component.
    let victim = report.records.len() - 1;
    let checker = RecoveryChecker::new(cfg.bmt, cfg.key);
    // A finite crash point after everything drained: the lost
    // component (stamped `Cycle::MAX`) is the only thing missing.
    let crash_at = report.total_cycles + Cycle::new(1_000_000);

    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>6} {:>6}   paper outcome",
        "lost", "BMT", "MAC", "P"
    );
    let expected_text = [
        (TupleComponent::Root, "BMT failure"),
        (TupleComponent::Mac, "MAC failure"),
        (
            TupleComponent::Counter,
            "wrong plaintext, BMT & MAC failure",
        ),
        (TupleComponent::Ciphertext, "wrong plaintext, MAC failure"),
    ];
    for (component, paper) in expected_text {
        let faulty = with_component_lost(&report.records, victim, component);
        let image = PersistImage::at_time(&faulty, crash_at, cfg.bmt, cfg.key);
        let expected = ObserverExpectation::at_time(&report.records, crash_at);
        let rec = checker.check(&image, &expected);
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>6} {:>6}   {}",
            format!("{component:?}"),
            if rec.bmt_failure { "FAIL" } else { "ok" },
            if rec.mac_failures.is_empty() { "ok" } else { "FAIL" },
            if rec.plaintext_failures.is_empty() {
                "ok"
            } else {
                "WRONG"
            },
            paper
        );
    }
    out.push('\n');
    let _ = writeln!(out, "(control: nothing lost)");
    let image = PersistImage::at_time(&report.records, crash_at, cfg.bmt, cfg.key);
    let expected = ObserverExpectation::at_time(&report.records, crash_at);
    let rec = checker.check(&image, &expected);
    let _ = writeln!(out, "all components persisted -> {rec}");
    out
}

fn table2_render(_results: &ResultSet, settings: RunSettings) -> String {
    let mut out = String::new();
    let mut cfg = SystemConfig::for_scheme(UpdateScheme::Sp);
    cfg.record_persists = true;
    // lint: allow(no-panic-lib) static registry lookup of a benchmark this file names
    let profile = spec::benchmark("milc").expect("known benchmark");
    let trace = TraceGenerator::new(profile.clone(), settings.seed).generate(settings.instructions);
    let (report, _, _) = run_with_crash(&cfg, profile.base_ipc, &trace, None);
    let checker = RecoveryChecker::new(cfg.bmt, cfg.key);

    // Pick two mid-run persists to *different* pages so the component
    // swap is meaningful, and crash between their completions.
    let first = (report.records.len() / 2..report.records.len() - 1)
        .find(|&i| report.records[i].addr.page() != report.records[i + 1].addr.page())
        // lint: allow(no-panic-lib) the milc trace always persists to multiple pages
        .expect("adjacent different-page persists");
    let second = first + 1;
    let t1 = report.records[first].completed_at();
    let t2 = report.records[second].completed_at();
    let crash_at = Cycle::new((t1.get() + t2.get()) / 2);

    let _ = writeln!(
        out,
        "α1 = {} ({}), α2 = {} ({}), crash between their persists",
        report.records[first].id,
        report.records[first].addr,
        report.records[second].id,
        report.records[second].addr
    );
    out.push('\n');
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>6} {:>6}   paper outcome",
        "violated", "BMT", "MAC", "P"
    );
    let rows = [
        (TupleComponent::Counter, "plaintext P1 not recoverable"),
        (TupleComponent::Mac, "MAC failure"),
        (TupleComponent::Root, "BMT failure for C1"),
    ];
    for (component, paper) in rows {
        let faulty = with_component_reordered(&report.records, first, second, component);
        let image = PersistImage::at_time(&faulty, crash_at, cfg.bmt, cfg.key);
        let expected = ObserverExpectation::at_time(&report.records, crash_at);
        let rec = checker.check(&image, &expected);
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>6} {:>6}   {}",
            format!("{component:?}"),
            if rec.bmt_failure { "FAIL" } else { "ok" },
            if rec.mac_failures.is_empty() { "ok" } else { "FAIL" },
            if rec.plaintext_failures.is_empty() {
                "ok"
            } else {
                "WRONG"
            },
            paper
        );
    }
    out
}

// ------------------------------------------------------------------ zoo

/// Benchmarks the zoo artefact measures: a light/heavy persist-rate
/// pair, matching the shard sweep's choice, keeps the matrix small.
const ZOO_BENCHES: [&str; 2] = ["gcc", "milc"];

/// The zoo's comparison columns: the paper's strict baseline bracketed
/// by the two literature schemes at opposite ends of the
/// runtime-vs-recovery frontier.
fn zoo_schemes() -> [UpdateScheme; 3] {
    let [triad, phoenix] = UpdateScheme::zoo();
    [UpdateScheme::Sp, triad, phoenix]
}

fn zoo_requests(s: RunSettings) -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for bench in ZOO_BENCHES {
        reqs.push(req(bench, cfg(UpdateScheme::SecureWb), s));
        for scheme in zoo_schemes() {
            reqs.push(req(bench, cfg(scheme), s));
        }
    }
    reqs
}

fn zoo_render(results: &ResultSet, s: RunSettings) -> String {
    let cols = zoo_schemes().map(|u| u.name());
    let mut table = SeriesTable::new("bench", &cols);
    let mut updates = [0u64; 3];
    for bench in ZOO_BENCHES {
        let base = results.report(bench, &cfg(UpdateScheme::SecureWb), s);
        let row = zoo_schemes()
            .iter()
            .enumerate()
            .map(|(i, &scheme)| {
                let r = results.report(bench, &cfg(scheme), s);
                updates[i] += r.engine.node_updates;
                r.normalized_to(base)
            })
            .collect();
        table.push(bench, row);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- execution time normalized to secure_WB (runtime axis of the Pareto frontier)"
    );
    out.push_str(&table.render());
    out.push('\n');
    let [sp_u, triad_u, phoenix_u] = updates;
    let _ = writeln!(
        out,
        "-- BMT node updates: sp {sp_u}, triad_nvm {triad_u} ({:.1}% of sp), phoenix {phoenix_u}",
        triad_u as f64 * 100.0 / sp_u.max(1) as f64
    );
    let _ = writeln!(
        out,
        "recovery axis: see recovery_sweep (results/recovery_pareto.txt)"
    );
    out
}

// ---------------------------------------------------------- shard_sweep

/// The sweep's topology points: shards ∈ {1, 2, 4, 8}, one client
/// stream per shard. The 1×1 point is the unsharded simulator.
pub const SHARD_POINTS: [(u32, u32); 4] = [(1, 1), (2, 2), (4, 4), (8, 8)];

/// Benchmarks the sweep scales; a light/heavy persist-rate pair keeps
/// the matrix small while still exercising imbalanced shards.
const SHARD_BENCHES: [&str; 2] = ["gcc", "milc"];

/// The schemes the sweep compares: one strict, one epoch out-of-order,
/// one coalescing, plus the two zoo schemes so the truncated-walk and
/// dual-copy engines are exercised under cross-shard coordination.
const SHARD_SCHEMES: [UpdateScheme; 5] = [
    UpdateScheme::Sp,
    UpdateScheme::O3,
    UpdateScheme::Coalescing,
    UpdateScheme::TriadNvm,
    UpdateScheme::Phoenix,
];

/// Sharded runs multiply total simulated work by the stream count;
/// clamp so the 8×8 point stays interactive.
fn clamp_for_shards(mut s: RunSettings) -> RunSettings {
    s.instructions = s.instructions.min(60_000);
    s
}

fn shard_requests(s: RunSettings) -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for (streams, shards) in SHARD_POINTS {
        let topology = ShardTopology::new(streams, shards);
        for scheme in SHARD_SCHEMES {
            for bench in SHARD_BENCHES {
                reqs.push(req(bench, cfg(scheme), s).with_topology(topology));
            }
        }
    }
    reqs
}

fn shard_render(results: &ResultSet, s: RunSettings) -> String {
    let cols = SHARD_SCHEMES.map(|u| u.name());
    let mut table = SeriesTable::new("topology", &cols).precision(3);
    let mut persists = Vec::new();
    for (streams, shards) in SHARD_POINTS {
        let topology = ShardTopology::new(streams, shards);
        let mut total_persists = 0u64;
        let row = SHARD_SCHEMES
            .iter()
            .map(|&scheme| {
                let vals: Vec<f64> = SHARD_BENCHES
                    .iter()
                    .map(|bench| {
                        let r = results.get(&req(bench, cfg(scheme), s).with_topology(topology));
                        let base =
                            results.get(&req(bench, cfg(scheme), s).with_topology(
                                ShardTopology::unit(),
                            ));
                        total_persists += r.persists;
                        // Per-instruction cycles, so an N-stream point
                        // is compared per unit of work, not raw wall.
                        let cpi = r.total_cycles.get() as f64 / r.instructions.max(1) as f64;
                        let base_cpi =
                            base.total_cycles.get() as f64 / base.instructions.max(1) as f64;
                        cpi / base_cpi
                    })
                    .collect();
                geometric_mean(&vals).unwrap_or(1.0)
            })
            .collect();
        table.push(&topology.to_string(), row);
        persists.push((topology, total_persists));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- cycles per instruction, normalized to the 1x1 (unsharded) point"
    );
    out.push_str(&table.render());
    out.push('\n');
    let _ = writeln!(out, "-- persists folded into the root-of-roots per topology");
    for (topology, p) in persists {
        let _ = writeln!(out, "{:<11} {p:>9}", topology.to_string());
    }
    out
}

/// The shard-sweep artefact. Deliberately *not* registered in
/// [`all_specs`]: `all`'s stdout (and run set) stays byte-identical to
/// the pre-sharding harness; the sweep has its own `shard_sweep`
/// binary.
pub fn shard_spec() -> &'static ExperimentSpec {
    &SHARD_SPEC
}

static SHARD_SPEC: ExperimentSpec = ExperimentSpec {
    id: "shard_sweep",
    title: "Shard sweep",
    what: "N client streams over M subtree engines with a root-of-roots",
    adjust: clamp_for_shards,
    requests: shard_requests,
    render: shard_render,
};

// ------------------------------------------------------------- registry

static ALL_SPECS: [ExperimentSpec; 15] = [
    ExperimentSpec {
        id: "fig8",
        title: "Fig. 8",
        what: "SP-scheme execution time normalized to secure_WB",
        adjust: identity,
        requests: fig8_requests,
        render: fig8_render,
    },
    ExperimentSpec {
        id: "fig9",
        title: "Fig. 9",
        what: "sp vs MAC latency and ideal metadata caches",
        adjust: identity,
        requests: fig9_requests,
        render: fig9_render,
    },
    ExperimentSpec {
        id: "fig10",
        title: "Fig. 10",
        what: "EP-scheme execution time normalized to secure_WB",
        adjust: identity,
        requests: fig10_requests,
        render: fig10_render,
    },
    ExperimentSpec {
        id: "fig11",
        title: "Fig. 11",
        what: "PPKI vs epoch size (coalescing scheme)",
        adjust: identity,
        requests: fig11_requests,
        render: fig11_render,
    },
    ExperimentSpec {
        id: "fig12",
        title: "Fig. 12",
        what: "coalescing execution time vs epoch size, normalized to secure_WB",
        adjust: identity,
        requests: fig12_requests,
        render: fig12_render,
    },
    ExperimentSpec {
        id: "table1",
        title: "Table I",
        what: "recovery failures due to persist failure",
        adjust: clamp_for_records,
        requests: crash_requests,
        render: table1_render,
    },
    ExperimentSpec {
        id: "table2",
        title: "Table II",
        what: "recovery failures due to ordering violations",
        adjust: clamp_for_records,
        requests: crash_requests,
        render: table2_render,
    },
    ExperimentSpec {
        id: "table5",
        title: "Table V",
        what: "persists per kilo-instruction (PPKI)",
        adjust: identity,
        requests: table5_requests,
        render: table5_render,
    },
    ExperimentSpec {
        id: "wpq_sweep",
        title: "WPQ sweep",
        what: "coalescing vs WPQ entries",
        adjust: identity,
        requests: wpq_requests,
        render: wpq_render,
    },
    ExperimentSpec {
        id: "mdc_sweep",
        title: "MDC sweep",
        what: "coalescing vs metadata-cache capacity",
        adjust: identity,
        requests: mdc_requests,
        render: mdc_render,
    },
    ExperimentSpec {
        id: "llc_sweep",
        title: "LLC sweep",
        what: "coalescing vs LLC capacity",
        adjust: identity,
        requests: llc_requests,
        render: llc_render,
    },
    ExperimentSpec {
        id: "sgx_compare",
        title: "SGX ablation",
        what: "sp over a BMT vs sp over an SGX-style counter tree",
        adjust: identity,
        requests: sgx_requests,
        render: sgx_render,
    },
    ExperimentSpec {
        id: "summary",
        title: "Summary",
        what: "headline results across all 15 benchmarks",
        adjust: identity,
        requests: summary_requests,
        render: summary_render,
    },
    ExperimentSpec {
        id: "ablation",
        title: "Ablations",
        what: "design-choice isolation on gcc",
        adjust: identity,
        requests: ablation_requests,
        render: ablation_render,
    },
    ExperimentSpec {
        id: "zoo",
        title: "Scheme zoo",
        what: "triad_nvm and phoenix runtime overhead vs the sp baseline",
        adjust: identity,
        requests: zoo_requests,
        render: zoo_render,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_findable() {
        let mut ids: Vec<&str> = all_specs().iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), 15);
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 15, "duplicate spec ids");
        assert!(find("fig8").is_some());
        assert!(find("zoo").is_some());
        assert!(find("nonesuch").is_none());
    }

    #[test]
    fn requests_are_declared_for_every_matrix_spec() {
        let s = RunSettings {
            instructions: 1_000,
            seed: 1,
        };
        for spec in all_specs() {
            let reqs = spec.runs_needed(s);
            // The crash tables run record-enabled simulations at
            // render time; every other artefact declares its matrix.
            if spec.id == "table1" || spec.id == "table2" {
                assert!(reqs.is_empty());
            } else {
                assert!(!reqs.is_empty(), "{} declares no runs", spec.id);
                for r in &reqs {
                    assert!(
                        !r.config.record_persists,
                        "{}: matrix runs must be record-free",
                        spec.id
                    );
                }
            }
        }
    }

    #[test]
    fn shard_spec_is_unregistered_but_complete() {
        // The sweep stays out of `all` (its run set and stdout are
        // pinned) but declares a full topology matrix of its own.
        assert!(find("shard_sweep").is_none());
        let spec = shard_spec();
        let s = RunSettings {
            instructions: 1_000,
            seed: 1,
        };
        let reqs = spec.runs_needed(s);
        assert_eq!(reqs.len(), SHARD_POINTS.len() * SHARD_SCHEMES.len() * SHARD_BENCHES.len());
        assert!(reqs.iter().any(|r| r.topology.is_unit()));
        assert!(reqs
            .iter()
            .any(|r| r.topology == ShardTopology::new(8, 8)));
        for r in &reqs {
            assert!(!r.config.record_persists);
        }
        // Unit-topology requests keep the pre-sharding cache key.
        let unit = reqs.iter().find(|r| r.topology.is_unit()).unwrap();
        assert!(!unit.key().contains("streams="));
        let sharded = reqs.iter().find(|r| !r.topology.is_unit()).unwrap();
        assert!(sharded.key().contains("|streams="));
    }

    #[test]
    fn shard_sweep_clamps_instruction_count() {
        let big = RunSettings {
            instructions: 400_000,
            seed: 7,
        };
        assert_eq!(shard_spec().settings(big).instructions, 60_000);
    }

    #[test]
    fn crash_tables_clamp_instruction_count() {
        let big = RunSettings {
            instructions: 400_000,
            seed: 7,
        };
        assert_eq!(find("table1").unwrap().settings(big).instructions, 20_000);
        assert_eq!(find("table2").unwrap().settings(big).instructions, 20_000);
        assert_eq!(find("fig8").unwrap().settings(big).instructions, 400_000);
    }
}
