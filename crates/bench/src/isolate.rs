//! Process-isolated run supervision: each matrix attempt executes in
//! a re-exec'ed child under real OS resource limits, so a wedged or
//! memory-hungry run can be SIGKILLed instead of abandoned.
//!
//! The in-process supervisor (`crate::supervisor`) has one documented
//! sharp edge: Rust cannot cancel a thread, so a timed-out attempt is
//! *abandoned* and keeps burning CPU in the background. This module is
//! the fix. With isolation on, every attempt re-execs the harness
//! binary as `<exe> --run-one <key> …`; the child applies rlimits to
//! itself ([`apply_self_limits`]), runs exactly one simulation, and
//! returns its [`RunReport`] over stdout as a single length-prefixed,
//! FNV-checksummed frame (the `plp_nvm::image` frame codec carrying
//! the run-cache text codec — both already versioned and corruption-
//! checked). Watchdog trips become real SIGKILLs; panics become
//! nonzero exits; a child that outgrows its address-space limit dies
//! to the allocator's abort and is reported as
//! [`RunVerdict::OomKilled`] instead of hanging the sweep.
//!
//! Output discipline matches the in-process path: isolation never
//! touches stdout, reports decode bit-exactly (the cache codec is
//! lossless), and the cache stays a parent-side concern — children
//! never open it, so a corrupt entry is quarantined exactly once.

use std::io::Read;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

use plp_core::retry::RetryToken;
use plp_core::RunReport;
use plp_nvm::image::{decode_frame, encode_frame};

use crate::cache;
use crate::chaos::{ChaosClass, ChaosFault};
use crate::supervisor::{RunError, RunLog, RunVerdict, SupervisedRun, SupervisorOptions};

/// Frame tag for a `RunReport` crossing the child→parent pipe. Outside
/// the device-image tag space (1–12) by a wide margin, so a frame file
/// and a pipe frame can never be confused for one another.
pub const TAG_RUN_REPORT: u8 = 32;

/// Exit code a child uses for a request key it cannot reconstruct.
pub const EXIT_UNKNOWN_KEY: i32 = 4;
/// Exit code a child uses when the simulation itself fails (unknown
/// benchmark or invalid configuration — spec bugs, not crashes).
pub const EXIT_RUN_FAILED: i32 = 5;

/// Per-child OS resource limits, applied by the child to itself at
/// startup (before any allocation of consequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceLimits {
    /// `RLIMIT_AS` in bytes; an allocation past it fails and the
    /// allocator aborts the child (SIGABRT → [`RunVerdict::OomKilled`]).
    pub address_space_bytes: Option<u64>,
    /// `RLIMIT_CPU` in seconds — a kernel-side backstop behind the
    /// parent's wall-clock watchdog.
    pub cpu_secs: Option<u64>,
}

impl Default for ResourceLimits {
    /// 32 GiB of address space — RLIMIT_AS charges virtual
    /// reservations, and the heaviest paper configs model an 8 GiB NVM
    /// whose sparse structures reserve past 8 GiB while touching far
    /// less — and a 10-minute CPU backstop. A runaway allocation still
    /// trips the limit orders of magnitude before exhausting the host.
    fn default() -> Self {
        ResourceLimits {
            address_space_bytes: Some(32 << 30),
            cpu_secs: Some(600),
        }
    }
}

/// `struct rlimit` as the kernel sees it on 64-bit Linux.
#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

const RLIMIT_CPU: i32 = 0;
const RLIMIT_AS: i32 = 9;

extern "C" {
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

/// Applies `limits` to the calling process. Children call this first
/// thing in `--run-one` mode; failures are reported, not fatal — a
/// limit that cannot be applied degrades to unlimited, never to a
/// silently skipped run.
pub fn apply_self_limits(limits: &ResourceLimits) -> Result<(), String> {
    let apply = |resource: i32, value: u64, what: &str| -> Result<(), String> {
        let rlim = RLimit {
            cur: value,
            max: value,
        };
        // SAFETY: setrlimit reads a valid, initialized struct and
        // affects only the calling process.
        if unsafe { setrlimit(resource, &rlim) } != 0 {
            return Err(format!("setrlimit({what}, {value}) failed"));
        }
        Ok(())
    };
    if let Some(bytes) = limits.address_space_bytes {
        apply(RLIMIT_AS, bytes, "RLIMIT_AS")?;
    }
    if let Some(secs) = limits.cpu_secs {
        apply(RLIMIT_CPU, secs, "RLIMIT_CPU")?;
    }
    Ok(())
}

/// Test-only allocation bomb (`--chaos-oom`): requests an allocation
/// far past any sane address-space limit. Under `RLIMIT_AS` the
/// allocator aborts the process, which the parent classifies as
/// [`RunVerdict::OomKilled`]; without a limit the reservation may
/// succeed untouched (overcommit), in which case the child exits
/// without a report frame instead of dirtying terabytes.
pub fn allocation_bomb() -> ! {
    // black_box keeps the allocation observable: without it the
    // optimizer elides the untouched vec and the child exits 0.
    let v = std::hint::black_box(vec![0u8; 1 << 44]);
    std::process::exit(i32::from(v[0]));
}

/// Encodes a completed report as the one frame a child writes to
/// stdout: the versioned, checksummed run-cache text inside a
/// checksummed image frame.
pub fn encode_report(key: &str, report: &RunReport) -> Vec<u8> {
    encode_frame(TAG_RUN_REPORT, cache::encode(key, report).as_bytes())
}

/// Decodes a child's stdout back into its report, verifying both
/// integrity envelopes (frame checksum, then cache-codec checksum and
/// stored key).
///
/// # Errors
///
/// Returns a description of the first integrity check the bytes
/// failed — the parent records it as an IPC corruption.
pub fn decode_report(key: &str, bytes: &[u8]) -> Result<RunReport, String> {
    let (tag, payload, used) =
        decode_frame(bytes).ok_or_else(|| "frame truncated or checksum mismatch".to_string())?;
    if tag != TAG_RUN_REPORT {
        return Err(format!("unexpected frame tag {tag}"));
    }
    if used != bytes.len() {
        return Err(format!("{} trailing bytes after report frame", bytes.len() - used));
    }
    let text =
        std::str::from_utf8(payload).map_err(|_| "report payload is not UTF-8".to_string())?;
    cache::decode_checked(key, text).map_err(|fault| format!("report payload rejected: {fault}"))
}

/// How isolated children are launched.
#[derive(Debug, Clone)]
pub struct IsolateOptions {
    /// The harness binary to re-exec (normally `current_exe`).
    pub exe: PathBuf,
    /// Arguments every child needs to reconstruct its request —
    /// passed *before* `--run-one` so tests can substitute a shell
    /// script that ignores the trailing protocol arguments.
    pub base_args: Vec<String>,
    /// Rlimits each child self-applies.
    pub limits: ResourceLimits,
    /// Test-only: keys containing this substring run the allocation
    /// bomb instead of simulating (pins the OomKilled path).
    pub oom_key: Option<String>,
    /// Test-only: keys containing this substring stall past the
    /// watchdog on every attempt (pins the SIGKILL path).
    pub stall_key: Option<String>,
}

impl IsolateOptions {
    /// Isolation via `exe` with default limits and no test faults.
    pub fn new(exe: PathBuf, base_args: Vec<String>) -> Self {
        IsolateOptions {
            exe,
            base_args,
            limits: ResourceLimits::default(),
            oom_key: None,
            stall_key: None,
        }
    }
}

/// How one isolated attempt ended.
enum ChildEnd {
    /// Clean exit with a verified report frame.
    Report(Box<RunReport>),
    /// Clean exit but the frame failed verification.
    IpcCorrupt(String),
    /// The child panicked (exit 101), message extracted from stderr.
    Panicked(String),
    /// SIGABRT under an address-space limit: the allocator aborted.
    OomKilled,
    /// The watchdog expired; the child was SIGKILLed for real.
    TimedOut,
    /// Anything else: spawn failure, unexpected signal or exit code.
    Failed(String),
}

/// The panic message a child printed, extracted from the default
/// hook's stderr shape (`thread '…' panicked at …:\n<message>\n`).
/// Deterministic for deterministic panics, so degradation reports
/// stay equal across thread counts and repeated sweeps.
fn panic_message_from_stderr(stderr: &[u8]) -> String {
    let text = String::from_utf8_lossy(stderr);
    let mut lines = text.lines();
    while let Some(line) = lines.next() {
        if line.contains("panicked at") {
            let message: Vec<&str> = lines
                .by_ref()
                .take_while(|l| !l.starts_with("note:") && !l.starts_with("stack backtrace"))
                .collect();
            if !message.is_empty() {
                return message.join(" ");
            }
        }
    }
    "child panicked (exit 101)".to_string()
}

/// Runs one isolated attempt: spawn, pump stdout on a named reader
/// thread, SIGKILL on watchdog expiry, classify the exit.
fn run_attempt(
    iso: &IsolateOptions,
    key: &str,
    extra: &[String],
    watchdog: Duration,
) -> ChildEnd {
    let mut cmd = Command::new(&iso.exe);
    cmd.args(&iso.base_args)
        .arg("--run-one")
        .arg(key)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    if let Some(bytes) = iso.limits.address_space_bytes {
        cmd.arg("--limit-as").arg(bytes.to_string());
    }
    if let Some(secs) = iso.limits.cpu_secs {
        cmd.arg("--limit-cpu").arg(secs.to_string());
    }
    cmd.args(extra);
    let mut child = match cmd.spawn() {
        Ok(child) => child,
        Err(e) => return ChildEnd::Failed(format!("spawn failed: {e}")),
    };
    let (Some(mut stdout), Some(mut stderr)) = (child.stdout.take(), child.stderr.take()) else {
        let _ = child.kill();
        let _ = child.wait();
        return ChildEnd::Failed("child pipes were not captured".to_string());
    };
    // Reader threads drain both pipes; stdout EOF doubles as the
    // completion signal for the watchdog's recv_timeout. Both threads
    // are joined below — no attempt thread ever outlives the run.
    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    let out_reader = std::thread::Builder::new()
        .name("plp-isolate-io".to_string())
        .spawn(move || {
            let mut buf = Vec::new();
            let _ = stdout.read_to_end(&mut buf);
            let _ = tx.send(buf);
        });
    let err_reader = std::thread::Builder::new()
        .name("plp-isolate-io".to_string())
        .spawn(move || {
            let mut buf = Vec::new();
            let _ = stderr.read_to_end(&mut buf);
            buf
        });
    let (Ok(out_reader), Ok(err_reader)) = (out_reader, err_reader) else {
        let _ = child.kill();
        let _ = child.wait();
        return ChildEnd::Failed("could not spawn pipe reader".to_string());
    };
    let (stdout_bytes, timed_out) = match rx.recv_timeout(watchdog) {
        Ok(bytes) => (bytes, false),
        Err(_) => {
            // The whole point of isolation: a real, unblockable
            // SIGKILL, not an abandoned thread.
            let _ = child.kill();
            (Vec::new(), true)
        }
    };
    let status = child.wait();
    let _ = out_reader.join();
    let stderr_bytes = err_reader.join().unwrap_or_default();
    if timed_out {
        return ChildEnd::TimedOut;
    }
    let status = match status {
        Ok(status) => status,
        Err(e) => return ChildEnd::Failed(format!("wait failed: {e}")),
    };
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(signal) = status.signal() {
            // SIGABRT(6) is the allocator's response to a failed
            // allocation under RLIMIT_AS. Any other fatal signal is
            // outside the protocol.
            return if signal == 6 {
                ChildEnd::OomKilled
            } else {
                ChildEnd::Failed(format!("child killed by signal {signal}"))
            };
        }
    }
    match status.code() {
        Some(0) => match decode_report(key, &stdout_bytes) {
            Ok(report) => ChildEnd::Report(Box::new(report)),
            Err(e) => ChildEnd::IpcCorrupt(e),
        },
        Some(101) => ChildEnd::Panicked(panic_message_from_stderr(&stderr_bytes)),
        Some(code) => {
            let tail = String::from_utf8_lossy(&stderr_bytes);
            ChildEnd::Failed(format!(
                "child exited {code}: {}",
                tail.lines().last().unwrap_or("").trim()
            ))
        }
        None => ChildEnd::Failed("child reported no exit status".to_string()),
    }
}

/// Kind of the most recent failed attempt.
enum LastFailure {
    Timeout,
    Panic,
    Ipc,
    Error(RunError),
}

/// Drives one run to a verdict with process isolation: per attempt,
/// fire the planned chaos faults as child flags, probe the cache
/// parent-side (children never touch it), spawn-and-watch the child,
/// and on retryable failure back off deterministically — the same
/// seeded schedule as the in-process supervisor. An OOM kill is
/// terminal: the same allocation would fail identically, so retrying
/// only burns the budget.
pub fn supervise_isolated(
    key: &str,
    sup: &SupervisorOptions,
    iso: &IsolateOptions,
    faults: &[ChaosFault],
) -> (Option<SupervisedRun>, RunLog) {
    let policy = &sup.retry;
    let token = RetryToken::new(sup.backoff_seed).mix_str(key);
    let stall_ms = sup.chaos_stall().as_millis();
    let mut failures = Vec::new();
    let mut quarantine: Option<String> = None;
    let mut last = LastFailure::Timeout;
    for attempt in 0..=policy.max_retries {
        if attempt > 0 {
            std::thread::sleep(Duration::from_nanos(policy.delay_ns(token, attempt) as u64));
        }
        // Chaos worker faults fire inside the child, mirroring the
        // in-process ordering: a fault-bearing attempt never reaches
        // the cache probe.
        let mut extra: Vec<String> = Vec::new();
        for fault in faults {
            let fires = if fault.sticky {
                attempt >= fault.attempt
            } else {
                attempt == fault.attempt
            };
            if !fires {
                continue;
            }
            match fault.class {
                ChaosClass::WorkerPanic => extra.push("--chaos-panic".to_string()),
                ChaosClass::WorkerStall => {
                    extra.push("--chaos-stall-ms".to_string());
                    extra.push(stall_ms.to_string());
                }
                _ => {}
            }
        }
        if iso.oom_key.as_deref().is_some_and(|s| key.contains(s)) {
            extra.push("--chaos-oom".to_string());
        }
        if iso.stall_key.as_deref().is_some_and(|s| key.contains(s)) {
            extra.push("--chaos-stall-ms".to_string());
            extra.push(stall_ms.to_string());
        }
        if extra.is_empty() {
            if let Some(dir) = sup.matrix.cache_dir.as_deref() {
                match cache::load_checked(dir, key) {
                    cache::CacheOutcome::Hit(report) => {
                        let mut log = RunLog {
                            verdict: if attempt > 0 {
                                RunVerdict::Retried { attempts: attempt }
                            } else {
                                RunVerdict::Ok
                            },
                            failures,
                            quarantine: None,
                            error: None,
                        };
                        log.absorb_quarantine(quarantine);
                        return (
                            Some(SupervisedRun {
                                report: *report,
                                cache_hit: true,
                                quarantined: None,
                            }),
                            log,
                        );
                    }
                    cache::CacheOutcome::Quarantined { reason, .. } => {
                        if quarantine.is_none() {
                            quarantine = Some(reason);
                        }
                    }
                    cache::CacheOutcome::Miss => {}
                }
            }
        }
        match run_attempt(iso, key, &extra, sup.watchdog) {
            ChildEnd::Report(report) => {
                if let Some(dir) = sup.matrix.cache_dir.as_deref() {
                    cache::store(dir, key, &report);
                }
                let mut log = RunLog {
                    verdict: if attempt > 0 {
                        RunVerdict::Retried { attempts: attempt }
                    } else {
                        RunVerdict::Ok
                    },
                    failures,
                    quarantine: None,
                    error: None,
                };
                log.absorb_quarantine(quarantine);
                return (
                    Some(SupervisedRun {
                        report: *report,
                        cache_hit: false,
                        quarantined: None,
                    }),
                    log,
                );
            }
            ChildEnd::OomKilled => {
                failures.push(format!(
                    "attempt {attempt}: child exceeded its address-space limit and was terminated"
                ));
                return (
                    None,
                    RunLog {
                        verdict: RunVerdict::OomKilled {
                            attempts: attempt + 1,
                        },
                        failures,
                        quarantine,
                        error: None,
                    },
                );
            }
            ChildEnd::TimedOut => {
                failures.push(format!("attempt {attempt}: watchdog timeout"));
                last = LastFailure::Timeout;
            }
            ChildEnd::Panicked(message) => {
                failures.push(format!("attempt {attempt}: panicked: {message}"));
                last = LastFailure::Panic;
            }
            ChildEnd::IpcCorrupt(message) => {
                failures.push(format!("attempt {attempt}: ipc frame rejected: {message}"));
                last = LastFailure::Ipc;
            }
            ChildEnd::Failed(message) => {
                failures.push(format!("attempt {attempt}: {message}"));
                last = LastFailure::Error(RunError::ChildFailed(message));
            }
        }
    }
    let attempts = policy.max_retries + 1;
    let (verdict, error) = match last {
        LastFailure::Timeout => (RunVerdict::TimedOut { attempts }, None),
        LastFailure::Panic => (RunVerdict::Panicked { attempts }, None),
        LastFailure::Ipc => (RunVerdict::IpcCorrupt { attempts }, None),
        LastFailure::Error(e) => (RunVerdict::Rejected, Some(e)),
    };
    (
        None,
        RunLog {
            verdict,
            failures,
            quarantine,
            error,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixOptions;
    use plp_core::retry::RetryPolicy;

    fn report_frame_roundtrip_key() -> (String, RunReport) {
        (
            format!("{}|isolate-test", cache::CACHE_FORMAT),
            RunReport::default(),
        )
    }

    #[test]
    fn report_frame_round_trips_and_rejects_corruption() {
        let (key, report) = report_frame_roundtrip_key();
        let bytes = encode_report(&key, &report);
        assert_eq!(decode_report(&key, &bytes).unwrap(), report);
        // Truncations at every prefix fail closed.
        for cut in 0..bytes.len() {
            assert!(decode_report(&key, &bytes[..cut]).is_err(), "cut {cut}");
        }
        // A flipped payload byte fails the frame checksum.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(decode_report(&key, &flipped).is_err());
        // The wrong key fails the cache codec's stored-key check.
        assert!(decode_report("some other key", &bytes).is_err());
        // Trailing garbage after a valid frame is rejected too.
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_report(&key, &trailing).is_err());
    }

    #[test]
    fn panic_messages_extract_deterministically() {
        let stderr = b"thread 'main' panicked at crates/bench/src/bin/all.rs:12:5:\n\
                       chaos: injected worker panic\n\
                       note: run with `RUST_BACKTRACE=1` environment variable to display a backtrace\n";
        assert_eq!(
            panic_message_from_stderr(stderr),
            "chaos: injected worker panic"
        );
        assert_eq!(
            panic_message_from_stderr(b"no panic shape here"),
            "child panicked (exit 101)"
        );
    }

    /// The watchdog satellite: a stalled child is SIGKILLed for real —
    /// afterwards no process with the marker survives, and no
    /// `plp-run-attempt` thread was ever spawned (process isolation
    /// replaced thread abandonment).
    #[test]
    fn tripped_watchdog_leaves_no_live_child_and_no_attempt_threads() {
        let marker = format!("plp-isolate-stall-marker-{}", std::process::id());
        let mut sup = SupervisorOptions::new(MatrixOptions::serial());
        sup.watchdog = Duration::from_millis(200);
        sup.retry = RetryPolicy::constant(1, 1000.0);
        // `sh -c 'sleep 30 # marker'` ignores the trailing protocol
        // arguments (they land in $0/$@) and sleeps far past the
        // watchdog on every attempt.
        let iso = IsolateOptions {
            exe: PathBuf::from("/bin/sh"),
            base_args: vec!["-c".to_string(), format!("sleep 30 # {marker}")],
            limits: ResourceLimits {
                address_space_bytes: None,
                cpu_secs: None,
            },
            oom_key: None,
            stall_key: None,
        };
        let (run, log) = supervise_isolated("stall-key", &sup, &iso, &[]);
        assert!(run.is_none());
        assert_eq!(log.verdict, RunVerdict::TimedOut { attempts: 2 });
        assert_eq!(
            log.failures,
            vec![
                "attempt 0: watchdog timeout".to_string(),
                "attempt 1: watchdog timeout".to_string()
            ]
        );
        // No child survived the SIGKILL: no process's cmdline still
        // carries the marker.
        assert!(
            !any_process_cmdline_contains(&marker),
            "a SIGKILLed child must not survive the sweep"
        );
        // And no abandoned attempt thread exists in this process.
        assert!(
            !any_own_thread_named("plp-run-attempt"),
            "isolated supervision must not spawn attempt threads"
        );
    }

    fn any_process_cmdline_contains(needle: &str) -> bool {
        let Ok(entries) = std::fs::read_dir("/proc") else {
            return false;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(pid) = name.to_str().filter(|n| n.bytes().all(|b| b.is_ascii_digit()))
            else {
                continue;
            };
            if pid.parse::<u32>() == Ok(std::process::id()) {
                continue;
            }
            if let Ok(cmdline) = std::fs::read(entry.path().join("cmdline")) {
                if String::from_utf8_lossy(&cmdline).contains(needle) {
                    return true;
                }
            }
        }
        false
    }

    fn any_own_thread_named(needle: &str) -> bool {
        let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
            return false;
        };
        for task in tasks.flatten() {
            if let Ok(comm) = std::fs::read_to_string(task.path().join("comm")) {
                if comm.trim() == needle {
                    return true;
                }
            }
        }
        false
    }
}
