//! The run matrix: deduplicated, parallel, cached execution of
//! `(benchmark, config, settings)` simulation requests.
//!
//! Every experiment declares the runs it needs as [`RunRequest`]s; the
//! matrix executes each *distinct* request exactly once — however many
//! figures ask for it — on a `std::thread::scope` worker pool, sharing
//! generated traces through a [`TraceStore`] and completed reports
//! through the on-disk run cache. Results are keyed, not ordered, so
//! rendered output is identical no matter how the pool schedules.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use plp_core::{RunReport, ShardTopology, ShardedSetup, SimSetup, SystemConfig};
use plp_events::stats::Throughput;
use plp_trace::{multi, spec, Trace, TraceStore};

use crate::cache;
use crate::chaos::{self, ChaosFault, ChaosPlan};
use crate::supervisor::{self, RunError, RunLog, RunVerdict, SupervisedRun, SupervisorOptions};
use crate::supervisor::DegradationReport;
use crate::RunSettings;

/// One simulation the harness wants: a benchmark trace under a
/// configuration, at a given length and seed.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// Benchmark name (one of [`spec::all_benchmarks`]).
    pub bench: String,
    /// Full system configuration.
    pub config: SystemConfig,
    /// Instructions to simulate.
    pub instructions: u64,
    /// Trace-generation seed.
    pub seed: u64,
    /// Stream/shard topology. The default unit topology is the
    /// classic unsharded simulator and leaves the cache key untouched.
    pub topology: ShardTopology,
}

impl RunRequest {
    /// A request for `bench` under `config` at `settings`, on the
    /// unsharded unit topology.
    pub fn new(bench: &str, config: SystemConfig, settings: RunSettings) -> Self {
        RunRequest {
            bench: bench.to_string(),
            config,
            instructions: settings.instructions,
            seed: settings.seed,
            topology: ShardTopology::unit(),
        }
    }

    /// The same request fanned out over `topology`.
    pub fn with_topology(mut self, topology: ShardTopology) -> Self {
        self.topology = topology;
        self
    }

    /// The canonical identity of this request: every field that can
    /// change the simulation's outcome, spelled out. Two requests with
    /// equal keys produce identical [`RunReport`]s (the simulator is
    /// deterministic), so the key doubles as the dedup key and the
    /// content address of the run cache. Unit-topology requests keep
    /// the pre-sharding key format, so existing caches carry over.
    pub fn key(&self) -> String {
        let mut key = format!(
            "{}|bench={}|instr={}|seed={}|{:?}",
            cache::CACHE_FORMAT,
            self.bench,
            self.instructions,
            self.seed,
            self.config
        );
        if !self.topology.is_unit() {
            key.push_str(&format!(
                "|streams={}|shards={}",
                self.topology.streams(),
                self.topology.shards()
            ));
        }
        key
    }
}

/// Keyed results of an executed matrix.
#[derive(Debug, Default)]
pub struct ResultSet {
    reports: HashMap<String, RunReport>,
}

impl ResultSet {
    /// The report for `request`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix never executed this request — an
    /// experiment spec whose `render` asks for a run its `requests`
    /// didn't declare.
    pub fn get(&self, request: &RunRequest) -> &RunReport {
        self.reports.get(&request.key()).unwrap_or_else(|| {
            // lint: allow(no-panic-lib) documented panic contract for a spec authoring bug
            panic!(
                "run matrix has no result for {}/{} (spec render/requests mismatch)",
                request.bench, request.config.scheme
            )
        })
    }

    /// Whether the matrix produced a report for `request`. Under
    /// degraded execution some requests may be missing — callers that
    /// must not panic check here before [`ResultSet::get`].
    pub fn contains(&self, request: &RunRequest) -> bool {
        self.reports.contains_key(&request.key())
    }

    /// Convenience lookup by parts (see [`RunRequest::new`]).
    pub fn report(&self, bench: &str, config: &SystemConfig, settings: RunSettings) -> &RunReport {
        self.get(&RunRequest::new(bench, config.clone(), settings))
    }

    /// Inserts (or replaces) the report held for `request`. Lets tests
    /// and tools re-key reports across configurations — e.g. the
    /// sanitizer determinism pin, which files sanitizer-off reports
    /// under sanitizer-on keys before rendering.
    pub fn insert(&mut self, request: &RunRequest, report: RunReport) {
        self.reports.insert(request.key(), report);
    }

    /// Iterates over `(key, report)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &RunReport)> {
        self.reports.iter()
    }

    /// Number of distinct runs held.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }
}

/// How to execute a matrix.
#[derive(Debug, Clone)]
pub struct MatrixOptions {
    /// Worker threads (1 = run serially on the calling thread).
    pub threads: usize,
    /// Run-cache directory; `None` disables the cache entirely.
    pub cache_dir: Option<PathBuf>,
}

impl MatrixOptions {
    /// Serial, uncached execution — exactly what the standalone
    /// experiment binaries do.
    pub fn serial() -> Self {
        MatrixOptions {
            threads: 1,
            cache_dir: None,
        }
    }

    /// Parallel execution with the default cache under
    /// `results/cache/`.
    pub fn parallel(threads: usize) -> Self {
        MatrixOptions {
            threads: threads.max(1),
            cache_dir: Some(default_cache_dir()),
        }
    }
}

/// The default on-disk run-cache location.
pub fn default_cache_dir() -> PathBuf {
    PathBuf::from("results").join("cache")
}

/// What executing a matrix cost.
#[derive(Debug, Clone, Copy)]
pub struct MatrixStats {
    /// Requests submitted (duplicates included).
    pub requested: usize,
    /// Distinct runs after deduplication.
    pub unique: usize,
    /// Distinct runs served from the on-disk cache.
    pub cache_hits: usize,
    /// Elapsed wall-clock for the whole matrix.
    pub elapsed: Duration,
    /// Simulation throughput summed across workers (CPU time, not
    /// elapsed time).
    pub throughput: Throughput,
}

impl MatrixStats {
    /// A one-line human summary (the harness prints it to stderr so
    /// experiment stdout stays byte-identical across serial, parallel
    /// and cached executions).
    pub fn summary(&self) -> String {
        format!(
            "{} runs ({} unique, {} cached) in {:.2}s — {:.1} runs/s, {:.2}M sim-cycles/s",
            self.requested,
            self.unique,
            self.cache_hits,
            self.elapsed.as_secs_f64(),
            self.throughput.runs_per_sec(),
            self.throughput.cycles_per_sec() / 1e6,
        )
    }
}

/// Wall-clock of one request set executed twice: a cold pass and an
/// immediately following warm pass with the same options.
///
/// With a (fresh) cache directory the cold pass simulates everything
/// and the warm pass measures pure cache-replay overhead; with the
/// cache disabled both passes simulate, and `warm` measures the
/// process-warm steady state the hot-path benchmark pins.
#[derive(Debug, Clone, Copy)]
pub struct SweepTiming {
    /// Elapsed wall-clock of the first (cold) pass.
    pub cold: Duration,
    /// Elapsed wall-clock of the second (warm) pass.
    pub warm: Duration,
    /// Distinct runs per pass after deduplication.
    pub unique_runs: usize,
}

/// Times a cold-then-warm double execution of `requests` (see
/// [`SweepTiming`]). Reports are discarded; only the wall-clock and
/// dedup statistics survive, so this never perturbs rendered output.
pub fn time_sweep(requests: &[RunRequest], opts: &MatrixOptions) -> SweepTiming {
    let (_, cold) = execute(requests, opts);
    let (_, warm) = execute(requests, opts);
    SweepTiming {
        cold: cold.elapsed,
        warm: warm.elapsed,
        unique_runs: cold.unique,
    }
}

/// Executes every distinct request exactly once under default
/// supervision and returns the keyed results plus execution
/// statistics. Anything eventful (a retried, lost or quarantined run)
/// is rendered to stderr; callers that need the structured
/// [`DegradationReport`] use [`execute_supervised`] directly.
pub fn execute(requests: &[RunRequest], opts: &MatrixOptions) -> (ResultSet, MatrixStats) {
    let sup = SupervisorOptions::new(opts.clone());
    let (results, stats, degradation) = execute_supervised(requests, &sup);
    if !degradation.is_event_free() {
        eprint!("{}", degradation.render());
    }
    (results, stats)
}

/// Everything one attempt closure needs to own (the attempt runs on
/// its own thread, so borrows of the worker's state won't do).
struct AttemptJob {
    req: RunRequest,
    key: String,
    traces: Arc<TraceStore>,
    cache_dir: Option<PathBuf>,
    faults: Vec<ChaosFault>,
    stall: Duration,
    cache_hits: Arc<AtomicUsize>,
}

impl AttemptJob {
    /// One isolated attempt: fire this attempt's chaos faults, probe
    /// the cache (quarantining anything corrupt), and simulate on a
    /// miss.
    fn run(self, attempt: u32) -> Result<SupervisedRun, RunError> {
        chaos::apply_worker_faults(&self.faults, attempt, self.stall);
        let mut quarantined = None;
        if let Some(dir) = self.cache_dir.as_deref() {
            match cache::load_checked(dir, &self.key) {
                cache::CacheOutcome::Hit(report) => {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(SupervisedRun {
                        report: *report,
                        cache_hit: true,
                        quarantined: None,
                    });
                }
                cache::CacheOutcome::Quarantined { reason, .. } => quarantined = Some(reason),
                cache::CacheOutcome::Miss => {}
            }
        }
        let report = run_request(&self.req, &self.traces)?;
        if let Some(dir) = self.cache_dir.as_deref() {
            cache::store(dir, &self.key, &report);
        }
        Ok(SupervisedRun {
            report,
            cache_hit: false,
            quarantined,
        })
    }
}

/// Executes every distinct request exactly once under full
/// supervision: panic isolation, watchdog timeouts, seeded
/// retry/backoff, cache quarantine and (optionally) chaos injection.
///
/// Returns the keyed results — possibly *partial* under unrecoverable
/// faults — plus execution statistics and the structured
/// [`DegradationReport`]. Nothing here prints; stdout for surviving
/// runs renders byte-identically to a clean run.
///
/// Determinism: the result of each run depends only on its request
/// (the simulator is seeded and pure), distinct runs share nothing,
/// results are keyed by request identity, and the chaos plan and
/// backoff schedules are pure functions of their seeds — so thread
/// count, scheduling order and cache state cannot change any report
/// or the degradation verdicts, only the wall-clock. Workers claim
/// jobs off a shared atomic index; each writes its result into that
/// job's dedicated slot.
pub fn execute_supervised(
    requests: &[RunRequest],
    sup: &SupervisorOptions,
) -> (ResultSet, MatrixStats, DegradationReport) {
    let opts = &sup.matrix;
    // lint: allow(nondeterminism) wall-clock feeds MatrixStats on stderr, never a simulation
    let started = Instant::now();

    // Deduplicate, preserving first-seen order.
    let mut unique: Vec<&RunRequest> = Vec::new();
    let mut seen: HashMap<String, usize> = HashMap::new();
    for req in requests {
        seen.entry(req.key()).or_insert_with(|| {
            unique.push(req);
            unique.len() - 1
        });
    }
    let keys: Vec<String> = unique.iter().map(|r| r.key()).collect();

    // Plan and plant chaos before any worker starts, so the fault set
    // is independent of scheduling.
    let cache_enabled = opts.cache_dir.is_some();
    let plan: Option<ChaosPlan> = sup
        .chaos
        .map(|chaos_opts| ChaosPlan::generate(chaos_opts, &keys));
    let chaos_faults = match &plan {
        Some(plan) => {
            if let Some(dir) = opts.cache_dir.as_deref() {
                plan.plant(dir);
            }
            plan.descriptions(cache_enabled)
        }
        None => Vec::new(),
    };

    let traces = Arc::new(TraceStore::new());
    let slots: Vec<OnceLock<RunReport>> = (0..unique.len()).map(|_| OnceLock::new()).collect();
    let logs: Vec<OnceLock<RunLog>> = (0..unique.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let cache_hits = Arc::new(AtomicUsize::new(0));
    let throughput = Mutex::new(Throughput::new());
    let stall = sup.chaos_stall();

    let worker = || {
        let mut local = Throughput::new();
        loop {
            let idx = next.fetch_add(1, Ordering::Relaxed);
            let Some(req) = unique.get(idx) else { break };
            let key = &keys[idx];
            // lint: allow(nondeterminism) wall-clock feeds throughput stats, never a simulation
            let run_started = Instant::now();
            let faults: Vec<ChaosFault> = plan
                .as_ref()
                .map(|p| p.for_key(key).to_vec())
                .unwrap_or_default();
            let has_worker_faults = faults.iter().any(|f| !f.class.is_cache_fault());

            // Fast path: with no worker faults planned, a clean cache
            // hit needs no attempt thread — this keeps warm-cache
            // supervision overhead at effectively zero.
            let mut pre_quarantine = None;
            let mut outcome: Option<(SupervisedRun, RunLog)> = None;
            if !has_worker_faults {
                if let Some(dir) = opts.cache_dir.as_deref() {
                    match cache::load_checked(dir, key) {
                        cache::CacheOutcome::Hit(report) => {
                            cache_hits.fetch_add(1, Ordering::Relaxed);
                            let run = SupervisedRun {
                                report: *report,
                                cache_hit: true,
                                quarantined: None,
                            };
                            outcome = Some((run, RunLog::clean()));
                        }
                        cache::CacheOutcome::Quarantined { reason, .. } => {
                            pre_quarantine = Some(reason);
                        }
                        cache::CacheOutcome::Miss => {}
                    }
                }
            }

            let (run, mut log) = match outcome {
                Some((run, log)) => (Some(run), log),
                // Isolated attempts re-exec the harness binary and
                // never share this process's traces or cache handles;
                // the in-process path keeps the thread-pool fast path.
                None => match &sup.isolation {
                    Some(iso) => crate::isolate::supervise_isolated(key, sup, iso, &faults),
                    None => supervisor::supervise(key, sup, |attempt| {
                        let job = AttemptJob {
                            req: (*req).clone(),
                            key: key.clone(),
                            traces: Arc::clone(&traces),
                            cache_dir: opts.cache_dir.clone(),
                            faults: faults.clone(),
                            stall,
                            cache_hits: Arc::clone(&cache_hits),
                        };
                        Box::new(move || job.run(attempt))
                    }),
                },
            };
            log.absorb_quarantine(pre_quarantine);
            if let Some(run) = run {
                local.record(run.report.total_cycles.get(), run_started.elapsed());
                let _ = slots[idx].set(run.report);
            }
            let _ = logs[idx].set(log);
        }
        throughput
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .merge(local);
    };

    if opts.threads <= 1 {
        worker();
    } else {
        std::thread::scope(|s| {
            for _ in 0..opts.threads.min(unique.len().max(1)) {
                s.spawn(worker);
            }
        });
    }

    let mut degradation = DegradationReport::new(chaos_faults);
    let mut reports = HashMap::with_capacity(unique.len());
    for ((key, slot), log) in keys.iter().zip(slots).zip(logs) {
        if let Some(report) = slot.into_inner() {
            reports.insert(key.clone(), report);
        }
        let log = log.into_inner().unwrap_or_else(|| RunLog {
            verdict: RunVerdict::Rejected,
            failures: vec!["worker never reported a verdict".to_string()],
            quarantine: None,
            error: None,
        });
        degradation.record(key, log);
    }
    let stats = MatrixStats {
        requested: requests.len(),
        unique: seen.len(),
        cache_hits: cache_hits.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
        throughput: throughput
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner),
    };
    (ResultSet { reports }, stats, degradation)
}

/// Runs one request in the calling process with a private trace
/// store — the isolated child's (`--run-one`) whole job. No cache, no
/// supervision: the parent owns both.
///
/// # Errors
///
/// Returns a typed [`RunError`] for spec bugs — an unknown benchmark
/// name or an invalid configuration.
pub fn run_single(req: &RunRequest) -> Result<RunReport, RunError> {
    run_request(req, &TraceStore::new())
}

/// Runs one request, sharing its trace through `traces`.
///
/// # Errors
///
/// Returns a typed [`RunError`] for spec bugs — an unknown benchmark
/// name or an invalid configuration — which the supervisor records as
/// a [`RunVerdict::Rejected`] instead of panicking the worker.
fn run_request(req: &RunRequest, traces: &TraceStore) -> Result<RunReport, RunError> {
    let profile = spec::benchmark(&req.bench)
        .ok_or_else(|| RunError::UnknownBenchmark(req.bench.clone()))?;
    let setup = SimSetup::for_profile(req.config.clone(), &profile, req.seed)
        .map_err(RunError::InvalidConfig)?;
    if req.topology.is_unit() {
        let trace = traces.get(&profile, req.instructions, req.seed);
        return Ok(setup.run(&trace));
    }
    // Sharded: one trace per stream, each memoized in the shared store
    // under its derived seed (stream 0 reuses the unsharded entry).
    let stream_traces: Vec<Arc<Trace>> = (0..req.topology.streams())
        .map(|s| traces.get(&profile, req.instructions, multi::stream_seed(req.seed, s)))
        .collect();
    let refs: Vec<&Trace> = stream_traces.iter().map(|t| t.as_ref()).collect();
    Ok(ShardedSetup::new(setup, req.topology).run(&refs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use plp_core::{run_benchmark, UpdateScheme};

    fn tiny() -> RunSettings {
        RunSettings {
            instructions: 3_000,
            seed: 5,
        }
    }

    #[test]
    fn matrix_matches_direct_runs_and_dedupes() {
        let s = tiny();
        let cfg = SystemConfig::for_scheme(UpdateScheme::Sp);
        let reqs = vec![
            RunRequest::new("gcc", cfg.clone(), s),
            RunRequest::new("milc", cfg.clone(), s),
            RunRequest::new("gcc", cfg.clone(), s), // duplicate
        ];
        let (results, stats) = execute(&reqs, &MatrixOptions::serial());
        assert_eq!(stats.requested, 3);
        assert_eq!(stats.unique, 2);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(results.len(), 2);
        let direct = run_benchmark(
            &spec::benchmark("gcc").unwrap(),
            &cfg,
            s.instructions,
            s.seed,
        );
        assert_eq!(*results.report("gcc", &cfg, s), direct);
    }

    #[test]
    fn parallel_execution_equals_serial() {
        let s = tiny();
        let mut reqs = Vec::new();
        for scheme in UpdateScheme::all() {
            for bench in ["gcc", "milc", "astar"] {
                reqs.push(RunRequest::new(
                    bench,
                    SystemConfig::for_scheme(scheme),
                    s,
                ));
            }
        }
        let (serial, _) = execute(&reqs, &MatrixOptions::serial());
        let (parallel, _) = execute(
            &reqs,
            &MatrixOptions {
                threads: 4,
                cache_dir: None,
            },
        );
        for req in &reqs {
            assert_eq!(serial.get(req), parallel.get(req), "{}", req.key());
        }
    }

    #[test]
    fn distinct_settings_have_distinct_keys() {
        let cfg = SystemConfig::for_scheme(UpdateScheme::O3);
        let a = RunRequest::new("gcc", cfg.clone(), tiny());
        let mut other = tiny();
        other.seed = 6;
        let b = RunRequest::new("gcc", cfg.clone(), other);
        let mut cfg2 = cfg.clone();
        cfg2.epoch_size = 64;
        let c = RunRequest::new("gcc", cfg2, tiny());
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
    }

    #[test]
    #[should_panic(expected = "no result")]
    fn missing_result_is_loud() {
        let results = ResultSet::default();
        let _ = results.report(
            "gcc",
            &SystemConfig::for_scheme(UpdateScheme::Sp),
            tiny(),
        );
    }
}
