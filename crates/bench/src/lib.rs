//! Shared support for the experiment harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §4 for the experiment index) by looking its
//! [`ExperimentSpec`] up in the declarative registry ([`specs`]) and
//! handing it to [`run_spec`]. The `all` binary executes every spec's
//! requests through one deduplicated, parallel, disk-cached run
//! [`matrix`]. This library holds the common machinery: run settings,
//! the matrix and cache, table formatting and geometric means.

pub mod cache;
pub mod chaos;
pub mod crash;
pub mod isolate;
pub mod matrix;
pub mod specs;
pub mod supervisor;

use plp_core::{run_benchmark, RunReport, SystemConfig};
use plp_events::stats::geometric_mean;
use plp_trace::{spec, WorkloadProfile};

pub use chaos::{ChaosOptions, ChaosPlan};
pub use crash::{ChildSpec, HarnessOptions, HarnessReport};
pub use isolate::{IsolateOptions, ResourceLimits};
pub use matrix::{
    execute, execute_supervised, default_cache_dir, time_sweep, MatrixOptions, MatrixStats,
    ResultSet, RunRequest, SweepTiming,
};
pub use specs::{all_specs, shard_spec, ExperimentSpec};
pub use supervisor::{DegradationReport, RunError, RunVerdict, SupervisorOptions};

/// Harness-wide run settings, parsed from the command line.
///
/// Every experiment binary accepts `[instructions] [seed]` positional
/// arguments; the defaults (400k instructions, seed 7) regenerate the
/// numbers quoted in `EXPERIMENTS.md` in a couple of minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSettings {
    /// Instructions per benchmark run.
    pub instructions: u64,
    /// Trace-generation seed.
    pub seed: u64,
}

impl Default for RunSettings {
    fn default() -> Self {
        RunSettings {
            instructions: 400_000,
            seed: 7,
        }
    }
}

impl RunSettings {
    /// Parses `[instructions] [seed]` from `std::env::args`.
    pub fn from_args() -> Self {
        let mut s = RunSettings::default();
        let mut args = std::env::args().skip(1);
        if let Some(n) = args.next().and_then(|a| a.parse().ok()) {
            s.instructions = n;
        }
        if let Some(n) = args.next().and_then(|a| a.parse().ok()) {
            s.seed = n;
        }
        s
    }
}

/// Runs one benchmark under one configuration.
pub fn run(profile: &WorkloadProfile, config: &SystemConfig, settings: RunSettings) -> RunReport {
    run_benchmark(profile, config, settings.instructions, settings.seed)
}

/// Runs every SPEC benchmark under `make_config`, returning
/// `(profile, report)` pairs in the paper's benchmark order.
pub fn run_all(
    settings: RunSettings,
    make_config: impl Fn(&WorkloadProfile) -> SystemConfig,
) -> Vec<(WorkloadProfile, RunReport)> {
    spec::all_benchmarks()
        .into_iter()
        .map(|p| {
            let config = make_config(&p);
            let report = run(&p, &config, settings);
            (p, report)
        })
        .collect()
}

/// A results table: one row per benchmark, one column per series,
/// with an automatic geometric-mean footer — the shape of every figure
/// in the paper's evaluation.
#[derive(Debug, Clone)]
pub struct SeriesTable {
    row_header: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    precision: usize,
}

impl SeriesTable {
    /// Creates a table with the given row-header label and column
    /// names.
    pub fn new(row_header: &str, columns: &[&str]) -> Self {
        SeriesTable {
            row_header: row_header.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            precision: 2,
        }
    }

    /// Sets how many decimals values print with.
    pub fn precision(mut self, digits: usize) -> Self {
        self.precision = digits;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push(&mut self, name: &str, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push((name.to_string(), values));
    }

    /// Geometric mean of one column across all rows, if well defined.
    pub fn column_gmean(&self, col: usize) -> Option<f64> {
        let values: Vec<f64> = self.rows.iter().map(|(_, v)| v[col]).collect();
        geometric_mean(&values)
    }

    /// Renders the table, gmean footer included.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<11}", self.row_header));
        for c in &self.columns {
            out.push_str(&format!(" {:>9}", c));
        }
        out.push('\n');
        for (name, values) in &self.rows {
            out.push_str(&format!("{:<11}", name));
            for v in values {
                out.push_str(&format!(" {:>9.*}", self.precision, v));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<11}", "gmean"));
        for col in 0..self.columns.len() {
            match self.column_gmean(col) {
                Some(g) => out.push_str(&format!(" {:>9.*}", self.precision, g)),
                None => out.push_str(&format!(" {:>9}", "-")),
            }
        }
        out.push('\n');
        out
    }
}

/// The standard experiment banner as a string.
pub fn banner_string(id: &str, what: &str, settings: RunSettings) -> String {
    format!(
        "== {id}: {what}\n   ({} instructions per benchmark, seed {})\n\n",
        settings.instructions, settings.seed
    )
}

/// Prints a standard experiment banner.
pub fn banner(id: &str, what: &str, settings: RunSettings) {
    print!("{}", banner_string(id, what, settings));
}

/// The whole standalone-binary behaviour of one experiment: parse
/// `[instructions] [seed]` from the command line, execute the spec's
/// run matrix serially and uncached (exactly what the hand-rolled
/// binaries did), and print the artefact to stdout. Execution
/// statistics go to stderr so stdout stays byte-identical to the
/// pre-registry binaries.
pub fn run_spec(spec: &ExperimentSpec) {
    let raw = RunSettings::from_args();
    let requests = spec.runs_needed(raw);
    let (results, stats) = matrix::execute(&requests, &MatrixOptions::serial());
    print!("{}", spec.output(&results, raw));
    eprintln!("[plp-bench] {}: {}", spec.id, stats.summary());
}

#[cfg(test)]
mod tests {
    use super::*;
    use plp_core::UpdateScheme;

    #[test]
    fn settings_defaults() {
        let s = RunSettings::default();
        assert_eq!(s.instructions, 400_000);
        assert_eq!(s.seed, 7);
    }

    #[test]
    fn table_renders_with_gmean() {
        let mut t = SeriesTable::new("bench", &["a", "b"]);
        t.push("x", vec![1.0, 4.0]);
        t.push("y", vec![4.0, 1.0]);
        let s = t.render();
        assert!(s.contains("bench"));
        assert!(s.contains("gmean"));
        assert!((t.column_gmean(0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = SeriesTable::new("bench", &["a", "b"]);
        t.push("x", vec![1.0]);
    }

    #[test]
    fn run_all_covers_every_benchmark() {
        let settings = RunSettings {
            instructions: 2_000,
            seed: 1,
        };
        let results = run_all(settings, |_| {
            SystemConfig::for_scheme(UpdateScheme::SecureWb)
        });
        assert_eq!(results.len(), 15);
        assert!(results.iter().all(|(_, r)| r.instructions >= 2_000));
    }
}
