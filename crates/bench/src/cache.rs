//! The content-addressed on-disk run cache.
//!
//! A completed [`RunReport`] is a pure function of its request key
//! (benchmark, configuration, instruction count, seed — see
//! [`crate::RunRequest::key`]), so it can be stored on disk and reused
//! by any later invocation with the same key. Files live under
//! `results/cache/<fnv1a64(key)>.run` in a line-oriented
//! `field value…` text format (the vendored serde stack is offline
//! stubs, so the codec is hand-rolled and versioned by
//! [`CACHE_FORMAT`], which is folded into every key: bumping it — or
//! changing `SystemConfig`'s shape, which changes the key's `Debug`
//! rendering — invalidates all previous entries).
//!
//! Robustness: the full key is stored in the file and verified on
//! load, so a hash collision or a stale/corrupt file degrades to a
//! cache miss, never a wrong result. Only reports without per-persist
//! records are cached (`record_persists` runs are memory-heavy and
//! used by crash analyses that need the records anyway).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use plp_cache::CacheStats;
use plp_core::sanitizer::{SanitizerMode, Violation, ViolationKind};
use plp_core::{EpochId, RunReport, UpdateScheme};
use plp_events::Cycle;
use plp_nvm::NvmStats;

/// Cache format version; part of every content address.
pub const CACHE_FORMAT: &str = "plp-run-cache v2";

/// 64-bit FNV-1a of `key` — the content address.
pub fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The file a key's report is stored in.
pub fn cache_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{:016x}.run", key_hash(key)))
}

fn encode_cache_stats(out: &mut String, name: &str, s: &CacheStats) {
    let _ = writeln!(
        out,
        "{name} {} {} {} {}",
        s.hits, s.misses, s.evictions, s.dirty_evictions
    );
}

/// Serializes `report` for `key`.
///
/// # Panics
///
/// Panics if the report carries per-persist records — callers must
/// only cache record-free runs.
pub fn encode(key: &str, report: &RunReport) -> String {
    assert!(
        report.records.is_empty(),
        "runs with persist records are not cacheable"
    );
    let mut out = String::new();
    let _ = writeln!(out, "{CACHE_FORMAT}");
    let _ = writeln!(out, "key {key}");
    let _ = writeln!(out, "total_cycles {}", report.total_cycles.get());
    let _ = writeln!(out, "instructions {}", report.instructions);
    let _ = writeln!(out, "persists {}", report.persists);
    let _ = writeln!(out, "writebacks {}", report.writebacks);
    let _ = writeln!(out, "epochs {}", report.epochs);
    let _ = writeln!(
        out,
        "engine {} {} {}",
        report.engine.node_updates, report.engine.bmt_fetches, report.engine.persists
    );
    let _ = writeln!(
        out,
        "coalesced_saved_updates {}",
        report.coalesced_saved_updates
    );
    let _ = writeln!(out, "page_overflows {}", report.page_overflows);
    let _ = writeln!(out, "overflow_blocks {}", report.overflow_blocks);
    let _ = writeln!(out, "wpq_stall_cycles {}", report.wpq_stall_cycles);
    let _ = writeln!(out, "wpq_peak {}", report.wpq_peak);
    encode_cache_stats(&mut out, "metadata.counter", &report.metadata.counter);
    encode_cache_stats(&mut out, "metadata.mac", &report.metadata.mac);
    encode_cache_stats(&mut out, "metadata.bmt", &report.metadata.bmt);
    for (i, c) in report.data_caches.iter().enumerate() {
        encode_cache_stats(&mut out, &format!("data_caches.{i}"), c);
    }
    let n = &report.nvm;
    let _ = writeln!(
        out,
        "nvm {} {} {} {} {} {} {} {}",
        n.reads,
        n.writes,
        n.writes_combined,
        n.row_hits,
        n.row_misses,
        n.queue_stall_cycles,
        n.read_retries,
        n.read_failures
    );
    let s = &report.sanitizer;
    let _ = writeln!(
        out,
        "sanitizer {} {} {} {} {} {}",
        s.mode.name(),
        s.checked_persists,
        s.checked_node_updates,
        s.checked_epochs,
        s.dropped_violations,
        s.violations.len()
    );
    for v in &s.violations {
        let _ = writeln!(
            out,
            "violation {} {} {} {} {} {} {} {}",
            v.kind.name(),
            v.scheme.name(),
            v.cycle.get(),
            v.epoch.0,
            v.persist,
            v.level,
            v.node,
            v.addr
        );
    }
    out.push_str("end\n");
    out
}

struct Parser<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> Parser<'a> {
    /// Next line's fields after asserting its leading tag.
    fn fields(&mut self, tag: &str) -> Option<Vec<&'a str>> {
        let line = self.lines.next()?;
        let rest = line.strip_prefix(tag)?.strip_prefix(' ')?;
        Some(rest.split(' ').collect())
    }

    fn u64_field(&mut self, tag: &str) -> Option<u64> {
        match self.fields(tag)?.as_slice() {
            [v] => v.parse().ok(),
            _ => None,
        }
    }

    fn cache_stats(&mut self, tag: &str) -> Option<CacheStats> {
        let f = self.fields(tag)?;
        let v: Vec<u64> = f.iter().map(|s| s.parse().ok()).collect::<Option<_>>()?;
        match v.as_slice() {
            [hits, misses, evictions, dirty] => Some(CacheStats {
                hits: *hits,
                misses: *misses,
                evictions: *evictions,
                dirty_evictions: *dirty,
            }),
            _ => None,
        }
    }
}

/// Deserializes a report, verifying format version and stored key.
/// Any mismatch — truncation, corruption, version skew, hash
/// collision — returns `None` (a cache miss).
pub fn decode(key: &str, text: &str) -> Option<RunReport> {
    let mut p = Parser {
        lines: text.lines(),
    };
    if p.lines.next()? != CACHE_FORMAT {
        return None;
    }
    if p.lines.next()?.strip_prefix("key ")? != key {
        return None;
    }
    let mut report = RunReport {
        total_cycles: Cycle::new(p.u64_field("total_cycles")?),
        instructions: p.u64_field("instructions")?,
        persists: p.u64_field("persists")?,
        writebacks: p.u64_field("writebacks")?,
        epochs: p.u64_field("epochs")?,
        ..RunReport::default()
    };
    match p.fields("engine")?.as_slice() {
        [a, b, c] => {
            report.engine.node_updates = a.parse().ok()?;
            report.engine.bmt_fetches = b.parse().ok()?;
            report.engine.persists = c.parse().ok()?;
        }
        _ => return None,
    }
    report.coalesced_saved_updates = p.u64_field("coalesced_saved_updates")?;
    report.page_overflows = p.u64_field("page_overflows")?;
    report.overflow_blocks = p.u64_field("overflow_blocks")?;
    report.wpq_stall_cycles = p.u64_field("wpq_stall_cycles")?;
    report.wpq_peak = p.u64_field("wpq_peak")? as usize;
    report.metadata.counter = p.cache_stats("metadata.counter")?;
    report.metadata.mac = p.cache_stats("metadata.mac")?;
    report.metadata.bmt = p.cache_stats("metadata.bmt")?;
    for i in 0..3 {
        report.data_caches[i] = p.cache_stats(&format!("data_caches.{i}"))?;
    }
    let f = p.fields("nvm")?;
    let v: Vec<u64> = f.iter().map(|s| s.parse().ok()).collect::<Option<_>>()?;
    report.nvm = match v.as_slice() {
        [reads, writes, combined, row_hits, row_misses, stall, retries, failures] => NvmStats {
            reads: *reads,
            writes: *writes,
            writes_combined: *combined,
            row_hits: *row_hits,
            row_misses: *row_misses,
            queue_stall_cycles: *stall,
            read_retries: *retries,
            read_failures: *failures,
        },
        _ => return None,
    };
    let s = p.fields("sanitizer")?;
    let [mode, counters @ ..] = s.as_slice() else {
        return None;
    };
    report.sanitizer.mode = SanitizerMode::parse(mode)?;
    let c: Vec<u64> = counters
        .iter()
        .map(|s| s.parse().ok())
        .collect::<Option<_>>()?;
    let [persists, node_updates, sealed_epochs, dropped, n_violations] = c.as_slice() else {
        return None;
    };
    report.sanitizer.checked_persists = *persists;
    report.sanitizer.checked_node_updates = *node_updates;
    report.sanitizer.checked_epochs = *sealed_epochs;
    report.sanitizer.dropped_violations = *dropped;
    for _ in 0..*n_violations {
        let f = p.fields("violation")?;
        let [kind, scheme, rest @ ..] = f.as_slice() else {
            return None;
        };
        let v: Vec<u64> = rest.iter().map(|s| s.parse().ok()).collect::<Option<_>>()?;
        let [cycle, epoch, persist, level, node, addr] = v.as_slice() else {
            return None;
        };
        report.sanitizer.violations.push(Violation {
            kind: ViolationKind::parse(kind)?,
            scheme: UpdateScheme::parse(scheme)?,
            cycle: Cycle::new(*cycle),
            epoch: EpochId(*epoch),
            persist: *persist,
            level: u32::try_from(*level).ok()?,
            node: *node,
            addr: *addr,
        });
    }
    if p.lines.next()? != "end" {
        return None;
    }
    Some(report)
}

/// Loads the cached report for `key`, or `None` on miss/corruption.
pub fn load(dir: &Path, key: &str) -> Option<RunReport> {
    let text = std::fs::read_to_string(cache_path(dir, key)).ok()?;
    decode(key, &text)
}

/// Stores `report` under `key`, creating the directory as needed.
/// Failures are reported to stderr but never fail the run — the cache
/// is an accelerator, not a dependency. Reports with persist records
/// are silently skipped.
pub fn store(dir: &Path, key: &str, report: &RunReport) {
    if !report.records.is_empty() {
        return;
    }
    let path = cache_path(dir, key);
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        // Write-then-rename so a crashed/killed harness never leaves a
        // torn entry behind at the final path.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, encode(key, report))?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    };
    if let Err(e) = write() {
        eprintln!("[plp-bench] run-cache write failed for {path:?}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plp_core::{run_benchmark, SystemConfig, UpdateScheme};
    use plp_trace::spec;

    fn sample() -> (String, RunReport) {
        let profile = spec::benchmark("gcc").unwrap();
        let cfg = SystemConfig::for_scheme(UpdateScheme::Coalescing);
        let report = run_benchmark(&profile, &cfg, 3_000, 5);
        (format!("{CACHE_FORMAT}|demo|{:?}", cfg), report)
    }

    #[test]
    fn roundtrip_is_lossless() {
        let (key, report) = sample();
        let text = encode(&key, &report);
        assert_eq!(decode(&key, &text), Some(report));
    }

    #[test]
    fn sanitizer_violations_roundtrip() {
        let (key, mut report) = sample();
        report.sanitizer.dropped_violations = 2;
        report.sanitizer.violations.push(Violation {
            kind: ViolationKind::WawHazard,
            scheme: UpdateScheme::O3,
            cycle: Cycle::new(123),
            epoch: EpochId(4),
            persist: plp_core::sanitizer::NO_FIELD,
            level: 3,
            node: 17,
            addr: 0x40,
        });
        let text = encode(&key, &report);
        assert_eq!(decode(&key, &text), Some(report));
    }

    #[test]
    fn wrong_key_and_corruption_are_misses() {
        let (key, report) = sample();
        let text = encode(&key, &report);
        assert_eq!(decode("other key", &text), None);
        // Truncations at any line boundary must degrade to a miss.
        let lines: Vec<&str> = text.lines().collect();
        for keep in 0..lines.len() {
            let truncated = lines[..keep].join("\n");
            assert_eq!(decode(&key, &truncated), None, "kept {keep} lines");
        }
        assert_eq!(decode(&key, &text.replace("persists", "persits")), None);
    }

    #[test]
    fn disk_roundtrip() {
        let (key, report) = sample();
        let dir = std::env::temp_dir().join(format!("plp-cache-test-{}", std::process::id()));
        assert_eq!(load(&dir, &key), None);
        store(&dir, &key, &report);
        assert_eq!(load(&dir, &key), Some(report));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hash_is_stable() {
        // FNV-1a reference value: hashing must never drift across
        // refactors, or every cache entry silently invalidates.
        assert_eq!(key_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(key_hash("a"), 0xaf63_dc4c_8601_ec8c);
    }
}
