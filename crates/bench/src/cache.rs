//! The content-addressed on-disk run cache.
//!
//! A completed [`RunReport`] is a pure function of its request key
//! (benchmark, configuration, instruction count, seed — see
//! [`crate::RunRequest::key`]), so it can be stored on disk and reused
//! by any later invocation with the same key. Files live under
//! `results/cache/<fnv1a64(key)>.run` in a line-oriented
//! `field value…` text format (the vendored serde stack is offline
//! stubs, so the codec is hand-rolled and versioned by
//! [`CACHE_FORMAT`], which is folded into every key: bumping it — or
//! changing `SystemConfig`'s shape, which changes the key's `Debug`
//! rendering — invalidates all previous entries).
//!
//! Robustness: the full key is stored in the file and verified on
//! load, and the whole entry carries an FNV-1a content checksum, so a
//! hash collision, a truncated write, or a flipped bit degrades to a
//! quarantined entry ([`load_checked`]) and a regeneration — never a
//! wrong result and never a harness abort. Rejected entries are moved
//! to `<cache>/quarantine/` so operators can inspect what corrupted
//! them. Only reports without per-persist records are cached
//! (`record_persists` runs are memory-heavy and used by crash analyses
//! that need the records anyway).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use plp_cache::CacheStats;
use plp_core::sanitizer::{SanitizerMode, Violation, ViolationKind};
use plp_core::{EpochId, RunReport, UpdateScheme};
use plp_events::Cycle;
use plp_nvm::NvmStats;

/// Cache format version; part of every content address. v3 added the
/// trailing content checksum (value corruption inside a numeric field
/// re-parses cleanly, so stored-key verification alone cannot catch
/// it).
pub const CACHE_FORMAT: &str = "plp-run-cache v3";

/// 64-bit FNV-1a of `key` — the content address.
pub fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The file a key's report is stored in.
pub fn cache_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{:016x}.run", key_hash(key)))
}

fn encode_cache_stats(out: &mut String, name: &str, s: &CacheStats) {
    let _ = writeln!(
        out,
        "{name} {} {} {} {}",
        s.hits, s.misses, s.evictions, s.dirty_evictions
    );
}

/// Serializes `report` for `key`.
///
/// # Panics
///
/// Panics if the report carries per-persist records — callers must
/// only cache record-free runs.
pub fn encode(key: &str, report: &RunReport) -> String {
    assert!(
        report.records.is_empty(),
        "runs with persist records are not cacheable"
    );
    let mut out = String::new();
    let _ = writeln!(out, "{CACHE_FORMAT}");
    let _ = writeln!(out, "key {key}");
    let _ = writeln!(out, "total_cycles {}", report.total_cycles.get());
    let _ = writeln!(out, "instructions {}", report.instructions);
    let _ = writeln!(out, "persists {}", report.persists);
    let _ = writeln!(out, "writebacks {}", report.writebacks);
    let _ = writeln!(out, "epochs {}", report.epochs);
    let _ = writeln!(
        out,
        "engine {} {} {}",
        report.engine.node_updates, report.engine.bmt_fetches, report.engine.persists
    );
    let _ = writeln!(
        out,
        "coalesced_saved_updates {}",
        report.coalesced_saved_updates
    );
    let _ = writeln!(out, "page_overflows {}", report.page_overflows);
    let _ = writeln!(out, "overflow_blocks {}", report.overflow_blocks);
    let _ = writeln!(out, "wpq_stall_cycles {}", report.wpq_stall_cycles);
    let _ = writeln!(out, "wpq_peak {}", report.wpq_peak);
    encode_cache_stats(&mut out, "metadata.counter", &report.metadata.counter);
    encode_cache_stats(&mut out, "metadata.mac", &report.metadata.mac);
    encode_cache_stats(&mut out, "metadata.bmt", &report.metadata.bmt);
    for (i, c) in report.data_caches.iter().enumerate() {
        encode_cache_stats(&mut out, &format!("data_caches.{i}"), c);
    }
    let n = &report.nvm;
    let _ = writeln!(
        out,
        "nvm {} {} {} {} {} {} {} {}",
        n.reads,
        n.writes,
        n.writes_combined,
        n.row_hits,
        n.row_misses,
        n.queue_stall_cycles,
        n.read_retries,
        n.read_failures
    );
    let s = &report.sanitizer;
    let _ = writeln!(
        out,
        "sanitizer {} {} {} {} {} {}",
        s.mode.name(),
        s.checked_persists,
        s.checked_node_updates,
        s.checked_epochs,
        s.dropped_violations,
        s.violations.len()
    );
    for v in &s.violations {
        let _ = writeln!(
            out,
            "violation {} {} {} {} {} {} {} {}",
            v.kind.name(),
            v.scheme.name(),
            v.cycle.get(),
            v.epoch.0,
            v.persist,
            v.level,
            v.node,
            v.addr
        );
    }
    let _ = writeln!(out, "checksum {:016x}", key_hash(&out));
    out.push_str("end\n");
    out
}

/// Why a cache entry was rejected by [`decode_checked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheFault {
    /// The file's format line is not [`CACHE_FORMAT`].
    Version,
    /// The stored key is not the requested key (hash collision or a
    /// file renamed into the wrong address).
    KeyMismatch,
    /// The content checksum does not cover the bytes on disk — a
    /// flipped bit or a partially overwritten entry.
    ChecksumMismatch,
    /// The entry ends before its `end` terminator — a torn write or a
    /// short read.
    Truncated,
    /// The entry is structurally unparseable.
    Malformed,
}

impl std::fmt::Display for CacheFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheFault::Version => write!(f, "format version mismatch"),
            CacheFault::KeyMismatch => write!(f, "stored-key verification failed"),
            CacheFault::ChecksumMismatch => write!(f, "content checksum mismatch"),
            CacheFault::Truncated => write!(f, "truncated entry"),
            CacheFault::Malformed => write!(f, "malformed entry"),
        }
    }
}

struct Parser<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> Parser<'a> {
    /// Next line's fields after asserting its leading tag.
    fn fields(&mut self, tag: &str) -> Option<Vec<&'a str>> {
        let line = self.lines.next()?;
        let rest = line.strip_prefix(tag)?.strip_prefix(' ')?;
        Some(rest.split(' ').collect())
    }

    fn u64_field(&mut self, tag: &str) -> Option<u64> {
        match self.fields(tag)?.as_slice() {
            [v] => v.parse().ok(),
            _ => None,
        }
    }

    fn cache_stats(&mut self, tag: &str) -> Option<CacheStats> {
        let f = self.fields(tag)?;
        let v: Vec<u64> = f.iter().map(|s| s.parse().ok()).collect::<Option<_>>()?;
        match v.as_slice() {
            [hits, misses, evictions, dirty] => Some(CacheStats {
                hits: *hits,
                misses: *misses,
                evictions: *evictions,
                dirty_evictions: *dirty,
            }),
            _ => None,
        }
    }
}

/// Deserializes a report, verifying format version and stored key.
/// Any mismatch — truncation, corruption, version skew, hash
/// collision — returns `None` (a cache miss). See [`decode_checked`]
/// for the verdict-bearing form the supervised harness uses.
pub fn decode(key: &str, text: &str) -> Option<RunReport> {
    decode_checked(key, text).ok()
}

/// Verifies the entry's integrity envelope: it must terminate with
/// `checksum <fnv1a64-of-preceding-bytes>` + `end`, and the checksum
/// must match what is on disk.
fn verify_checksum(text: &str) -> Result<(), CacheFault> {
    let without_end = text
        .strip_suffix("end\n")
        .or_else(|| text.strip_suffix("end"))
        .ok_or(CacheFault::Truncated)?;
    let idx = without_end
        .rfind("\nchecksum ")
        .ok_or(CacheFault::Truncated)?;
    let body = &without_end[..idx + 1];
    let stored = without_end[idx + 1..]
        .strip_prefix("checksum ")
        .map(str::trim_end)
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or(CacheFault::Malformed)?;
    if key_hash(body) != stored {
        return Err(CacheFault::ChecksumMismatch);
    }
    Ok(())
}

/// [`decode`], but reporting *why* an entry was rejected so the run
/// supervisor can distinguish a plain miss from corruption worth
/// quarantining.
///
/// # Errors
///
/// Returns the [`CacheFault`] describing the first integrity check the
/// entry failed.
pub fn decode_checked(key: &str, text: &str) -> Result<RunReport, CacheFault> {
    let mut p = Parser {
        lines: text.lines(),
    };
    if p.lines.next().ok_or(CacheFault::Truncated)? != CACHE_FORMAT {
        return Err(CacheFault::Version);
    }
    verify_checksum(text)?;
    let stored_key = p
        .lines
        .next()
        .and_then(|l| l.strip_prefix("key "))
        .ok_or(CacheFault::Malformed)?;
    if stored_key != key {
        return Err(CacheFault::KeyMismatch);
    }
    parse_body(&mut p).ok_or(CacheFault::Malformed)
}

/// Parses everything after the format and key lines. Returns `None`
/// on any structural mismatch (the caller has already checksummed the
/// bytes, so a failure here is a codec bug or a forged entry).
fn parse_body(p: &mut Parser<'_>) -> Option<RunReport> {
    let mut report = RunReport {
        total_cycles: Cycle::new(p.u64_field("total_cycles")?),
        instructions: p.u64_field("instructions")?,
        persists: p.u64_field("persists")?,
        writebacks: p.u64_field("writebacks")?,
        epochs: p.u64_field("epochs")?,
        ..RunReport::default()
    };
    match p.fields("engine")?.as_slice() {
        [a, b, c] => {
            report.engine.node_updates = a.parse().ok()?;
            report.engine.bmt_fetches = b.parse().ok()?;
            report.engine.persists = c.parse().ok()?;
        }
        _ => return None,
    }
    report.coalesced_saved_updates = p.u64_field("coalesced_saved_updates")?;
    report.page_overflows = p.u64_field("page_overflows")?;
    report.overflow_blocks = p.u64_field("overflow_blocks")?;
    report.wpq_stall_cycles = p.u64_field("wpq_stall_cycles")?;
    report.wpq_peak = p.u64_field("wpq_peak")? as usize;
    report.metadata.counter = p.cache_stats("metadata.counter")?;
    report.metadata.mac = p.cache_stats("metadata.mac")?;
    report.metadata.bmt = p.cache_stats("metadata.bmt")?;
    for i in 0..3 {
        report.data_caches[i] = p.cache_stats(&format!("data_caches.{i}"))?;
    }
    let f = p.fields("nvm")?;
    let v: Vec<u64> = f.iter().map(|s| s.parse().ok()).collect::<Option<_>>()?;
    report.nvm = match v.as_slice() {
        [reads, writes, combined, row_hits, row_misses, stall, retries, failures] => NvmStats {
            reads: *reads,
            writes: *writes,
            writes_combined: *combined,
            row_hits: *row_hits,
            row_misses: *row_misses,
            queue_stall_cycles: *stall,
            read_retries: *retries,
            read_failures: *failures,
        },
        _ => return None,
    };
    let s = p.fields("sanitizer")?;
    let [mode, counters @ ..] = s.as_slice() else {
        return None;
    };
    report.sanitizer.mode = SanitizerMode::parse(mode)?;
    let c: Vec<u64> = counters
        .iter()
        .map(|s| s.parse().ok())
        .collect::<Option<_>>()?;
    let [persists, node_updates, sealed_epochs, dropped, n_violations] = c.as_slice() else {
        return None;
    };
    report.sanitizer.checked_persists = *persists;
    report.sanitizer.checked_node_updates = *node_updates;
    report.sanitizer.checked_epochs = *sealed_epochs;
    report.sanitizer.dropped_violations = *dropped;
    for _ in 0..*n_violations {
        let f = p.fields("violation")?;
        let [kind, scheme, rest @ ..] = f.as_slice() else {
            return None;
        };
        let v: Vec<u64> = rest.iter().map(|s| s.parse().ok()).collect::<Option<_>>()?;
        let [cycle, epoch, persist, level, node, addr] = v.as_slice() else {
            return None;
        };
        report.sanitizer.violations.push(Violation {
            kind: ViolationKind::parse(kind)?,
            scheme: UpdateScheme::parse(scheme)?,
            cycle: Cycle::new(*cycle),
            epoch: EpochId(*epoch),
            persist: *persist,
            level: u32::try_from(*level).ok()?,
            node: *node,
            addr: *addr,
        });
    }
    let _ = p.fields("checksum")?;
    if p.lines.next()? != "end" {
        return None;
    }
    Some(report)
}

/// The directory rejected entries are moved to.
pub fn quarantine_dir(dir: &Path) -> PathBuf {
    dir.join("quarantine")
}

/// Moves a rejected entry into the quarantine directory, returning the
/// destination. A name collision (the same address quarantined twice)
/// gets a numeric suffix; if the move itself fails the entry is
/// deleted instead — a corrupt file must never be left where the next
/// probe would trust-and-reject it again.
fn quarantine_entry(dir: &Path, path: &Path) -> Option<PathBuf> {
    let qdir = quarantine_dir(dir);
    let name = path.file_name()?.to_string_lossy().into_owned();
    let moved = std::fs::create_dir_all(&qdir).ok().and_then(|()| {
        let mut dest = qdir.join(&name);
        for n in 1..=64 {
            if !dest.exists() {
                break;
            }
            dest = qdir.join(format!("{name}.{n}"));
        }
        std::fs::rename(path, &dest).ok().map(|()| dest)
    });
    if moved.is_none() {
        std::fs::remove_file(path).ok();
    }
    moved
}

/// What a checked cache probe found.
#[derive(Debug)]
pub enum CacheOutcome {
    /// No entry on disk for this key.
    Miss,
    /// A fully verified entry.
    Hit(Box<RunReport>),
    /// An entry existed but failed verification (or could not be
    /// read); it was moved to [`quarantine_dir`] — or deleted if the
    /// move failed — and the caller must regenerate the run.
    Quarantined {
        /// The integrity failure, for the degradation report.
        reason: String,
        /// Where the rejected bytes went, if the move succeeded.
        moved_to: Option<PathBuf>,
    },
}

/// Probes the cache for `key`, quarantining anything that fails
/// verification: stored-key mismatches, truncation, checksum failures,
/// and IO errors on an entry that exists all degrade to a regeneration,
/// never to a trusted-but-wrong report and never to an abort.
pub fn load_checked(dir: &Path, key: &str) -> CacheOutcome {
    let path = cache_path(dir, key);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CacheOutcome::Miss,
        Err(e) => {
            let moved_to = quarantine_entry(dir, &path);
            return CacheOutcome::Quarantined {
                reason: format!("unreadable entry: {e}"),
                moved_to,
            };
        }
    };
    match decode_checked(key, &text) {
        Ok(report) => CacheOutcome::Hit(Box::new(report)),
        Err(fault) => {
            let moved_to = quarantine_entry(dir, &path);
            CacheOutcome::Quarantined {
                reason: fault.to_string(),
                moved_to,
            }
        }
    }
}

/// Loads the cached report for `key`, or `None` on miss/corruption.
/// Corrupt entries are quarantined as a side effect (see
/// [`load_checked`]).
pub fn load(dir: &Path, key: &str) -> Option<RunReport> {
    match load_checked(dir, key) {
        CacheOutcome::Hit(report) => Some(*report),
        CacheOutcome::Miss | CacheOutcome::Quarantined { .. } => None,
    }
}

/// Stores `report` under `key`, creating the directory as needed.
/// Failures are reported to stderr but never fail the run — the cache
/// is an accelerator, not a dependency. Reports with persist records
/// are silently skipped.
pub fn store(dir: &Path, key: &str, report: &RunReport) {
    if !report.records.is_empty() {
        return;
    }
    let path = cache_path(dir, key);
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        // Write-then-rename so a crashed/killed harness never leaves a
        // torn entry behind at the final path.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, encode(key, report))?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    };
    if let Err(e) = write() {
        eprintln!("[plp-bench] run-cache write failed for {path:?}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plp_core::{run_benchmark, SystemConfig, UpdateScheme};
    use plp_trace::spec;

    fn sample() -> (String, RunReport) {
        let profile = spec::benchmark("gcc").unwrap();
        let cfg = SystemConfig::for_scheme(UpdateScheme::Coalescing);
        let report = run_benchmark(&profile, &cfg, 3_000, 5);
        (format!("{CACHE_FORMAT}|demo|{:?}", cfg), report)
    }

    #[test]
    fn roundtrip_is_lossless() {
        let (key, report) = sample();
        let text = encode(&key, &report);
        assert_eq!(decode(&key, &text), Some(report));
    }

    #[test]
    fn sanitizer_violations_roundtrip() {
        let (key, mut report) = sample();
        report.sanitizer.dropped_violations = 2;
        report.sanitizer.violations.push(Violation {
            kind: ViolationKind::WawHazard,
            scheme: UpdateScheme::O3,
            cycle: Cycle::new(123),
            epoch: EpochId(4),
            persist: plp_core::sanitizer::NO_FIELD,
            level: 3,
            node: 17,
            addr: 0x40,
        });
        let text = encode(&key, &report);
        assert_eq!(decode(&key, &text), Some(report));
    }

    #[test]
    fn wrong_key_and_corruption_are_misses() {
        let (key, report) = sample();
        let text = encode(&key, &report);
        assert_eq!(decode("other key", &text), None);
        // Truncations at any line boundary must degrade to a miss.
        let lines: Vec<&str> = text.lines().collect();
        for keep in 0..lines.len() {
            let truncated = lines[..keep].join("\n");
            assert_eq!(decode(&key, &truncated), None, "kept {keep} lines");
        }
        assert_eq!(decode(&key, &text.replace("persists", "persits")), None);
    }

    #[test]
    fn value_bit_flips_fail_the_checksum() {
        let (key, report) = sample();
        let text = encode(&key, &report);
        // Corrupt a numeric field *in a way that still parses*: this is
        // exactly what stored-key verification alone cannot catch.
        let flipped = text.replacen(
            &format!("instructions {}", report.instructions),
            &format!("instructions {}", report.instructions + 1),
            1,
        );
        assert_ne!(text, flipped, "corruption must actually change the text");
        assert_eq!(
            decode_checked(&key, &flipped),
            Err(CacheFault::ChecksumMismatch)
        );
        assert_eq!(decode(&key, &flipped), None);
    }

    #[test]
    fn decode_checked_reports_the_failure_class() {
        let (key, report) = sample();
        let text = encode(&key, &report);
        assert_eq!(decode_checked(&key, &text), Ok(report));
        assert_eq!(
            decode_checked("other key", &text),
            Err(CacheFault::KeyMismatch)
        );
        assert_eq!(
            decode_checked(&key, &text.replace(CACHE_FORMAT, "plp-run-cache v2")),
            Err(CacheFault::Version)
        );
        let truncated = &text[..text.len() / 2];
        assert_eq!(decode_checked(&key, truncated), Err(CacheFault::Truncated));
    }

    #[test]
    fn corrupt_entries_are_quarantined_then_regenerated() {
        let (key, report) = sample();
        let dir = std::env::temp_dir().join(format!("plp-quarantine-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        store(&dir, &key, &report);
        let path = cache_path(&dir, &key);

        // Truncate the stored entry mid-file (a torn write).
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 3]).unwrap();

        let CacheOutcome::Quarantined { reason, moved_to } = load_checked(&dir, &key) else {
            panic!("corrupt entry must quarantine, not hit or miss");
        };
        assert_eq!(reason, CacheFault::Truncated.to_string());
        let moved_to = moved_to.expect("rename into quarantine succeeds on one filesystem");
        assert!(moved_to.starts_with(quarantine_dir(&dir)));
        assert!(moved_to.exists(), "quarantined bytes are preserved");
        assert!(!path.exists(), "corrupt entry must not stay at its address");

        // The next probe is a clean miss; regeneration then round-trips.
        assert!(matches!(load_checked(&dir, &key), CacheOutcome::Miss));
        store(&dir, &key, &report);
        match load_checked(&dir, &key) {
            CacheOutcome::Hit(regenerated) => assert_eq!(*regenerated, report),
            other => panic!("regenerated entry must hit, got {other:?}"),
        }

        // A second quarantine of the same address gets a fresh name.
        std::fs::write(&path, "garbage").unwrap();
        let CacheOutcome::Quarantined { moved_to: second, .. } = load_checked(&dir, &key) else {
            panic!("second corruption must quarantine too");
        };
        assert_ne!(second.as_ref(), Some(&moved_to));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_roundtrip() {
        let (key, report) = sample();
        let dir = std::env::temp_dir().join(format!("plp-cache-test-{}", std::process::id()));
        assert_eq!(load(&dir, &key), None);
        store(&dir, &key, &report);
        assert_eq!(load(&dir, &key), Some(report));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hash_is_stable() {
        // FNV-1a reference value: hashing must never drift across
        // refactors, or every cache entry silently invalidates.
        assert_eq!(key_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(key_hash("a"), 0xaf63_dc4c_8601_ec8c);
    }
}
