//! Harness-level chaos injection: a deterministic fault plan that
//! exercises the supervisor (`crate::supervisor`) end to end.
//!
//! Chaos faults attack the *harness*, not the simulated machine (PR 1's
//! `plp_core::fault` owns that layer): worker panics and artificial
//! stalls fire inside the supervised attempt closure, and cache faults
//! corrupt on-disk entries before execution so the quarantine path has
//! something real to recover from.
//!
//! Determinism is the load-bearing property. Which fault (if any) a run
//! receives is a pure function of `(chaos seed, run key)` — thread
//! scheduling, worker count and cache temperature cannot change the
//! plan — so two sweeps with the same seed inject the same faults and
//! produce equal [`crate::supervisor::DegradationReport`]s.

use std::collections::BTreeMap;
use std::path::Path;

use plp_core::retry::RetryToken;
use plp_core::RunReport;

use crate::cache;

/// The kinds of harness fault the chaos planner can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosClass {
    /// The attempt closure panics (exercises `catch_unwind` isolation).
    WorkerPanic,
    /// The attempt closure sleeps past the watchdog (exercises the
    /// timeout path; the abandoned thread finishes in the background).
    WorkerStall,
    /// The run's cache entry is cut short on disk (exercises the
    /// truncation quarantine).
    CacheTruncate,
    /// One byte of the run's cache entry is flipped (exercises the
    /// checksum quarantine).
    CacheBitFlip,
    /// The run's cache entry is replaced by a directory so reads fail
    /// with a genuine IO error (exercises the unreadable-entry
    /// quarantine).
    CacheIoError,
}

impl ChaosClass {
    /// Stable name for report enumeration.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosClass::WorkerPanic => "worker-panic",
            ChaosClass::WorkerStall => "worker-stall",
            ChaosClass::CacheTruncate => "cache-truncate",
            ChaosClass::CacheBitFlip => "cache-bit-flip",
            ChaosClass::CacheIoError => "cache-io-error",
        }
    }

    /// Whether the fault is planted on disk before execution (as
    /// opposed to fired inside the attempt closure).
    pub fn is_cache_fault(&self) -> bool {
        matches!(
            self,
            ChaosClass::CacheTruncate | ChaosClass::CacheBitFlip | ChaosClass::CacheIoError
        )
    }
}

/// One planned fault against one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosFault {
    /// What goes wrong.
    pub class: ChaosClass,
    /// Which attempt a worker fault fires on (cache faults ignore it).
    pub attempt: u32,
    /// A sticky worker fault fires on *every* attempt from `attempt`
    /// on — unrecoverable by design, for testing graceful degradation.
    pub sticky: bool,
}

impl std::fmt::Display for ChaosFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.class.is_cache_fault() {
            write!(f, "{}", self.class.name())
        } else {
            write!(
                f,
                "{}@{}{}",
                self.class.name(),
                self.attempt,
                if self.sticky { "+" } else { "" }
            )
        }
    }
}

/// How much chaos to plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosOptions {
    /// Seed of the fault plan.
    pub seed: u64,
    /// Probability in `[0, 1]` that a given run receives a (retryable)
    /// fault.
    pub intensity: f64,
    /// How many runs (the first N in key order) get an unrecoverable
    /// sticky panic instead — zero for a fully recoverable sweep.
    pub unrecoverable: usize,
}

impl ChaosOptions {
    /// A fully recoverable plan at the default intensity.
    pub fn new(seed: u64) -> Self {
        ChaosOptions {
            seed,
            intensity: 0.25,
            unrecoverable: 0,
        }
    }
}

/// The materialized fault plan for one run-key set.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    options: ChaosOptions,
    faults: BTreeMap<String, Vec<ChaosFault>>,
}

impl ChaosPlan {
    /// Plans faults for `keys`: a pure function of the options and the
    /// key set (duplicates collapse; order is irrelevant).
    pub fn generate(options: ChaosOptions, keys: &[String]) -> ChaosPlan {
        let mut sorted: Vec<&String> = keys.iter().collect();
        sorted.sort();
        sorted.dedup();
        let mut faults = BTreeMap::new();
        for key in &sorted {
            if let Some(fault) = Self::fault_for(&options, key) {
                faults.insert((*key).clone(), vec![fault]);
            }
        }
        for key in sorted.iter().take(options.unrecoverable) {
            faults.insert(
                (*key).clone(),
                vec![ChaosFault {
                    class: ChaosClass::WorkerPanic,
                    attempt: 0,
                    sticky: true,
                }],
            );
        }
        ChaosPlan { options, faults }
    }

    /// The per-key fault decision: one splitmix draw seeded by
    /// `seed ^ hash(key)`, high bits deciding *whether*, low bits
    /// deciding *which*.
    fn fault_for(options: &ChaosOptions, key: &str) -> Option<ChaosFault> {
        let draw = RetryToken::new(options.seed).mix_str(key).value();
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        if unit >= options.intensity {
            return None;
        }
        let class = match draw % 5 {
            0 => ChaosClass::WorkerPanic,
            1 => ChaosClass::WorkerStall,
            2 => ChaosClass::CacheTruncate,
            3 => ChaosClass::CacheBitFlip,
            _ => ChaosClass::CacheIoError,
        };
        Some(ChaosFault {
            class,
            attempt: 0,
            sticky: false,
        })
    }

    /// The faults planned against `key` (empty for unafflicted runs).
    pub fn for_key(&self, key: &str) -> &[ChaosFault] {
        self.faults.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total planned faults, counting only those that will actually be
    /// injected (`cache_enabled` gates the plant-time cache classes).
    pub fn injected_count(&self, cache_enabled: bool) -> usize {
        self.descriptions(cache_enabled).len()
    }

    /// Deterministic `"{fault} {key}"` descriptions of every fault
    /// that will be injected, in key order, for the degradation
    /// report's enumeration.
    pub fn descriptions(&self, cache_enabled: bool) -> Vec<String> {
        let mut out = Vec::new();
        for (key, faults) in &self.faults {
            for fault in faults {
                if fault.class.is_cache_fault() && !cache_enabled {
                    continue;
                }
                out.push(format!("{fault} {key}"));
            }
        }
        out
    }

    /// Whether any planned fault is sticky (the sweep cannot fully
    /// recover).
    pub fn has_sticky(&self) -> bool {
        self.faults
            .values()
            .any(|faults| faults.iter().any(|f| f.sticky))
    }

    /// Plants the cache-class faults on disk under `dir`. A truncated
    /// or bit-flipped entry is synthesized from a default report when
    /// the cache is cold, so the fault is injected either way.
    pub fn plant(&self, dir: &Path) {
        let _ = std::fs::create_dir_all(dir);
        for (key, faults) in &self.faults {
            for fault in faults {
                let path = cache::cache_path(dir, key);
                match fault.class {
                    ChaosClass::CacheTruncate => {
                        let bytes = entry_bytes(&path, key);
                        let _ = std::fs::write(&path, &bytes[..bytes.len() / 2]);
                    }
                    ChaosClass::CacheBitFlip => {
                        let mut bytes = entry_bytes(&path, key);
                        let mid = bytes.len() / 2;
                        bytes[mid] ^= 0x01;
                        let _ = std::fs::write(&path, &bytes);
                    }
                    ChaosClass::CacheIoError => {
                        let _ = std::fs::remove_file(&path);
                        let _ = std::fs::create_dir_all(&path);
                    }
                    ChaosClass::WorkerPanic | ChaosClass::WorkerStall => {}
                }
            }
        }
    }
}

/// The run's current cache entry, or a synthesized well-formed one if
/// the cache is cold (or unreadable).
fn entry_bytes(path: &Path, key: &str) -> Vec<u8> {
    match std::fs::read(path) {
        Ok(bytes) if !bytes.is_empty() => bytes,
        _ => cache::encode(key, &RunReport::default()).into_bytes(),
    }
}

/// Fires the worker-class faults planned for this attempt inside the
/// supervised closure. Stalls sleep `stall` (sized past the watchdog
/// by the caller); panics unwind into the supervisor's `catch_unwind`.
pub fn apply_worker_faults(faults: &[ChaosFault], attempt: u32, stall: std::time::Duration) {
    for fault in faults {
        let fires = if fault.sticky {
            attempt >= fault.attempt
        } else {
            attempt == fault.attempt
        };
        if !fires {
            continue;
        }
        match fault.class {
            ChaosClass::WorkerPanic => {
                // lint: allow(no-panic-lib) the whole point: an injected panic the supervisor must contain
                panic!("chaos: injected worker panic")
            }
            ChaosClass::WorkerStall => std::thread::sleep(stall),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("bench=b{i}|seed=7")).collect()
    }

    #[test]
    fn plan_is_a_pure_function_of_seed_and_keys() {
        let opts = ChaosOptions {
            seed: 0xC0FFEE,
            intensity: 0.5,
            unrecoverable: 1,
        };
        let mut shuffled = keys(30);
        shuffled.reverse();
        let a = ChaosPlan::generate(opts, &keys(30));
        let b = ChaosPlan::generate(opts, &shuffled);
        assert_eq!(a, b, "key order must not change the plan");
        let c = ChaosPlan::generate(ChaosOptions { seed: 1, ..opts }, &keys(30));
        assert_ne!(a, c, "a different seed should plan different faults");
    }

    #[test]
    fn full_intensity_afflicts_every_run_with_every_class() {
        let opts = ChaosOptions {
            seed: 99,
            intensity: 1.0,
            unrecoverable: 0,
        };
        let ks = keys(40);
        let plan = ChaosPlan::generate(opts, &ks);
        assert_eq!(plan.injected_count(true), 40);
        for class in [
            ChaosClass::WorkerPanic,
            ChaosClass::WorkerStall,
            ChaosClass::CacheTruncate,
            ChaosClass::CacheBitFlip,
            ChaosClass::CacheIoError,
        ] {
            assert!(
                ks.iter().any(|k| plan.for_key(k).iter().any(|f| f.class == class)),
                "40 draws should cover class {}",
                class.name()
            );
        }
        assert!(!plan.has_sticky());
        // Without a cache, plant-time faults are not injected and the
        // enumeration says so.
        assert!(plan.injected_count(false) < plan.injected_count(true));
    }

    #[test]
    fn unrecoverable_runs_get_sticky_panics() {
        let opts = ChaosOptions {
            seed: 5,
            intensity: 0.0,
            unrecoverable: 2,
        };
        let ks = keys(10);
        let plan = ChaosPlan::generate(opts, &ks);
        assert!(plan.has_sticky());
        assert_eq!(plan.injected_count(true), 2);
        let mut sorted = ks.clone();
        sorted.sort();
        for key in &sorted[..2] {
            assert_eq!(
                plan.for_key(key),
                &[ChaosFault {
                    class: ChaosClass::WorkerPanic,
                    attempt: 0,
                    sticky: true
                }]
            );
        }
    }

    #[test]
    fn planted_cache_faults_are_quarantined_on_load() {
        let dir = std::env::temp_dir().join(format!("plp-chaos-plant-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ks = vec![
            "truncate-me".to_string(),
            "flip-me".to_string(),
            "eisdir-me".to_string(),
        ];
        // Hand-build a plan hitting each cache class deterministically.
        let mut faults = BTreeMap::new();
        for (key, class) in ks.iter().zip([
            ChaosClass::CacheTruncate,
            ChaosClass::CacheBitFlip,
            ChaosClass::CacheIoError,
        ]) {
            faults.insert(
                key.clone(),
                vec![ChaosFault {
                    class,
                    attempt: 0,
                    sticky: false,
                }],
            );
        }
        let plan = ChaosPlan {
            options: ChaosOptions::new(0),
            faults,
        };
        // Warm the cache for one key so planting corrupts a real entry.
        cache::store(&dir, &ks[1], &RunReport::default());
        plan.plant(&dir);
        for key in &ks {
            match cache::load_checked(&dir, key) {
                cache::CacheOutcome::Quarantined { .. } => {}
                other => panic!("planted fault for '{key}' should quarantine, got {other:?}"),
            }
            // The slot is clean again: a re-probe misses, a store works.
            assert!(matches!(
                cache::load_checked(&dir, key),
                cache::CacheOutcome::Miss
            ));
            cache::store(&dir, key, &RunReport::default());
            assert!(matches!(
                cache::load_checked(&dir, key),
                cache::CacheOutcome::Hit(_)
            ));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
