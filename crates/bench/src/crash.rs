//! Real-process crash harness: SIGKILL a child simulation at a named
//! failpoint, reopen the file image it left behind, and prove recovery.
//!
//! The harness closes the loop that the in-memory fault sweep
//! (`fault_sweep`) cannot: there, "crash" means truncating a record
//! list; here, a real OS process is killed with an unblockable signal
//! while its [`plp_core::DurableSink`] is mid-write, and the only
//! surviving evidence is the write-through device image on disk.
//!
//! Protocol, per matrix cell `(scheme, failpoint, hit)`:
//!
//! 1. the parent re-executes itself (`current_exe`) with `--child`
//!    arguments naming the scheme, workload, seed, image path and an
//!    armed park-mode failpoint;
//! 2. the child simulates with a durable sink attached; when the
//!    failpoint fires it prints [`plp_core::failpoint::PARK_MARKER`],
//!    flushes stdout and parks in an infinite sleep — *deliberately
//!    unable* to clean up;
//! 3. the parent reads the marker, sends SIGKILL
//!    ([`std::process::Child::kill`]), reaps the corpse, and replays
//!    the orphaned image with [`plp_core::replay_image`];
//! 4. a golden in-process run of the same `(scheme, trace, seed)`
//!    provides the full persist history; the ids the image holds
//!    completely define the cut, [`plp_core::RecoveryManager`] judges
//!    the image against the cut's expectation, and the replayed
//!    counter state is compared field-for-field against a golden fold.
//!
//! A child that finishes the trace before its failpoint fires prints a
//! deterministic `COMPLETED_MARKER` line instead; those cells verify
//! the complete image round-trips (and back the `verify.sh` gate that
//! file-backed no-kill stdout is byte-identical to in-memory stdout).
//!
//! The crash model is process death, not power loss: `write(2)`-ed
//! bytes live in the kernel page cache and survive SIGKILL without
//! fsync, so the image the parent reopens is exactly what the child
//! had appended when it parked.

use std::collections::HashMap;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

use plp_core::failpoint::PARK_MARKER;
use plp_core::{
    replay_image, DurableSink, Failpoint, FailpointPlan, FailpointRegistry, FaultVerdict,
    ObserverExpectation, PersistRecord, RecoveryManager, SimSetup, SystemConfig, UpdateScheme,
};
use plp_crypto::CounterBlock;
use plp_trace::spec;

use crate::cache;
use crate::supervisor::{DegradationReport, RunLog, RunVerdict};

/// Marker line a child prints when it finishes its trace without the
/// armed failpoint firing. Stable: the `verify.sh` no-kill identity
/// gate `cmp`s whole stdouts across file-backed and in-memory runs.
pub const COMPLETED_MARKER: &str = "crash-harness: completed";

// ---------------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------------

/// Everything a child process needs to reproduce one simulation:
/// parsed from `--child` arguments, serialized back with
/// [`ChildSpec::to_args`]. The round trip is exact — the child must
/// run the *same* trace the parent's golden run used.
#[derive(Debug, Clone, PartialEq)]
pub struct ChildSpec {
    /// Update scheme under test.
    pub scheme: UpdateScheme,
    /// Workload profile name (e.g. `gcc`).
    pub benchmark: String,
    /// Trace length.
    pub instructions: u64,
    /// Trace seed.
    pub seed: u64,
    /// Device image path; `None` runs purely in memory (the identity
    /// gate's baseline half).
    pub image: Option<PathBuf>,
    /// Armed park-mode failpoint; `None` runs to completion.
    pub plan: Option<FailpointPlan>,
}

impl ChildSpec {
    /// The `--child` argument vector that [`ChildSpec::from_args`]
    /// parses back into `self`.
    pub fn to_args(&self) -> Vec<String> {
        let mut args = vec![
            "--child".to_string(),
            "--scheme".to_string(),
            self.scheme.name().to_string(),
            "--benchmark".to_string(),
            self.benchmark.clone(),
            "--instructions".to_string(),
            self.instructions.to_string(),
            "--seed".to_string(),
            self.seed.to_string(),
        ];
        if let Some(image) = &self.image {
            args.push("--image".to_string());
            args.push(image.display().to_string());
        }
        if let Some(plan) = self.plan {
            args.push("--failpoint".to_string());
            args.push(plan.point.name().to_string());
            args.push("--hit".to_string());
            args.push(plan.hit.to_string());
        }
        args
    }

    /// Parses the argument list *after* the `--child` flag.
    pub fn from_args(args: &[String]) -> Result<ChildSpec, String> {
        let mut scheme = None;
        let mut benchmark = None;
        let mut instructions = None;
        let mut seed = None;
        let mut image = None;
        let mut point = None;
        let mut hit = None;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if flag == "--child" {
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag {flag} is missing its value"))?;
            match flag.as_str() {
                "--scheme" => {
                    scheme = Some(
                        UpdateScheme::parse(value).ok_or_else(|| format!("unknown scheme {value}"))?,
                    );
                }
                "--benchmark" => benchmark = Some(value.clone()),
                "--instructions" => {
                    instructions =
                        Some(value.parse().map_err(|_| format!("bad instruction count {value}"))?);
                }
                "--seed" => {
                    seed = Some(value.parse().map_err(|_| format!("bad seed {value}"))?);
                }
                "--image" => image = Some(PathBuf::from(value)),
                "--failpoint" => {
                    point = Some(
                        Failpoint::parse(value).ok_or_else(|| format!("unknown failpoint {value}"))?,
                    );
                }
                "--hit" => {
                    hit = Some(value.parse().map_err(|_| format!("bad hit index {value}"))?);
                }
                other => return Err(format!("unknown child flag {other}")),
            }
        }
        let plan = match (point, hit) {
            (Some(point), Some(hit)) => Some(FailpointPlan { point, hit }),
            (None, None) => None,
            _ => return Err("--failpoint and --hit must be given together".to_string()),
        };
        Ok(ChildSpec {
            scheme: scheme.ok_or("missing --scheme")?,
            benchmark: benchmark.ok_or("missing --benchmark")?,
            instructions: instructions.ok_or("missing --instructions")?,
            seed: seed.ok_or("missing --seed")?,
            image,
            plan,
        })
    }
}

/// Runs one child simulation to completion (or until its armed
/// failpoint parks the process — in which case this never returns).
/// Returns the `COMPLETED_MARKER` stdout line on success.
pub fn run_child(child: &ChildSpec) -> Result<String, String> {
    let profile = spec::benchmark(&child.benchmark)
        .ok_or_else(|| format!("unknown benchmark {}", child.benchmark))?;
    let setup = SimSetup::for_profile(
        SystemConfig::for_scheme(child.scheme),
        &profile,
        child.seed,
    )
    .map_err(|e| format!("config rejected: {e}"))?;
    let trace = setup.generate_trace(child.instructions);
    let mut sim = setup.simulation();
    if let Some(path) = &child.image {
        let sink = DurableSink::create(path, setup.config(), child.seed)
            .map_err(|e| format!("cannot create device image {}: {e}", path.display()))?;
        sim.attach_durable_sink(sink);
    }
    if let Some(plan) = child.plan {
        sim.arm_failpoints(FailpointRegistry::park(plan));
    }
    let (report, finished) = sim.run_with_state(&trace);
    if let Some(e) = finished.durable_error() {
        return Err(format!("durable sink poisoned: {e}"));
    }
    // Byte-stable across file-backed and in-memory runs: the sink must
    // not perturb the simulation, and this line is the proof surface.
    Ok(format!(
        "{COMPLETED_MARKER} scheme={} persists={} epochs={} root={:#018x} cycles={}",
        child.scheme.name(),
        report.persists,
        report.epochs,
        finished.architectural_root(),
        report.total_cycles
    ))
}

// ---------------------------------------------------------------------------
// Golden model + judge
// ---------------------------------------------------------------------------

/// One full in-process reference run: the persist history every kill
/// of the same `(scheme, benchmark, instructions, seed)` is cut from.
struct Golden {
    config: SystemConfig,
    records: Vec<PersistRecord>,
}

fn golden_run(
    scheme: UpdateScheme,
    benchmark: &str,
    instructions: u64,
    seed: u64,
) -> Result<Golden, String> {
    let profile =
        spec::benchmark(benchmark).ok_or_else(|| format!("unknown benchmark {benchmark}"))?;
    let mut config = SystemConfig::for_scheme(scheme);
    config.record_persists = true;
    let setup = SimSetup::for_profile(config, &profile, seed)
        .map_err(|e| format!("config rejected: {e}"))?;
    let trace = setup.generate_trace(instructions);
    let config = setup.config().clone();
    let (report, _) = setup.simulation().run_with_state(&trace);
    Ok(Golden {
        config,
        records: report.records,
    })
}

/// What recovery concluded about one reopened image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Judgement {
    /// The recovery verdict against the cut's observer expectation.
    pub verdict: FaultVerdict,
    /// Whether the replayed split-counter state equals the golden
    /// program-order fold of the cut — the "recovered tree/counter
    /// state matches the in-memory model" half of the contract (the
    /// counters *are* the tree: equal counters force an equal root).
    pub counters_match: bool,
    /// Complete persists the image held.
    pub complete: usize,
    /// Persists with only some tuple components on media (torn).
    pub partial: usize,
}

impl Judgement {
    /// Detect-or-recover held and the counter state is the model's.
    pub fn healthy(&self) -> bool {
        matches!(self.verdict, FaultVerdict::Clean | FaultVerdict::Repaired)
            && self.counters_match
    }
}

/// Reopens `image`, replays it, and judges it against the golden run.
fn judge(golden: &Golden, image: &Path) -> Result<Judgement, String> {
    let replayed = replay_image(image, golden.config.key)
        .map_err(|e| format!("replay of {} failed: {e}", image.display()))?;
    let cut: Vec<&PersistRecord> = golden
        .records
        .iter()
        .filter(|r| replayed.complete_ids.contains(&r.id.0))
        .collect();
    // The observer expects the program-order fold of the completely
    // persisted prefix: the file is append-ordered, so id order is the
    // architectural order for every scheme (including unordered, whose
    // component *times* legitimately reorder against program order).
    let mut plaintexts = HashMap::new();
    let mut counters: HashMap<u64, CounterBlock> = HashMap::new();
    for r in &cut {
        plaintexts.insert(r.addr, r.plaintext);
        counters.insert(r.addr.page().index(), r.counters_after.clone());
    }
    let expected = ObserverExpectation { plaintexts };
    let outcome = RecoveryManager::for_config(&golden.config).recover(
        &replayed.image,
        &golden.records,
        &expected,
    );
    Ok(Judgement {
        verdict: outcome.verdict(),
        counters_match: replayed.image.counters == counters,
        complete: replayed.complete_ids.len(),
        partial: replayed.partial_ids.len(),
    })
}

// ---------------------------------------------------------------------------
// Parent side: spawn, watch, SIGKILL
// ---------------------------------------------------------------------------

/// How one matrix cell's child process ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The failpoint fired at `persist`; the child was SIGKILLed while
    /// parked and its image judged.
    Killed {
        /// Persist index (1-based) the kill landed in.
        persist: u64,
        /// Recovery's judgement of the orphaned image.
        judgement: Judgement,
    },
    /// The trace ended before the failpoint fired; the complete image
    /// was judged as a round-trip sanity check.
    NotReached {
        /// Recovery's judgement of the complete image.
        judgement: Judgement,
    },
    /// The child printed neither marker within the watchdog window.
    TimedOut,
    /// Spawn, replay or judge failed outright.
    Error(String),
}

/// One judged matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Scheme under test.
    pub scheme: UpdateScheme,
    /// The armed failpoint.
    pub point: Failpoint,
    /// Zero-based hit index the plan armed.
    pub hit: u64,
    /// How the cell ended.
    pub outcome: CellOutcome,
}

/// Parses `persist=<n>` out of a park-marker line.
fn parse_park_persist(line: &str) -> Option<u64> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix("persist="))
        .and_then(|v| v.parse().ok())
}

/// Spawns one child, waits for a marker line, SIGKILLs it if parked.
/// Returns the outcome *before* judging (the caller owns the image).
fn run_cell_child(exe: &Path, spec: &ChildSpec, watchdog: Duration) -> CellOutcome {
    let mut child = match Command::new(exe)
        .args(spec.to_args())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
    {
        Ok(child) => child,
        Err(e) => return CellOutcome::Error(format!("spawn failed: {e}")),
    };
    let Some(stdout) = child.stdout.take() else {
        let _ = child.kill();
        let _ = child.wait();
        return CellOutcome::Error("child stdout was not captured".to_string());
    };
    // A reader thread forwards marker lines; recv_timeout is the
    // watchdog. After the SIGKILL the pipe closes and the thread
    // drains to EOF on its own.
    let (tx, rx) = mpsc::channel::<String>();
    let reader = std::thread::spawn(move || {
        for line in std::io::BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let outcome = loop {
        match rx.recv_timeout(watchdog) {
            Ok(line) if line.starts_with(PARK_MARKER) => {
                // The whole point: a real, unblockable SIGKILL while
                // the child is parked mid-persist.
                let _ = child.kill();
                break match parse_park_persist(&line) {
                    Some(persist) => CellOutcome::Killed {
                        persist,
                        judgement: Judgement {
                            verdict: FaultVerdict::Clean,
                            counters_match: false,
                            complete: 0,
                            partial: 0,
                        },
                    },
                    None => CellOutcome::Error(format!("unparseable park marker: {line}")),
                };
            }
            Ok(line) if line.starts_with(COMPLETED_MARKER) => {
                break CellOutcome::NotReached {
                    judgement: Judgement {
                        verdict: FaultVerdict::Clean,
                        counters_match: false,
                        complete: 0,
                        partial: 0,
                    },
                };
            }
            Ok(_) => continue,
            Err(_) => {
                let _ = child.kill();
                break CellOutcome::TimedOut;
            }
        }
    };
    let _ = child.wait();
    let _ = reader.join();
    outcome
}

// ---------------------------------------------------------------------------
// Startup GC
// ---------------------------------------------------------------------------

/// Removes stale crash images and quarantined run-cache entries left
/// behind by earlier (possibly killed) harness invocations. Returns
/// `(images_removed, quarantine_entries_removed)`.
///
/// Both directories only ever hold files this repo's tooling wrote:
/// `*.img` device images here, and rejected cache entries moved aside
/// by [`crate::cache`]. Anything else is left alone.
pub fn gc_stale(image_dir: &Path, cache_dir: &Path) -> (usize, usize) {
    let mut images = 0;
    if let Ok(entries) = std::fs::read_dir(image_dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "img")
                && std::fs::remove_file(&path).is_ok()
            {
                images += 1;
            }
        }
    }
    let mut quarantined = 0;
    if let Ok(entries) = std::fs::read_dir(cache::quarantine_dir(cache_dir)) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_file() && std::fs::remove_file(&path).is_ok() {
                quarantined += 1;
            }
        }
    }
    (images, quarantined)
}

// ---------------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------------

/// Parent-side sweep configuration.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Workload profile name.
    pub benchmark: String,
    /// Trace length per child.
    pub instructions: u64,
    /// Trace seed.
    pub seed: u64,
    /// Schemes to sweep; default: the four correct engines plus the
    /// `unordered` strawman (which must demonstrably fail).
    pub schemes: Vec<UpdateScheme>,
    /// Failpoints to arm; default: the whole catalog (epoch-only
    /// points are skipped for strict-persistency schemes).
    pub points: Vec<Failpoint>,
    /// Hit-index override applied to every point; `None` uses the
    /// per-point defaults of [`default_hits`].
    pub hits: Option<Vec<u64>>,
    /// Where child images are written (and GC'd at startup).
    pub image_dir: PathBuf,
    /// Run-cache directory whose quarantine is GC'd at startup.
    pub cache_dir: PathBuf,
    /// Per-child watchdog.
    pub watchdog: Duration,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        let mut schemes: Vec<UpdateScheme> = UpdateScheme::correct().to_vec();
        schemes.push(UpdateScheme::Unordered);
        HarnessOptions {
            benchmark: "gcc".to_string(),
            instructions: 20_000,
            seed: 7,
            schemes,
            points: Failpoint::ALL.to_vec(),
            hits: None,
            image_dir: PathBuf::from("results").join("crash_images"),
            cache_dir: crate::matrix::default_cache_dir(),
            watchdog: Duration::from_secs(120),
        }
    }
}

/// Default hit indices (zero-based) per failpoint: one early, one
/// deeper into the run. Sites that count faster (`mid-tuple` visits
/// once per component under `unordered`, `between-levels` once per
/// touched tree level) still land well inside a 20k-instruction trace;
/// epoch seals are rare, so their indices stay small.
pub fn default_hits(point: Failpoint) -> Vec<u64> {
    match point {
        Failpoint::MidTuple => vec![5, 40],
        Failpoint::BetweenLevels => vec![3, 97],
        Failpoint::PreRootSeal | Failpoint::PostRootSeal => vec![2, 33],
        Failpoint::MidEpochFlush => vec![1, 10],
        Failpoint::PostEpochSeal => vec![0, 2],
    }
}

/// Whether `point` can fire at all under `scheme`.
fn applicable(scheme: UpdateScheme, point: Failpoint) -> bool {
    match point {
        Failpoint::MidEpochFlush | Failpoint::PostEpochSeal => scheme.is_epoch_based(),
        _ => true,
    }
}

/// The judged matrix plus the aggregate verdict.
#[derive(Debug)]
pub struct HarnessReport {
    /// Every judged cell, in sweep order.
    pub cells: Vec<CellReport>,
    /// Supervisor-style degradation ledger (kills are intentional).
    pub degradation: DegradationReport,
    /// Stale images / quarantine entries removed at startup.
    pub gc: (usize, usize),
    /// Whether the harness gate passed (see [`HarnessReport::gate`]).
    pub pass: bool,
}

/// Runs the full SIGKILL sweep. `exe` is the binary to re-execute in
/// child mode (normally [`std::env::current_exe`]).
pub fn run_harness(opts: &HarnessOptions, exe: &Path) -> Result<HarnessReport, String> {
    let gc = gc_stale(&opts.image_dir, &opts.cache_dir);
    std::fs::create_dir_all(&opts.image_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.image_dir.display()))?;

    let mut cells = Vec::new();
    let mut degradation = DegradationReport::new(Vec::new());
    for &scheme in &opts.schemes {
        let golden = golden_run(scheme, &opts.benchmark, opts.instructions, opts.seed)?;
        for &point in &opts.points {
            if !applicable(scheme, point) {
                continue;
            }
            let hits = opts
                .hits
                .clone()
                .unwrap_or_else(|| default_hits(point));
            for hit in hits {
                let image = opts
                    .image_dir
                    .join(format!("{}-{}-h{}.img", scheme.name(), point.name(), hit));
                let spec = ChildSpec {
                    scheme,
                    benchmark: opts.benchmark.clone(),
                    instructions: opts.instructions,
                    seed: opts.seed,
                    image: Some(image.clone()),
                    plan: Some(FailpointPlan { point, hit }),
                };
                let mut outcome = run_cell_child(exe, &spec, opts.watchdog);
                // Judge the surviving image for both kill and
                // run-to-completion outcomes.
                match &mut outcome {
                    CellOutcome::Killed { judgement, .. }
                    | CellOutcome::NotReached { judgement } => match judge(&golden, &image) {
                        Ok(j) => *judgement = j,
                        Err(e) => outcome = CellOutcome::Error(e),
                    },
                    _ => {}
                }
                let key = format!("{}/{}/h{}", scheme.name(), point.name(), hit);
                let verdict = match &outcome {
                    CellOutcome::Killed { .. } => RunVerdict::KilledByHarness {
                        failpoint: point.name(),
                    },
                    CellOutcome::NotReached { .. } => RunVerdict::Ok,
                    CellOutcome::TimedOut => RunVerdict::TimedOut { attempts: 1 },
                    CellOutcome::Error(_) => RunVerdict::Rejected,
                };
                let failures = match &outcome {
                    CellOutcome::Error(e) => vec![e.clone()],
                    CellOutcome::TimedOut => vec![format!("{key}: watchdog expired")],
                    _ => Vec::new(),
                };
                degradation.record(
                    &key,
                    RunLog {
                        verdict,
                        failures,
                        quarantine: None,
                        error: None,
                    },
                );
                // Healthy cells clean up after themselves; failed
                // cells keep the image on disk for inspection (the
                // next run's GC removes it).
                let keep = match &outcome {
                    CellOutcome::Killed { judgement, .. } => !judgement.healthy(),
                    CellOutcome::NotReached { judgement } => !judgement.healthy(),
                    _ => true,
                };
                if !keep {
                    let _ = std::fs::remove_file(&image);
                }
                cells.push(CellReport {
                    scheme,
                    point,
                    hit,
                    outcome,
                });
            }
        }
    }
    let pass = gate(&opts.schemes, &cells);
    Ok(HarnessReport {
        cells,
        degradation,
        gc,
        pass,
    })
}

/// The PASS gate:
///
/// * every *correct* scheme: each applicable failpoint produced at
///   least one real kill, and every killed or completed cell is
///   [`Judgement::healthy`] — Clean or Repaired, counters matching;
/// * the `unordered` strawman (when swept): at least one kill is
///   *unhealthy* (Tables I/II — torn tuples lose data), but none may
///   be silent garbage ([`FaultVerdict::UndetectedCorruption`]) —
///   the MAC + BMT must still catch every non-authentic state;
/// * no cell timed out or errored.
pub fn gate(schemes: &[UpdateScheme], cells: &[CellReport]) -> bool {
    let correct = UpdateScheme::correct();
    for &scheme in schemes {
        let mine: Vec<&CellReport> = cells.iter().filter(|c| c.scheme == scheme).collect();
        if mine.iter().any(|c| {
            matches!(c.outcome, CellOutcome::TimedOut | CellOutcome::Error(_))
        }) {
            return false;
        }
        if correct.contains(&scheme) {
            for &point in Failpoint::ALL.iter().filter(|&&p| applicable(scheme, p)) {
                let at_point: Vec<&&CellReport> =
                    mine.iter().filter(|c| c.point == point).collect();
                if at_point.is_empty() {
                    continue; // point filtered out of this sweep
                }
                if !at_point
                    .iter()
                    .any(|c| matches!(c.outcome, CellOutcome::Killed { .. }))
                {
                    return false;
                }
                let all_healthy = at_point.iter().all(|c| match &c.outcome {
                    CellOutcome::Killed { judgement, .. }
                    | CellOutcome::NotReached { judgement } => judgement.healthy(),
                    _ => false,
                });
                if !all_healthy {
                    return false;
                }
            }
        } else {
            let mut lossy = false;
            for c in &mine {
                if let CellOutcome::Killed { judgement, .. } = &c.outcome {
                    if judgement.verdict == FaultVerdict::UndetectedCorruption {
                        return false;
                    }
                    if !judgement.healthy() {
                        lossy = true;
                    }
                }
            }
            if !lossy {
                return false;
            }
        }
    }
    true
}

/// Renders the verdict matrix in the `fault_sweep` house style.
pub fn render(report: &HarnessReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "gc: removed {} stale image(s), {} quarantined cache entr(ies)\n\n",
        report.gc.0, report.gc.1
    ));
    out.push_str(&format!(
        "{:<12} {:<16} {:>5} {:>9} {:<15} {:>9} {:>9}\n",
        "scheme", "failpoint", "hit", "persist", "verdict", "complete", "partial"
    ));
    for cell in &report.cells {
        let (persist, verdict, complete, partial) = match &cell.outcome {
            CellOutcome::Killed { persist, judgement } => (
                persist.to_string(),
                format!(
                    "{}{}",
                    judgement.verdict.name(),
                    if judgement.counters_match { "" } else { "!ctr" }
                ),
                judgement.complete.to_string(),
                judgement.partial.to_string(),
            ),
            CellOutcome::NotReached { judgement } => (
                "-".to_string(),
                format!("not-reached/{}", judgement.verdict.name()),
                judgement.complete.to_string(),
                judgement.partial.to_string(),
            ),
            CellOutcome::TimedOut => ("-".to_string(), "timed-out".to_string(), String::new(), String::new()),
            CellOutcome::Error(e) => ("-".to_string(), format!("error: {e}"), String::new(), String::new()),
        };
        out.push_str(&format!(
            "{:<12} {:<16} {:>5} {:>9} {:<15} {:>9} {:>9}\n",
            cell.scheme.name(),
            cell.point.name(),
            cell.hit,
            persist,
            verdict,
            complete,
            partial
        ));
    }
    out.push('\n');
    out.push_str(&report.degradation.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_with(image: Option<PathBuf>, plan: Option<FailpointPlan>) -> ChildSpec {
        ChildSpec {
            scheme: UpdateScheme::Sp,
            benchmark: "gcc".to_string(),
            instructions: 4_000,
            seed: 7,
            image,
            plan,
        }
    }

    #[test]
    fn child_args_round_trip() {
        for spec in [
            spec_with(None, None),
            spec_with(Some(PathBuf::from("/tmp/x.img")), None),
            spec_with(
                Some(PathBuf::from("/tmp/x.img")),
                Some(FailpointPlan {
                    point: Failpoint::PostRootSeal,
                    hit: 33,
                }),
            ),
        ] {
            let args = spec.to_args();
            assert_eq!(ChildSpec::from_args(&args), Ok(spec));
        }
    }

    #[test]
    fn child_args_reject_malformed() {
        let bad = |args: &[&str]| {
            let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            ChildSpec::from_args(&owned).unwrap_err()
        };
        assert!(bad(&["--scheme"]).contains("missing its value"));
        assert!(bad(&["--scheme", "sp"]).contains("missing --benchmark"));
        assert!(bad(&["--wat", "1"]).contains("unknown child flag"));
        assert!(bad(&[
            "--scheme",
            "sp",
            "--benchmark",
            "gcc",
            "--instructions",
            "10",
            "--seed",
            "7",
            "--failpoint",
            "mid-tuple"
        ])
        .contains("must be given together"));
    }

    #[test]
    fn park_marker_parses() {
        assert_eq!(
            parse_park_persist("crash-harness: parked point=mid-tuple hit=40 persist=41"),
            Some(41)
        );
        assert_eq!(parse_park_persist("crash-harness: parked"), None);
    }

    #[test]
    fn default_hits_cover_every_point() {
        for &point in Failpoint::ALL.iter() {
            assert!(!default_hits(point).is_empty());
        }
    }

    #[test]
    fn epoch_points_only_apply_to_epoch_schemes() {
        assert!(!applicable(UpdateScheme::Sp, Failpoint::MidEpochFlush));
        assert!(applicable(UpdateScheme::O3, Failpoint::MidEpochFlush));
        assert!(applicable(UpdateScheme::Sp, Failpoint::MidTuple));
    }

    #[test]
    fn gc_removes_images_and_quarantine_entries() {
        let base = std::env::temp_dir().join(format!("plp-crash-gc-{}", std::process::id()));
        let images = base.join("images");
        let cache_dir = base.join("cache");
        let qdir = cache::quarantine_dir(&cache_dir);
        std::fs::create_dir_all(&images).unwrap();
        std::fs::create_dir_all(&qdir).unwrap();
        std::fs::write(images.join("stale-a.img"), b"x").unwrap();
        std::fs::write(images.join("stale-b.img"), b"y").unwrap();
        std::fs::write(images.join("keep.txt"), b"z").unwrap();
        std::fs::write(qdir.join("entry.json"), b"{}").unwrap();
        assert_eq!(gc_stale(&images, &cache_dir), (2, 1));
        assert!(images.join("keep.txt").exists());
        assert!(!images.join("stale-a.img").exists());
        assert!(!qdir.join("entry.json").exists());
        // A second pass finds nothing; missing dirs are fine too.
        assert_eq!(gc_stale(&images, &cache_dir), (0, 0));
        assert_eq!(gc_stale(&base.join("nope"), &base.join("nada")), (0, 0));
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn gate_requires_kills_and_health_for_correct_schemes() {
        let healthy = Judgement {
            verdict: FaultVerdict::Clean,
            counters_match: true,
            complete: 10,
            partial: 0,
        };
        let cell = |scheme, point, outcome| CellReport {
            scheme,
            point,
            hit: 0,
            outcome,
        };
        // A correct scheme with one healthy kill per point passes.
        let cells: Vec<CellReport> = [
            Failpoint::MidTuple,
            Failpoint::BetweenLevels,
            Failpoint::PreRootSeal,
            Failpoint::PostRootSeal,
        ]
        .into_iter()
        .map(|p| {
            cell(
                UpdateScheme::Sp,
                p,
                CellOutcome::Killed {
                    persist: 10,
                    judgement: healthy,
                },
            )
        })
        .collect();
        assert!(gate(&[UpdateScheme::Sp], &cells));
        // An unhealthy kill on a correct scheme fails the gate.
        let mut bad = cells.clone();
        bad[0] = cell(
            UpdateScheme::Sp,
            Failpoint::MidTuple,
            CellOutcome::Killed {
                persist: 10,
                judgement: Judgement {
                    verdict: FaultVerdict::DetectedLoss,
                    ..healthy
                },
            },
        );
        assert!(!gate(&[UpdateScheme::Sp], &bad));
        // Only not-reached cells (no kill landed) also fail.
        let unreached = vec![cell(
            UpdateScheme::Sp,
            Failpoint::MidTuple,
            CellOutcome::NotReached { judgement: healthy },
        )];
        assert!(!gate(&[UpdateScheme::Sp], &unreached));
        // Unordered must demonstrate loss...
        let lossy = vec![cell(
            UpdateScheme::Unordered,
            Failpoint::MidTuple,
            CellOutcome::Killed {
                persist: 3,
                judgement: Judgement {
                    verdict: FaultVerdict::DetectedLoss,
                    counters_match: false,
                    complete: 2,
                    partial: 1,
                },
            },
        )];
        assert!(gate(&[UpdateScheme::Unordered], &lossy));
        // ...and an all-clean unordered sweep fails the gate.
        let too_clean = vec![cell(
            UpdateScheme::Unordered,
            Failpoint::MidTuple,
            CellOutcome::Killed {
                persist: 3,
                judgement: healthy,
            },
        )];
        assert!(!gate(&[UpdateScheme::Unordered], &too_clean));
        // Silent garbage anywhere fails, even on the strawman.
        let silent = vec![cell(
            UpdateScheme::Unordered,
            Failpoint::MidTuple,
            CellOutcome::Killed {
                persist: 3,
                judgement: Judgement {
                    verdict: FaultVerdict::UndetectedCorruption,
                    ..healthy
                },
            },
        )];
        assert!(!gate(&[UpdateScheme::Unordered], &silent));
        // Timeouts fail regardless of scheme.
        let stuck = vec![cell(
            UpdateScheme::Unordered,
            Failpoint::MidTuple,
            CellOutcome::TimedOut,
        )];
        assert!(!gate(&[UpdateScheme::Unordered], &stuck));
    }
}
