//! Real-process crash harness: SIGKILL a child simulation at a named
//! failpoint, reopen the file image it left behind, and prove recovery.
//!
//! The harness closes the loop that the in-memory fault sweep
//! (`fault_sweep`) cannot: there, "crash" means truncating a record
//! list; here, a real OS process is killed with an unblockable signal
//! while its [`plp_core::DurableSink`] is mid-write, and the only
//! surviving evidence is the write-through device image on disk.
//!
//! Protocol, per matrix cell `(scheme, failpoint, hit)`:
//!
//! 1. the parent re-executes itself (`current_exe`) with `--child`
//!    arguments naming the scheme, workload, seed, image path and an
//!    armed park-mode failpoint;
//! 2. the child simulates with a durable sink attached; when the
//!    failpoint fires it prints [`plp_core::failpoint::PARK_MARKER`],
//!    flushes stdout and parks in an infinite sleep — *deliberately
//!    unable* to clean up;
//! 3. the parent reads the marker, sends SIGKILL
//!    ([`std::process::Child::kill`]), reaps the corpse, and replays
//!    the orphaned image with [`plp_core::replay_image`];
//! 4. a golden in-process run of the same `(scheme, trace, seed)`
//!    provides the full persist history; the ids the image holds
//!    completely define the cut, [`plp_core::RecoveryManager`] judges
//!    the image against the cut's expectation, and the replayed
//!    counter state is compared field-for-field against a golden fold.
//!
//! A child that finishes the trace before its failpoint fires prints a
//! deterministic `COMPLETED_MARKER` line instead; those cells verify
//! the complete image round-trips (and back the `verify.sh` gate that
//! file-backed no-kill stdout is byte-identical to in-memory stdout).
//!
//! The crash model is process death, not power loss: `write(2)`-ed
//! bytes live in the kernel page cache and survive SIGKILL without
//! fsync, so the image the parent reopens is exactly what the child
//! had appended when it parked.

use std::collections::{BTreeSet, HashMap};
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

use plp_core::failpoint::PARK_MARKER;
use plp_core::{
    replay_image, DurableSink, Failpoint, FailpointPlan, FailpointRegistry, FaultVerdict,
    ObserverExpectation, PersistRecord, RecoveryManager, SimSetup, SystemConfig, UpdateScheme,
};
use plp_crypto::CounterBlock;
use plp_trace::spec;

use crate::cache;
use crate::supervisor::{DegradationReport, RunLog, RunVerdict};

/// Marker line a child prints when it finishes its trace without the
/// armed failpoint firing. Stable: the `verify.sh` no-kill identity
/// gate `cmp`s whole stdouts across file-backed and in-memory runs.
pub const COMPLETED_MARKER: &str = "crash-harness: completed";

/// Marker a recovery-mode child prints after its durable recovery
/// runs to completion (parked recovery children print [`PARK_MARKER`]
/// instead and never reach this line).
pub const RECOVERED_MARKER: &str = "crash-harness: recovered";

// ---------------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------------

/// Everything a child process needs to reproduce one simulation:
/// parsed from `--child` arguments, serialized back with
/// [`ChildSpec::to_args`]. The round trip is exact — the child must
/// run the *same* trace the parent's golden run used.
#[derive(Debug, Clone, PartialEq)]
pub struct ChildSpec {
    /// Update scheme under test.
    pub scheme: UpdateScheme,
    /// Workload profile name (e.g. `gcc`).
    pub benchmark: String,
    /// Trace length.
    pub instructions: u64,
    /// Trace seed.
    pub seed: u64,
    /// Device image path; `None` runs purely in memory (the identity
    /// gate's baseline half).
    pub image: Option<PathBuf>,
    /// Armed park-mode failpoint; `None` runs to completion.
    pub plan: Option<FailpointPlan>,
    /// Recovery mode: instead of running the trace, durably recover
    /// the existing image (the second/third process of the
    /// double-kill protocol). Requires `image`.
    pub recover: bool,
}

impl ChildSpec {
    /// The `--child` argument vector that [`ChildSpec::from_args`]
    /// parses back into `self`.
    pub fn to_args(&self) -> Vec<String> {
        let mut args = vec![
            "--child".to_string(),
            "--scheme".to_string(),
            self.scheme.name().to_string(),
            "--benchmark".to_string(),
            self.benchmark.clone(),
            "--instructions".to_string(),
            self.instructions.to_string(),
            "--seed".to_string(),
            self.seed.to_string(),
        ];
        if let Some(image) = &self.image {
            args.push("--image".to_string());
            args.push(image.display().to_string());
        }
        if let Some(plan) = self.plan {
            args.push("--failpoint".to_string());
            args.push(plan.point.name().to_string());
            args.push("--hit".to_string());
            args.push(plan.hit.to_string());
        }
        if self.recover {
            args.push("--recover".to_string());
        }
        args
    }

    /// Parses the argument list *after* the `--child` flag.
    pub fn from_args(args: &[String]) -> Result<ChildSpec, String> {
        let mut scheme = None;
        let mut benchmark = None;
        let mut instructions = None;
        let mut seed = None;
        let mut image = None;
        let mut point = None;
        let mut hit = None;
        let mut recover = false;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if flag == "--child" {
                continue;
            }
            if flag == "--recover" {
                recover = true;
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag {flag} is missing its value"))?;
            match flag.as_str() {
                "--scheme" => {
                    scheme = Some(
                        UpdateScheme::parse(value).ok_or_else(|| format!("unknown scheme {value}"))?,
                    );
                }
                "--benchmark" => benchmark = Some(value.clone()),
                "--instructions" => {
                    instructions =
                        Some(value.parse().map_err(|_| format!("bad instruction count {value}"))?);
                }
                "--seed" => {
                    seed = Some(value.parse().map_err(|_| format!("bad seed {value}"))?);
                }
                "--image" => image = Some(PathBuf::from(value)),
                "--failpoint" => {
                    point = Some(
                        Failpoint::parse(value).ok_or_else(|| format!("unknown failpoint {value}"))?,
                    );
                }
                "--hit" => {
                    hit = Some(value.parse().map_err(|_| format!("bad hit index {value}"))?);
                }
                other => return Err(format!("unknown child flag {other}")),
            }
        }
        let plan = match (point, hit) {
            (Some(point), Some(hit)) => Some(FailpointPlan { point, hit }),
            (None, None) => None,
            _ => return Err("--failpoint and --hit must be given together".to_string()),
        };
        if recover && image.is_none() {
            return Err("--recover requires --image".to_string());
        }
        Ok(ChildSpec {
            scheme: scheme.ok_or("missing --scheme")?,
            benchmark: benchmark.ok_or("missing --benchmark")?,
            instructions: instructions.ok_or("missing --instructions")?,
            seed: seed.ok_or("missing --seed")?,
            image,
            plan,
            recover,
        })
    }
}

/// Runs one child simulation to completion (or until its armed
/// failpoint parks the process — in which case this never returns).
/// Returns the `COMPLETED_MARKER` stdout line on success.
pub fn run_child(child: &ChildSpec) -> Result<String, String> {
    let profile = spec::benchmark(&child.benchmark)
        .ok_or_else(|| format!("unknown benchmark {}", child.benchmark))?;
    let setup = SimSetup::for_profile(
        SystemConfig::for_scheme(child.scheme),
        &profile,
        child.seed,
    )
    .map_err(|e| format!("config rejected: {e}"))?;
    let trace = setup.generate_trace(child.instructions);
    let mut sim = setup.simulation();
    if let Some(path) = &child.image {
        let sink = DurableSink::create(path, setup.config(), child.seed)
            .map_err(|e| format!("cannot create device image {}: {e}", path.display()))?;
        sim.attach_durable_sink(sink);
    }
    if let Some(plan) = child.plan {
        sim.arm_failpoints(FailpointRegistry::park(plan));
    }
    let (report, finished) = sim.run_with_state(&trace);
    if let Some(e) = finished.durable_error() {
        return Err(format!("durable sink poisoned: {e}"));
    }
    // Byte-stable across file-backed and in-memory runs: the sink must
    // not perturb the simulation, and this line is the proof surface.
    Ok(format!(
        "{COMPLETED_MARKER} scheme={} persists={} epochs={} root={:#018x} cycles={}",
        child.scheme.name(),
        report.persists,
        report.epochs,
        finished.architectural_root(),
        report.total_cycles
    ))
}

/// Runs one child in recovery mode: rebuilds the golden history for
/// the spec's `(scheme, benchmark, instructions, seed)` in-process,
/// then durably recovers the existing image. With an armed park-mode
/// plan the process parks at the recovery failpoint and awaits
/// SIGKILL; without one it prints the [`RECOVERED_MARKER`] line.
pub fn run_recover_child(child: &ChildSpec) -> Result<String, String> {
    let image = child
        .image
        .as_deref()
        .ok_or("recovery mode requires --image")?;
    let golden = golden_run(child.scheme, &child.benchmark, child.instructions, child.seed)?;
    let replayed = replay_image(image, golden.config.key)
        .map_err(|e| format!("replay of {} failed: {e}", image.display()))?;
    let expected = cut_expectation(&golden, &replayed.complete_ids);
    let manager = RecoveryManager::for_config(&golden.config);
    let mut registry = child.plan.map(FailpointRegistry::park);
    let wb = plp_core::recover_image(
        image,
        golden.config.key,
        &manager,
        &golden.records,
        &expected,
        registry.as_mut(),
    )
    .map_err(|e| format!("durable recovery of {} failed: {e}", image.display()))?;
    Ok(format!(
        "{RECOVERED_MARKER} scheme={} verdict={} complete={} quarantined={} root={:#018x} rewritten={}",
        child.scheme.name(),
        wb.outcome.verdict().name(),
        wb.replayed.complete_ids.len(),
        wb.outcome.quarantined().len(),
        wb.outcome.adopted_root,
        wb.rewritten
    ))
}

// ---------------------------------------------------------------------------
// Golden model + judge
// ---------------------------------------------------------------------------

/// One full in-process reference run: the persist history every kill
/// of the same `(scheme, benchmark, instructions, seed)` is cut from.
struct Golden {
    config: SystemConfig,
    records: Vec<PersistRecord>,
}

fn golden_run(
    scheme: UpdateScheme,
    benchmark: &str,
    instructions: u64,
    seed: u64,
) -> Result<Golden, String> {
    let profile =
        spec::benchmark(benchmark).ok_or_else(|| format!("unknown benchmark {benchmark}"))?;
    let mut config = SystemConfig::for_scheme(scheme);
    config.record_persists = true;
    let setup = SimSetup::for_profile(config, &profile, seed)
        .map_err(|e| format!("config rejected: {e}"))?;
    let trace = setup.generate_trace(instructions);
    let config = setup.config().clone();
    let (report, _) = setup.simulation().run_with_state(&trace);
    Ok(Golden {
        config,
        records: report.records,
    })
}

/// What recovery concluded about one reopened image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Judgement {
    /// The recovery verdict against the cut's observer expectation.
    pub verdict: FaultVerdict,
    /// Whether the replayed split-counter state equals the golden
    /// program-order fold of the cut — the "recovered tree/counter
    /// state matches the in-memory model" half of the contract (the
    /// counters *are* the tree: equal counters force an equal root).
    pub counters_match: bool,
    /// Complete persists the image held.
    pub complete: usize,
    /// Persists with only some tuple components on media (torn).
    pub partial: usize,
}

impl Judgement {
    /// Detect-or-recover held and the counter state is the model's.
    pub fn healthy(&self) -> bool {
        matches!(self.verdict, FaultVerdict::Clean | FaultVerdict::Repaired)
            && self.counters_match
    }
}

/// The observer expectation for the completely persisted prefix: the
/// program-order fold of the golden records cut to `complete_ids`.
/// The file is append-ordered, so id order is the architectural order
/// for every scheme (including unordered, whose component *times*
/// legitimately reorder against program order).
fn cut_expectation(golden: &Golden, complete_ids: &BTreeSet<u64>) -> ObserverExpectation {
    let mut plaintexts = HashMap::new();
    for r in golden
        .records
        .iter()
        .filter(|r| complete_ids.contains(&r.id.0))
    {
        plaintexts.insert(r.addr, r.plaintext);
    }
    ObserverExpectation { plaintexts }
}

/// The golden program-order counter fold of the same cut — the
/// "field-exact counters" half of a judgement.
fn cut_counters(golden: &Golden, complete_ids: &BTreeSet<u64>) -> HashMap<u64, CounterBlock> {
    let mut counters = HashMap::new();
    for r in golden
        .records
        .iter()
        .filter(|r| complete_ids.contains(&r.id.0))
    {
        counters.insert(r.addr.page().index(), r.counters_after.clone());
    }
    counters
}

/// Reopens `image`, replays it, and judges it against the golden run.
fn judge(golden: &Golden, image: &Path) -> Result<Judgement, String> {
    let replayed = replay_image(image, golden.config.key)
        .map_err(|e| format!("replay of {} failed: {e}", image.display()))?;
    let expected = cut_expectation(golden, &replayed.complete_ids);
    let counters = cut_counters(golden, &replayed.complete_ids);
    let outcome = RecoveryManager::for_config(&golden.config).recover(
        &replayed.image,
        &golden.records,
        &expected,
    );
    Ok(Judgement {
        verdict: outcome.verdict(),
        counters_match: replayed.image.counters == counters,
        complete: replayed.complete_ids.len(),
        partial: replayed.partial_ids.len(),
    })
}

// ---------------------------------------------------------------------------
// Parent side: spawn, watch, SIGKILL
// ---------------------------------------------------------------------------

/// How one matrix cell's child process ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The failpoint fired at `persist`; the child was SIGKILLed while
    /// parked and its image judged.
    Killed {
        /// Persist index (1-based) the kill landed in.
        persist: u64,
        /// Recovery's judgement of the orphaned image.
        judgement: Judgement,
    },
    /// The trace ended before the failpoint fired; the complete image
    /// was judged as a round-trip sanity check.
    NotReached {
        /// Recovery's judgement of the complete image.
        judgement: Judgement,
    },
    /// The child printed neither marker within the watchdog window.
    TimedOut,
    /// Spawn, replay or judge failed outright.
    Error(String),
}

/// One judged matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Scheme under test.
    pub scheme: UpdateScheme,
    /// The armed failpoint.
    pub point: Failpoint,
    /// Zero-based hit index the plan armed.
    pub hit: u64,
    /// How the cell ended.
    pub outcome: CellOutcome,
}

/// Parses `persist=<n>` out of a park-marker line.
fn parse_park_persist(line: &str) -> Option<u64> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix("persist="))
        .and_then(|v| v.parse().ok())
}

/// Spawns one child, waits for a marker line, SIGKILLs it if parked.
/// Returns the outcome *before* judging (the caller owns the image).
fn run_cell_child(exe: &Path, spec: &ChildSpec, watchdog: Duration) -> CellOutcome {
    let mut child = match Command::new(exe)
        .args(spec.to_args())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
    {
        Ok(child) => child,
        Err(e) => return CellOutcome::Error(format!("spawn failed: {e}")),
    };
    // Park-marker bookkeeping: while the child lives, a `.pid` file
    // next to its image names it. A parent killed mid-cell leaves the
    // file (and possibly a parked child) behind; the next sweep's
    // startup GC reaps both.
    let pid_file = spec.image.as_deref().map(pid_marker_path);
    if let Some(pf) = &pid_file {
        let _ = std::fs::write(pf, format!("{}\n", child.id()));
    }
    let Some(stdout) = child.stdout.take() else {
        let _ = child.kill();
        let _ = child.wait();
        if let Some(pf) = &pid_file {
            let _ = std::fs::remove_file(pf);
        }
        return CellOutcome::Error("child stdout was not captured".to_string());
    };
    // A reader thread forwards marker lines; recv_timeout is the
    // watchdog. After the SIGKILL the pipe closes and the thread
    // drains to EOF on its own.
    let (tx, rx) = mpsc::channel::<String>();
    let reader = std::thread::spawn(move || {
        for line in std::io::BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let outcome = loop {
        match rx.recv_timeout(watchdog) {
            Ok(line) if line.starts_with(PARK_MARKER) => {
                // The whole point: a real, unblockable SIGKILL while
                // the child is parked mid-persist.
                let _ = child.kill();
                break match parse_park_persist(&line) {
                    Some(persist) => CellOutcome::Killed {
                        persist,
                        judgement: Judgement {
                            verdict: FaultVerdict::Clean,
                            counters_match: false,
                            complete: 0,
                            partial: 0,
                        },
                    },
                    None => CellOutcome::Error(format!("unparseable park marker: {line}")),
                };
            }
            Ok(line) if line.starts_with(COMPLETED_MARKER) => {
                break CellOutcome::NotReached {
                    judgement: Judgement {
                        verdict: FaultVerdict::Clean,
                        counters_match: false,
                        complete: 0,
                        partial: 0,
                    },
                };
            }
            Ok(_) => continue,
            Err(_) => {
                let _ = child.kill();
                break CellOutcome::TimedOut;
            }
        }
    };
    let _ = child.wait();
    let _ = reader.join();
    if let Some(pf) = &pid_file {
        let _ = std::fs::remove_file(pf);
    }
    outcome
}

/// How a recovery-mode child (double-kill protocol) ended.
#[derive(Debug, Clone, PartialEq)]
enum RecoveryChildEnd {
    /// The armed recovery failpoint fired; the child was SIGKILLed
    /// while parked.
    Parked,
    /// Durable recovery ran to completion; the [`RECOVERED_MARKER`]
    /// line it printed.
    Completed(String),
    /// Neither marker arrived inside the watchdog window.
    TimedOut,
    /// Spawn or child-side failure.
    Error(String),
}

/// Spawns one recovery-mode child and waits for its marker, with the
/// same SIGKILL-while-parked and pid-file discipline as
/// [`run_cell_child`].
fn run_recovery_child(exe: &Path, spec: &ChildSpec, watchdog: Duration) -> RecoveryChildEnd {
    let mut child = match Command::new(exe)
        .args(spec.to_args())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
    {
        Ok(child) => child,
        Err(e) => return RecoveryChildEnd::Error(format!("spawn failed: {e}")),
    };
    let pid_file = spec.image.as_deref().map(pid_marker_path);
    if let Some(pf) = &pid_file {
        let _ = std::fs::write(pf, format!("{}\n", child.id()));
    }
    let Some(stdout) = child.stdout.take() else {
        let _ = child.kill();
        let _ = child.wait();
        if let Some(pf) = &pid_file {
            let _ = std::fs::remove_file(pf);
        }
        return RecoveryChildEnd::Error("child stdout was not captured".to_string());
    };
    let (tx, rx) = mpsc::channel::<String>();
    let reader = std::thread::spawn(move || {
        for line in std::io::BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let end = loop {
        match rx.recv_timeout(watchdog) {
            Ok(line) if line.starts_with(PARK_MARKER) => {
                let _ = child.kill();
                break RecoveryChildEnd::Parked;
            }
            Ok(line) if line.starts_with(RECOVERED_MARKER) => {
                break RecoveryChildEnd::Completed(line);
            }
            Ok(_) => continue,
            Err(_) => {
                let _ = child.kill();
                break RecoveryChildEnd::TimedOut;
            }
        }
    };
    let _ = child.wait();
    let _ = reader.join();
    if let Some(pf) = &pid_file {
        let _ = std::fs::remove_file(pf);
    }
    end
}

/// Path of the `.pid` park-marker file for a child using `image`.
fn pid_marker_path(image: &Path) -> PathBuf {
    let mut os = image.as_os_str().to_os_string();
    os.push(".pid");
    PathBuf::from(os)
}

// ---------------------------------------------------------------------------
// Startup GC
// ---------------------------------------------------------------------------

// The harness is the one place allowed to signal arbitrary pids: a
// parent killed mid-cell leaves a parked child (infinite sleep) whose
// only record is its `.pid` file, and only SIGKILL can reap it.
extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

/// Reaps a parked child recorded in `pid_file`, if it is still alive
/// and verifiably ours (its cmdline contains the `--child` flag).
/// Returns whether a SIGKILL was actually sent.
fn reap_orphan(pid_file: &Path) -> bool {
    let Ok(text) = std::fs::read_to_string(pid_file) else {
        return false;
    };
    let Ok(pid) = text.trim().parse::<i32>() else {
        return false;
    };
    if pid <= 1 {
        return false;
    }
    let Ok(cmdline) = std::fs::read(format!("/proc/{pid}/cmdline")) else {
        return false; // already gone
    };
    let ours = cmdline
        .split(|b| *b == 0)
        .any(|arg| arg == b"--child");
    // SAFETY: plain syscall wrapper; SIGKILL (9) to a pid we just
    // verified belongs to a parked harness child.
    ours && unsafe { kill(pid, 9) } == 0
}

/// Removes stale crash images, recovery-scratch images, orphaned
/// `.pid` park-marker files (SIGKILLing any still-parked child they
/// name) and quarantined run-cache entries left behind by earlier
/// (possibly killed) harness invocations. Returns
/// `(files_removed, quarantine_entries_removed)`.
///
/// Both directories only ever hold files this repo's tooling wrote:
/// `*.img` device images, their `*.img.rec` recovery scratches and
/// `*.pid` markers here, and rejected cache entries moved aside by
/// [`crate::cache`]. Anything else is left alone.
pub fn gc_stale(image_dir: &Path, cache_dir: &Path) -> (usize, usize) {
    let mut images = 0;
    if let Ok(entries) = std::fs::read_dir(image_dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            let stale = match path.extension() {
                Some(e) if e == "img" || e == "rec" => true,
                Some(e) if e == "pid" => {
                    reap_orphan(&path);
                    true
                }
                _ => false,
            };
            if stale && std::fs::remove_file(&path).is_ok() {
                images += 1;
            }
        }
    }
    let mut quarantined = 0;
    if let Ok(entries) = std::fs::read_dir(cache::quarantine_dir(cache_dir)) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_file() && std::fs::remove_file(&path).is_ok() {
                quarantined += 1;
            }
        }
    }
    (images, quarantined)
}

// ---------------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------------

/// Parent-side sweep configuration.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Workload profile name.
    pub benchmark: String,
    /// Trace length per child.
    pub instructions: u64,
    /// Trace seed.
    pub seed: u64,
    /// Schemes to sweep; default: every correct engine (`phoenix`
    /// included via [`UpdateScheme::correct`]) plus the two schemes
    /// that must demonstrably lose data — the `unordered` strawman
    /// everywhere, and `triad_nvm` inside its relaxed flush window.
    pub schemes: Vec<UpdateScheme>,
    /// Failpoints to arm; default: the whole run-path catalog
    /// (epoch-only points are skipped for strict-persistency schemes;
    /// recovery points belong to the double-kill sweep, not this one).
    pub points: Vec<Failpoint>,
    /// Hit-index override applied to every point; `None` uses the
    /// per-point defaults of [`default_hits`].
    pub hits: Option<Vec<u64>>,
    /// Where child images are written (and GC'd at startup).
    pub image_dir: PathBuf,
    /// Run-cache directory whose quarantine is GC'd at startup.
    pub cache_dir: PathBuf,
    /// Per-child watchdog.
    pub watchdog: Duration,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        let mut schemes: Vec<UpdateScheme> = UpdateScheme::correct().to_vec();
        schemes.push(UpdateScheme::Unordered);
        schemes.push(UpdateScheme::TriadNvm);
        HarnessOptions {
            benchmark: "gcc".to_string(),
            instructions: 20_000,
            seed: 7,
            schemes,
            points: Failpoint::RUN.to_vec(),
            hits: None,
            image_dir: PathBuf::from("results").join("crash_images"),
            cache_dir: crate::matrix::default_cache_dir(),
            watchdog: Duration::from_secs(120),
        }
    }
}

/// Default hit indices (zero-based) per failpoint: one early, one
/// deeper into the run. Sites that count faster (`mid-tuple` visits
/// once per component under `unordered`, `between-levels` once per
/// touched tree level) still land well inside a 20k-instruction trace;
/// epoch seals are rare, so their indices stay small.
pub fn default_hits(point: Failpoint) -> Vec<u64> {
    match point {
        Failpoint::MidTuple => vec![5, 40],
        Failpoint::BetweenLevels => vec![3, 97],
        Failpoint::PreRootSeal | Failpoint::PostRootSeal => vec![2, 33],
        Failpoint::MidEpochFlush => vec![1, 10],
        Failpoint::PostEpochSeal => vec![0, 2],
        // Recovery points fire once per recovery run, except the
        // writeback point which fires per scratch frame. The deeper
        // writeback hit must stay under the smallest scratch a swept
        // kill produces (the unordered strawman's ~13-frame image).
        Failpoint::RecoveryPreRepair
        | Failpoint::RecoveryPreRootCommit
        | Failpoint::RecoveryPostRootCommit => vec![0],
        Failpoint::RecoveryMidWriteback => vec![1, 7],
    }
}

/// Whether `point` can fire at all under `scheme` during a live run.
fn applicable(scheme: UpdateScheme, point: Failpoint) -> bool {
    match point {
        Failpoint::MidEpochFlush | Failpoint::PostEpochSeal => scheme.is_epoch_based(),
        p if p.is_recovery() => false,
        _ => true,
    }
}

/// The judged matrix plus the aggregate verdict.
#[derive(Debug)]
pub struct HarnessReport {
    /// Every judged cell, in sweep order.
    pub cells: Vec<CellReport>,
    /// Supervisor-style degradation ledger (kills are intentional).
    pub degradation: DegradationReport,
    /// Stale images / quarantine entries removed at startup.
    pub gc: (usize, usize),
    /// Whether the harness gate passed (see [`HarnessReport::gate`]).
    pub pass: bool,
}

/// Runs the full SIGKILL sweep. `exe` is the binary to re-execute in
/// child mode (normally [`std::env::current_exe`]).
pub fn run_harness(opts: &HarnessOptions, exe: &Path) -> Result<HarnessReport, String> {
    let gc = gc_stale(&opts.image_dir, &opts.cache_dir);
    std::fs::create_dir_all(&opts.image_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.image_dir.display()))?;

    let mut cells = Vec::new();
    let mut degradation = DegradationReport::new(Vec::new());
    for &scheme in &opts.schemes {
        let golden = golden_run(scheme, &opts.benchmark, opts.instructions, opts.seed)?;
        for &point in &opts.points {
            if !applicable(scheme, point) {
                continue;
            }
            let hits = opts
                .hits
                .clone()
                .unwrap_or_else(|| default_hits(point));
            for hit in hits {
                let image = opts
                    .image_dir
                    .join(format!("{}-{}-h{}.img", scheme.name(), point.name(), hit));
                let spec = ChildSpec {
                    scheme,
                    benchmark: opts.benchmark.clone(),
                    instructions: opts.instructions,
                    seed: opts.seed,
                    image: Some(image.clone()),
                    plan: Some(FailpointPlan { point, hit }),
                    recover: false,
                };
                let mut outcome = run_cell_child(exe, &spec, opts.watchdog);
                // Judge the surviving image for both kill and
                // run-to-completion outcomes.
                match &mut outcome {
                    CellOutcome::Killed { judgement, .. }
                    | CellOutcome::NotReached { judgement } => match judge(&golden, &image) {
                        Ok(j) => *judgement = j,
                        Err(e) => outcome = CellOutcome::Error(e),
                    },
                    _ => {}
                }
                let key = format!("{}/{}/h{}", scheme.name(), point.name(), hit);
                let verdict = match &outcome {
                    CellOutcome::Killed { .. } => RunVerdict::KilledByHarness {
                        failpoint: point.name(),
                    },
                    CellOutcome::NotReached { .. } => RunVerdict::Ok,
                    CellOutcome::TimedOut => RunVerdict::TimedOut { attempts: 1 },
                    CellOutcome::Error(_) => RunVerdict::Rejected,
                };
                let failures = match &outcome {
                    CellOutcome::Error(e) => vec![e.clone()],
                    CellOutcome::TimedOut => vec![format!("{key}: watchdog expired")],
                    _ => Vec::new(),
                };
                degradation.record(
                    &key,
                    RunLog {
                        verdict,
                        failures,
                        quarantine: None,
                        error: None,
                    },
                );
                // Healthy cells clean up after themselves; failed
                // cells keep the image on disk for inspection (the
                // next run's GC removes it).
                let keep = match &outcome {
                    CellOutcome::Killed { judgement, .. } => !judgement.healthy(),
                    CellOutcome::NotReached { judgement } => !judgement.healthy(),
                    _ => true,
                };
                if !keep {
                    let _ = std::fs::remove_file(&image);
                }
                cells.push(CellReport {
                    scheme,
                    point,
                    hit,
                    outcome,
                });
            }
        }
    }
    let pass = gate(&opts.schemes, &cells);
    Ok(HarnessReport {
        cells,
        degradation,
        gc,
        pass,
    })
}

/// The PASS gate:
///
/// * every *correct* scheme: each applicable failpoint produced at
///   least one real kill, and every killed or completed cell is
///   [`Judgement::healthy`] — Clean or Repaired, counters matching;
/// * `triad_nvm` (when swept): every kill *outside* the relaxed flush
///   window is healthy (the strict slice tears atomically), at least
///   one `between-levels` kill is unhealthy (the relaxed window
///   genuinely loses data), and every loss is *detected* — never
///   silent garbage, never an undetected stale rollback;
/// * the `unordered` strawman (when swept): at least one kill is
///   *unhealthy* (Tables I/II — torn tuples lose data), but none may
///   be silent garbage ([`FaultVerdict::UndetectedCorruption`]) —
///   the MAC + BMT must still catch every non-authentic state;
/// * no cell timed out or errored.
pub fn gate(schemes: &[UpdateScheme], cells: &[CellReport]) -> bool {
    let correct = UpdateScheme::correct();
    for &scheme in schemes {
        let mine: Vec<&CellReport> = cells.iter().filter(|c| c.scheme == scheme).collect();
        if mine.iter().any(|c| {
            matches!(c.outcome, CellOutcome::TimedOut | CellOutcome::Error(_))
        }) {
            return false;
        }
        if correct.contains(&scheme) {
            for &point in Failpoint::RUN.iter().filter(|&&p| applicable(scheme, p)) {
                let at_point: Vec<&&CellReport> =
                    mine.iter().filter(|c| c.point == point).collect();
                if at_point.is_empty() {
                    continue; // point filtered out of this sweep
                }
                if !at_point
                    .iter()
                    .any(|c| matches!(c.outcome, CellOutcome::Killed { .. }))
                {
                    return false;
                }
                let all_healthy = at_point.iter().all(|c| match &c.outcome {
                    CellOutcome::Killed { judgement, .. }
                    | CellOutcome::NotReached { judgement } => judgement.healthy(),
                    _ => false,
                });
                if !all_healthy {
                    return false;
                }
            }
        } else if scheme == UpdateScheme::TriadNvm {
            // The relaxed-tree class: strict below the floor, lossy
            // (but detectably so) only inside the lazy flush window.
            let mut lossy_in_window = false;
            for c in &mine {
                let judgement = match &c.outcome {
                    CellOutcome::Killed { judgement, .. }
                    | CellOutcome::NotReached { judgement } => judgement,
                    _ => return false,
                };
                if matches!(
                    judgement.verdict,
                    FaultVerdict::UndetectedCorruption | FaultVerdict::StaleRollback
                ) {
                    return false;
                }
                if !judgement.healthy() {
                    if c.point != Failpoint::BetweenLevels {
                        return false;
                    }
                    lossy_in_window = true;
                }
            }
            if mine.iter().any(|c| c.point == Failpoint::BetweenLevels) && !lossy_in_window {
                return false;
            }
        } else {
            let mut lossy = false;
            for c in &mine {
                if let CellOutcome::Killed { judgement, .. } = &c.outcome {
                    if judgement.verdict == FaultVerdict::UndetectedCorruption {
                        return false;
                    }
                    if !judgement.healthy() {
                        lossy = true;
                    }
                }
            }
            if !lossy {
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Double-kill sweep: SIGKILL the run, then SIGKILL the recovery
// ---------------------------------------------------------------------------

/// One judged double-kill cell: a run killed at `(run_point,
/// run_hit)`, a recovery of that image killed at `(recovery_point,
/// recovery_hit)`, and a third process that recovered to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct DoubleKillCell {
    /// Scheme under test.
    pub scheme: UpdateScheme,
    /// The run-path failpoint the first kill was armed at.
    pub run_point: Failpoint,
    /// Its zero-based hit index.
    pub run_hit: u64,
    /// The recovery failpoint the second kill was armed at.
    pub recovery_point: Failpoint,
    /// Its zero-based hit index.
    pub recovery_hit: u64,
    /// How the cell ended.
    pub outcome: DoubleKillOutcome,
}

/// The outcome of one double-kill cell.
#[derive(Debug, Clone, PartialEq)]
pub enum DoubleKillOutcome {
    /// All three processes ran; the final image was judged.
    Done {
        /// Persist index the first kill landed in.
        first_persist: u64,
        /// Whether the armed recovery failpoint actually fired (the
        /// second SIGKILL landed while recovery was parked there).
        second_fired: bool,
        /// Recovery was never *less* recovered than before the second
        /// kill: the set of fully durable persist ids survived both
        /// the killed recovery and the completing one, and the final
        /// image is canonical-recovered.
        monotone: bool,
        /// The third process's recovery verdict, re-derived by the
        /// parent from the final image.
        final_verdict: FaultVerdict,
        /// Field-exact match of the final counters against the golden
        /// program-order fold of the durable cut.
        counters_match: bool,
        /// Complete persists in the final image.
        complete: usize,
        /// Addresses the final image quarantines.
        quarantined: usize,
    },
    /// A child process timed out.
    TimedOut,
    /// Spawn, replay or judge failure.
    Error(String),
}

/// The judged double-kill matrix plus the aggregate verdict.
#[derive(Debug)]
pub struct DoubleKillReport {
    /// Every judged cell, in sweep order.
    pub cells: Vec<DoubleKillCell>,
    /// Stale files / quarantine entries removed at startup.
    pub gc: (usize, usize),
    /// Whether [`double_kill_gate`] passed.
    pub pass: bool,
}

/// The run-path plan the first kill of a double-kill cell arms: the
/// first applicable point of the sweep, at its deepest default hit
/// (or the caller's override). Deep hits maximize address reuse, so
/// the `unordered` strawman's torn tuple demonstrably quarantines.
fn double_kill_run_plan(scheme: UpdateScheme, opts: &HarnessOptions) -> Option<FailpointPlan> {
    let point = opts
        .points
        .iter()
        .copied()
        .find(|&p| applicable(scheme, p))?;
    let hit = match &opts.hits {
        Some(hits) => *hits.last()?,
        None => *default_hits(point).last()?,
    };
    Some(FailpointPlan { point, hit })
}

/// Runs the nested-crash sweep: for each scheme, kill a child at a
/// run failpoint, then for each recovery failpoint re-exec the image
/// into durable recovery, SIGKILL it parked there, and require a
/// third process to finish the recovery. The parent independently
/// replays the final image and judges it against the golden cut.
pub fn run_double_kill(opts: &HarnessOptions, exe: &Path) -> Result<DoubleKillReport, String> {
    let gc = gc_stale(&opts.image_dir, &opts.cache_dir);
    std::fs::create_dir_all(&opts.image_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.image_dir.display()))?;

    let mut cells = Vec::new();
    for &scheme in &opts.schemes {
        let golden = golden_run(scheme, &opts.benchmark, opts.instructions, opts.seed)?;
        let Some(run_plan) = double_kill_run_plan(scheme, opts) else {
            continue;
        };
        let base = opts.image_dir.join(format!(
            "dk-{}-{}-h{}.img",
            scheme.name(),
            run_plan.point.name(),
            run_plan.hit
        ));
        let spec1 = ChildSpec {
            scheme,
            benchmark: opts.benchmark.clone(),
            instructions: opts.instructions,
            seed: opts.seed,
            image: Some(base.clone()),
            plan: Some(run_plan),
            recover: false,
        };
        let first = run_cell_child(exe, &spec1, opts.watchdog);
        let first_persist = match &first {
            CellOutcome::Killed { persist, .. } => *persist,
            other => {
                for &rp in Failpoint::RECOVERY.iter() {
                    cells.push(DoubleKillCell {
                        scheme,
                        run_point: run_plan.point,
                        run_hit: run_plan.hit,
                        recovery_point: rp,
                        recovery_hit: 0,
                        outcome: DoubleKillOutcome::Error(format!(
                            "first kill did not park: {other:?}"
                        )),
                    });
                }
                continue;
            }
        };
        let killed_bytes = std::fs::read(&base)
            .map_err(|e| format!("cannot read killed image {}: {e}", base.display()))?;
        let base_ids = replay_image(&base, golden.config.key)
            .map_err(|e| format!("replay of killed image failed: {e}"))?
            .complete_ids;

        let mut scheme_ok = true;
        for &rp in Failpoint::RECOVERY.iter() {
            for &rh in &default_hits(rp) {
                let cell_img = opts.image_dir.join(format!(
                    "dk-{}-{}-h{}-{}-h{}.img",
                    scheme.name(),
                    run_plan.point.name(),
                    run_plan.hit,
                    rp.name(),
                    rh
                ));
                let outcome = double_kill_cell(
                    exe,
                    opts,
                    &golden,
                    scheme,
                    first_persist,
                    &killed_bytes,
                    &base_ids,
                    &cell_img,
                    rp,
                    rh,
                );
                let healthy = matches!(
                    &outcome,
                    DoubleKillOutcome::Done {
                        second_fired: true,
                        monotone: true,
                        ..
                    }
                );
                if healthy {
                    let _ = std::fs::remove_file(&cell_img);
                } else {
                    scheme_ok = false;
                }
                cells.push(DoubleKillCell {
                    scheme,
                    run_point: run_plan.point,
                    run_hit: run_plan.hit,
                    recovery_point: rp,
                    recovery_hit: rh,
                    outcome,
                });
            }
        }
        if scheme_ok {
            let _ = std::fs::remove_file(&base);
        }
    }
    let pass = double_kill_gate(&opts.schemes, &cells);
    Ok(DoubleKillReport { cells, gc, pass })
}

/// One recovery cell of the double-kill protocol: seed the image with
/// the first kill's bytes, kill a recovery parked at `(rp, rh)`, let
/// a third process finish, and judge the final image.
#[allow(clippy::too_many_arguments)]
fn double_kill_cell(
    exe: &Path,
    opts: &HarnessOptions,
    golden: &Golden,
    scheme: UpdateScheme,
    first_persist: u64,
    killed_bytes: &[u8],
    base_ids: &BTreeSet<u64>,
    cell_img: &Path,
    rp: Failpoint,
    rh: u64,
) -> DoubleKillOutcome {
    if let Err(e) = std::fs::write(cell_img, killed_bytes) {
        return DoubleKillOutcome::Error(format!("cannot seed cell image: {e}"));
    }
    let spec2 = ChildSpec {
        scheme,
        benchmark: opts.benchmark.clone(),
        instructions: opts.instructions,
        seed: opts.seed,
        image: Some(cell_img.to_path_buf()),
        plan: Some(FailpointPlan { point: rp, hit: rh }),
        recover: true,
    };
    let second_fired = match run_recovery_child(exe, &spec2, opts.watchdog) {
        RecoveryChildEnd::Parked => true,
        RecoveryChildEnd::Completed(_) => false,
        RecoveryChildEnd::TimedOut => return DoubleKillOutcome::TimedOut,
        RecoveryChildEnd::Error(e) => {
            return DoubleKillOutcome::Error(format!("killed recovery: {e}"))
        }
    };
    // Monotonicity, checkpoint 1: whatever instant the second kill
    // landed at, the durable cut never shrank.
    let mid_ids = match replay_image(cell_img, golden.config.key) {
        Ok(r) => r.complete_ids,
        Err(e) => return DoubleKillOutcome::Error(format!("replay after second kill: {e}")),
    };
    let mut monotone = mid_ids == *base_ids;

    // Third process: a fresh recovery with no failpoint must complete.
    let spec3 = ChildSpec {
        plan: None,
        ..spec2
    };
    match run_recovery_child(exe, &spec3, opts.watchdog) {
        RecoveryChildEnd::Completed(_) => {}
        RecoveryChildEnd::Parked => {
            return DoubleKillOutcome::Error("unarmed recovery parked".to_string())
        }
        RecoveryChildEnd::TimedOut => return DoubleKillOutcome::TimedOut,
        RecoveryChildEnd::Error(e) => {
            return DoubleKillOutcome::Error(format!("final recovery: {e}"))
        }
    }

    // Parent-side judgement of the final image.
    let final_replay = match replay_image(cell_img, golden.config.key) {
        Ok(r) => r,
        Err(e) => return DoubleKillOutcome::Error(format!("replay of final image: {e}")),
    };
    monotone = monotone && final_replay.complete_ids == *base_ids && final_replay.recovered;
    let expected = cut_expectation(golden, &final_replay.complete_ids);
    let counters = cut_counters(golden, &final_replay.complete_ids);
    let outcome = RecoveryManager::for_config(&golden.config).recover(
        &final_replay.image,
        &golden.records,
        &expected,
    );
    DoubleKillOutcome::Done {
        first_persist,
        second_fired,
        monotone,
        final_verdict: outcome.verdict(),
        counters_match: final_replay.image.counters == counters,
        complete: final_replay.complete_ids.len(),
        quarantined: final_replay.quarantined.len(),
    }
}

/// The double-kill PASS gate:
///
/// * every *correct* scheme: each recovery failpoint produced a real
///   second kill, recovery stayed monotone, and the final image
///   judges Clean with field-exact counters;
/// * `triad_nvm` (when swept): a first kill outside the relaxed flush
///   window tears its strict slice atomically, so the cell must judge
///   Clean exactly like the correct class; a `between-levels` first
///   kill may instead detect the stranded pair (Clean or
///   DetectedLoss);
/// * the `unordered` strawman (when swept): recovery stays monotone
///   and detects its loss — every cell's final verdict is
///   DetectedLoss, never UndetectedCorruption;
/// * no cell timed out or errored.
pub fn double_kill_gate(schemes: &[UpdateScheme], cells: &[DoubleKillCell]) -> bool {
    let correct = UpdateScheme::correct();
    for &scheme in schemes {
        let mine: Vec<&DoubleKillCell> = cells.iter().filter(|c| c.scheme == scheme).collect();
        if mine.is_empty() {
            return false;
        }
        for &point in Failpoint::RECOVERY.iter() {
            if !mine.iter().any(|c| c.recovery_point == point) {
                return false;
            }
        }
        for cell in &mine {
            let DoubleKillOutcome::Done {
                second_fired,
                monotone,
                final_verdict,
                counters_match,
                ..
            } = &cell.outcome
            else {
                return false;
            };
            if !second_fired || !monotone {
                return false;
            }
            let ok = if correct.contains(&scheme) {
                *final_verdict == FaultVerdict::Clean && *counters_match
            } else if scheme == UpdateScheme::TriadNvm {
                match cell.run_point {
                    Failpoint::BetweenLevels => matches!(
                        final_verdict,
                        FaultVerdict::Clean | FaultVerdict::DetectedLoss
                    ),
                    _ => *final_verdict == FaultVerdict::Clean && *counters_match,
                }
            } else {
                *final_verdict == FaultVerdict::DetectedLoss
            };
            if !ok {
                return false;
            }
        }
    }
    true
}

/// Renders the double-kill verdict matrix.
pub fn render_double_kill(report: &DoubleKillReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "gc: removed {} stale file(s), {} quarantined cache entr(ies)\n\n",
        report.gc.0, report.gc.1
    ));
    out.push_str(&format!(
        "{:<12} {:<12} {:<22} {:>5} {:<15} {:>6} {:>9} {:>5} {:>5}\n",
        "scheme", "run-kill", "recovery-kill", "hit", "verdict", "fired", "monotone", "compl", "quar"
    ));
    for cell in &report.cells {
        let (verdict, fired, monotone, complete, quarantined) = match &cell.outcome {
            DoubleKillOutcome::Done {
                second_fired,
                monotone,
                final_verdict,
                counters_match,
                complete,
                quarantined,
                ..
            } => (
                format!(
                    "{}{}",
                    final_verdict.name(),
                    if *counters_match { "" } else { "!ctr" }
                ),
                second_fired.to_string(),
                monotone.to_string(),
                complete.to_string(),
                quarantined.to_string(),
            ),
            DoubleKillOutcome::TimedOut => (
                "timed-out".to_string(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ),
            DoubleKillOutcome::Error(e) => (
                format!("error: {e}"),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ),
        };
        out.push_str(&format!(
            "{:<12} {:<12} {:<22} {:>5} {:<15} {:>6} {:>9} {:>5} {:>5}\n",
            cell.scheme.name(),
            format!("{}/h{}", cell.run_point.name(), cell.run_hit),
            cell.recovery_point.name(),
            cell.recovery_hit,
            verdict,
            fired,
            monotone,
            complete,
            quarantined
        ));
    }
    out
}

/// Renders the verdict matrix in the `fault_sweep` house style.
pub fn render(report: &HarnessReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "gc: removed {} stale image(s), {} quarantined cache entr(ies)\n\n",
        report.gc.0, report.gc.1
    ));
    out.push_str(&format!(
        "{:<12} {:<16} {:>5} {:>9} {:<15} {:>9} {:>9}\n",
        "scheme", "failpoint", "hit", "persist", "verdict", "complete", "partial"
    ));
    for cell in &report.cells {
        let (persist, verdict, complete, partial) = match &cell.outcome {
            CellOutcome::Killed { persist, judgement } => (
                persist.to_string(),
                format!(
                    "{}{}",
                    judgement.verdict.name(),
                    if judgement.counters_match { "" } else { "!ctr" }
                ),
                judgement.complete.to_string(),
                judgement.partial.to_string(),
            ),
            CellOutcome::NotReached { judgement } => (
                "-".to_string(),
                format!("not-reached/{}", judgement.verdict.name()),
                judgement.complete.to_string(),
                judgement.partial.to_string(),
            ),
            CellOutcome::TimedOut => ("-".to_string(), "timed-out".to_string(), String::new(), String::new()),
            CellOutcome::Error(e) => ("-".to_string(), format!("error: {e}"), String::new(), String::new()),
        };
        out.push_str(&format!(
            "{:<12} {:<16} {:>5} {:>9} {:<15} {:>9} {:>9}\n",
            cell.scheme.name(),
            cell.point.name(),
            cell.hit,
            persist,
            verdict,
            complete,
            partial
        ));
    }
    out.push('\n');
    out.push_str(&report.degradation.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_with(image: Option<PathBuf>, plan: Option<FailpointPlan>) -> ChildSpec {
        ChildSpec {
            scheme: UpdateScheme::Sp,
            benchmark: "gcc".to_string(),
            instructions: 4_000,
            seed: 7,
            image,
            plan,
            recover: false,
        }
    }

    #[test]
    fn child_args_round_trip() {
        for spec in [
            spec_with(None, None),
            spec_with(Some(PathBuf::from("/tmp/x.img")), None),
            spec_with(
                Some(PathBuf::from("/tmp/x.img")),
                Some(FailpointPlan {
                    point: Failpoint::PostRootSeal,
                    hit: 33,
                }),
            ),
        ] {
            let args = spec.to_args();
            assert_eq!(ChildSpec::from_args(&args), Ok(spec));
        }
    }

    #[test]
    fn child_args_reject_malformed() {
        let bad = |args: &[&str]| {
            let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            ChildSpec::from_args(&owned).unwrap_err()
        };
        assert!(bad(&["--scheme"]).contains("missing its value"));
        assert!(bad(&["--scheme", "sp"]).contains("missing --benchmark"));
        assert!(bad(&["--wat", "1"]).contains("unknown child flag"));
        assert!(bad(&[
            "--scheme",
            "sp",
            "--benchmark",
            "gcc",
            "--instructions",
            "10",
            "--seed",
            "7",
            "--failpoint",
            "mid-tuple"
        ])
        .contains("must be given together"));
    }

    #[test]
    fn park_marker_parses() {
        assert_eq!(
            parse_park_persist("crash-harness: parked point=mid-tuple hit=40 persist=41"),
            Some(41)
        );
        assert_eq!(parse_park_persist("crash-harness: parked"), None);
    }

    #[test]
    fn default_hits_cover_every_point() {
        for &point in Failpoint::ALL.iter() {
            assert!(!default_hits(point).is_empty());
        }
    }

    #[test]
    fn epoch_points_only_apply_to_epoch_schemes() {
        assert!(!applicable(UpdateScheme::Sp, Failpoint::MidEpochFlush));
        assert!(applicable(UpdateScheme::O3, Failpoint::MidEpochFlush));
        assert!(applicable(UpdateScheme::Sp, Failpoint::MidTuple));
    }

    #[test]
    fn gc_removes_images_scratches_markers_and_quarantine_entries() {
        let base = std::env::temp_dir().join(format!("plp-crash-gc-{}", std::process::id()));
        let images = base.join("images");
        let cache_dir = base.join("cache");
        let qdir = cache::quarantine_dir(&cache_dir);
        std::fs::create_dir_all(&images).unwrap();
        std::fs::create_dir_all(&qdir).unwrap();
        std::fs::write(images.join("stale-a.img"), b"x").unwrap();
        std::fs::write(images.join("stale-b.img"), b"y").unwrap();
        // A recovery scratch (kill landed mid-writeback) and an
        // orphaned park marker (parent died before its child): both
        // are startup debris and must be swept. The marker names a
        // long-dead pid, so the sweep removes the file without
        // signalling anyone.
        std::fs::write(images.join("stale-b.img.rec"), b"r").unwrap();
        std::fs::write(images.join("stale-b.img.pid"), b"999999999").unwrap();
        std::fs::write(images.join("keep.txt"), b"z").unwrap();
        std::fs::write(qdir.join("entry.json"), b"{}").unwrap();
        assert_eq!(gc_stale(&images, &cache_dir), (4, 1));
        assert!(images.join("keep.txt").exists());
        assert!(!images.join("stale-a.img").exists());
        assert!(!images.join("stale-b.img.rec").exists());
        assert!(!images.join("stale-b.img.pid").exists());
        assert!(!qdir.join("entry.json").exists());
        // A second pass finds nothing; missing dirs are fine too.
        assert_eq!(gc_stale(&images, &cache_dir), (0, 0));
        assert_eq!(gc_stale(&base.join("nope"), &base.join("nada")), (0, 0));
        std::fs::remove_dir_all(&base).unwrap();
    }

    /// `reap_orphan` must never signal a process that is not a parked
    /// harness child, whatever a stale marker claims.
    #[test]
    fn reap_orphan_refuses_foreign_and_garbage_pids() {
        let base = std::env::temp_dir().join(format!("plp-crash-reap-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let marker = base.join("x.img.pid");
        // Garbage contents, init, and our own (live, non-child) pid.
        for contents in ["not-a-pid", "-4", "1", &std::process::id().to_string()] {
            std::fs::write(&marker, contents).unwrap();
            assert!(!reap_orphan(&marker), "reaped with marker {contents:?}");
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn gate_requires_kills_and_health_for_correct_schemes() {
        let healthy = Judgement {
            verdict: FaultVerdict::Clean,
            counters_match: true,
            complete: 10,
            partial: 0,
        };
        let cell = |scheme, point, outcome| CellReport {
            scheme,
            point,
            hit: 0,
            outcome,
        };
        // A correct scheme with one healthy kill per point passes.
        let cells: Vec<CellReport> = [
            Failpoint::MidTuple,
            Failpoint::BetweenLevels,
            Failpoint::PreRootSeal,
            Failpoint::PostRootSeal,
        ]
        .into_iter()
        .map(|p| {
            cell(
                UpdateScheme::Sp,
                p,
                CellOutcome::Killed {
                    persist: 10,
                    judgement: healthy,
                },
            )
        })
        .collect();
        assert!(gate(&[UpdateScheme::Sp], &cells));
        // An unhealthy kill on a correct scheme fails the gate.
        let mut bad = cells.clone();
        bad[0] = cell(
            UpdateScheme::Sp,
            Failpoint::MidTuple,
            CellOutcome::Killed {
                persist: 10,
                judgement: Judgement {
                    verdict: FaultVerdict::DetectedLoss,
                    ..healthy
                },
            },
        );
        assert!(!gate(&[UpdateScheme::Sp], &bad));
        // Only not-reached cells (no kill landed) also fail.
        let unreached = vec![cell(
            UpdateScheme::Sp,
            Failpoint::MidTuple,
            CellOutcome::NotReached { judgement: healthy },
        )];
        assert!(!gate(&[UpdateScheme::Sp], &unreached));
        // Unordered must demonstrate loss...
        let lossy = vec![cell(
            UpdateScheme::Unordered,
            Failpoint::MidTuple,
            CellOutcome::Killed {
                persist: 3,
                judgement: Judgement {
                    verdict: FaultVerdict::DetectedLoss,
                    counters_match: false,
                    complete: 2,
                    partial: 1,
                },
            },
        )];
        assert!(gate(&[UpdateScheme::Unordered], &lossy));
        // ...and an all-clean unordered sweep fails the gate.
        let too_clean = vec![cell(
            UpdateScheme::Unordered,
            Failpoint::MidTuple,
            CellOutcome::Killed {
                persist: 3,
                judgement: healthy,
            },
        )];
        assert!(!gate(&[UpdateScheme::Unordered], &too_clean));
        // Silent garbage anywhere fails, even on the strawman.
        let silent = vec![cell(
            UpdateScheme::Unordered,
            Failpoint::MidTuple,
            CellOutcome::Killed {
                persist: 3,
                judgement: Judgement {
                    verdict: FaultVerdict::UndetectedCorruption,
                    ..healthy
                },
            },
        )];
        assert!(!gate(&[UpdateScheme::Unordered], &silent));
        // Timeouts fail regardless of scheme.
        let stuck = vec![cell(
            UpdateScheme::Unordered,
            Failpoint::MidTuple,
            CellOutcome::TimedOut,
        )];
        assert!(!gate(&[UpdateScheme::Unordered], &stuck));
    }

    /// The relaxed-tree class: `triad_nvm` must be healthy wherever
    /// its strict slice holds, demonstrably (but detectably) lossy
    /// inside the `between-levels` flush window.
    #[test]
    fn gate_holds_triad_to_the_relaxed_window_contract() {
        let healthy = Judgement {
            verdict: FaultVerdict::Clean,
            counters_match: true,
            complete: 10,
            partial: 0,
        };
        let detected = Judgement {
            verdict: FaultVerdict::DetectedLoss,
            counters_match: false,
            complete: 9,
            partial: 1,
        };
        let cell = |point, judgement| CellReport {
            scheme: UpdateScheme::TriadNvm,
            point,
            hit: 0,
            outcome: CellOutcome::Killed {
                persist: 10,
                judgement,
            },
        };
        // Healthy at strict points, detected loss in the window: pass.
        let good = vec![
            cell(Failpoint::MidTuple, healthy),
            cell(Failpoint::PostRootSeal, healthy),
            cell(Failpoint::BetweenLevels, detected),
        ];
        assert!(gate(&[UpdateScheme::TriadNvm], &good));
        // The window may also be caught at a strict hit (healthy), but
        // an all-healthy window means the relaxation never showed: fail.
        let too_clean = vec![
            cell(Failpoint::MidTuple, healthy),
            cell(Failpoint::BetweenLevels, healthy),
        ];
        assert!(!gate(&[UpdateScheme::TriadNvm], &too_clean));
        // Loss outside the window breaks the strict slice: fail.
        let strict_loss = vec![
            cell(Failpoint::MidTuple, detected),
            cell(Failpoint::BetweenLevels, detected),
        ];
        assert!(!gate(&[UpdateScheme::TriadNvm], &strict_loss));
        // Silent garbage fails even inside the window.
        let silent = vec![cell(
            Failpoint::BetweenLevels,
            Judgement {
                verdict: FaultVerdict::UndetectedCorruption,
                ..detected
            },
        )];
        assert!(!gate(&[UpdateScheme::TriadNvm], &silent));
        // A window-less sweep (mid-tuple only) passes on health alone.
        let no_window = vec![cell(Failpoint::MidTuple, healthy)];
        assert!(gate(&[UpdateScheme::TriadNvm], &no_window));
    }

    /// Double-kill: `triad_nvm`'s mid-tuple first kill tears the
    /// strict slice atomically and must land Clean like the correct
    /// class; only a between-levels first kill may detect loss.
    #[test]
    fn double_kill_gate_triad_expects_clean_outside_the_window() {
        let done = |verdict, counters_match| DoubleKillOutcome::Done {
            first_persist: 5,
            second_fired: true,
            monotone: true,
            final_verdict: verdict,
            counters_match,
            complete: 5,
            quarantined: 0,
        };
        let cell = |run_point, outcome| DoubleKillCell {
            scheme: UpdateScheme::TriadNvm,
            run_point,
            run_hit: 40,
            recovery_point: Failpoint::RecoveryPreRepair,
            recovery_hit: 0,
            outcome,
        };
        let all_points = |outcome: DoubleKillOutcome, run_point| {
            Failpoint::RECOVERY
                .iter()
                .map(|&rp| DoubleKillCell {
                    recovery_point: rp,
                    ..cell(run_point, outcome.clone())
                })
                .collect::<Vec<_>>()
        };
        let schemes = [UpdateScheme::TriadNvm];
        // Clean at mid-tuple: pass.
        let clean = all_points(done(FaultVerdict::Clean, true), Failpoint::MidTuple);
        assert!(double_kill_gate(&schemes, &clean));
        // DetectedLoss at mid-tuple: the strict slice tore — fail.
        let torn = all_points(done(FaultVerdict::DetectedLoss, false), Failpoint::MidTuple);
        assert!(!double_kill_gate(&schemes, &torn));
        // DetectedLoss at between-levels: the relaxed window — pass.
        let window = all_points(
            done(FaultVerdict::DetectedLoss, false),
            Failpoint::BetweenLevels,
        );
        assert!(double_kill_gate(&schemes, &window));
        // Garbage never passes.
        let garbage = all_points(
            done(FaultVerdict::UndetectedCorruption, false),
            Failpoint::BetweenLevels,
        );
        assert!(!double_kill_gate(&schemes, &garbage));
    }
}
