//! Property-based tests for the cache models.

use plp_cache::{Cache, CacheConfig, Hierarchy, Replacement, WriteMode};
use plp_events::addr::BlockAddr;
use proptest::prelude::*;

proptest! {
    #[test]
    fn capacity_invariant(
        ops in prop::collection::vec((0u64..256, any::<bool>()), 1..400),
        ways in 1usize..8,
    ) {
        let sets = 4usize;
        let mut c = Cache::new(CacheConfig::new(64 * sets * ways, ways));
        for (addr, write) in ops {
            let a = BlockAddr::new(addr);
            if !c.lookup(a, write).is_hit() {
                c.fill(a, write);
            }
        }
        prop_assert!(c.resident() <= sets * ways);
    }

    #[test]
    fn hit_after_fill_until_conflict(addr in 0u64..1024) {
        let mut c = Cache::new(CacheConfig::new(64 * 16 * 4, 4));
        let a = BlockAddr::new(addr);
        c.fill(a, false);
        prop_assert!(c.lookup(a, false).is_hit());
    }

    #[test]
    fn dirty_blocks_are_conserved(
        stores in prop::collection::vec(0u64..64, 1..100),
    ) {
        // Every stored block is either still dirty in the hierarchy or
        // was reported as a memory write-back: dirtiness never vanishes.
        let mut h = Hierarchy::new(
            CacheConfig::new(64 * 2, 2),
            CacheConfig::new(64 * 4, 2),
            CacheConfig::new(64 * 8, 2),
        );
        let mut written_back = std::collections::HashSet::new();
        let mut stored = std::collections::HashSet::new();
        for s in &stores {
            let a = BlockAddr::new(*s);
            stored.insert(a);
            for wb in h.store(a, WriteMode::WriteBack).memory_writebacks {
                written_back.insert(wb);
            }
        }
        for a in stored {
            prop_assert!(
                h.is_dirty(a) || written_back.contains(&a),
                "dirty block {a} vanished"
            );
        }
    }

    #[test]
    fn drain_dirty_equals_outstanding_stores(
        stores in prop::collection::vec(0u64..32, 1..60),
    ) {
        let mut h = Hierarchy::new(
            CacheConfig::new(64 * 4, 4),
            CacheConfig::new(64 * 8, 4),
            CacheConfig::new(64 * 64, 4),
        );
        let mut dirty_expect = std::collections::BTreeSet::new();
        for s in &stores {
            let a = BlockAddr::new(*s);
            let out = h.store(a, WriteMode::WriteBack);
            for wb in out.memory_writebacks {
                dirty_expect.remove(&wb);
            }
            dirty_expect.insert(a);
        }
        let drained: Vec<_> = h.drain_dirty();
        let expect: Vec<_> = dirty_expect.into_iter().collect();
        prop_assert_eq!(drained, expect);
    }

    #[test]
    fn lru_and_fifo_both_bounded(
        ops in prop::collection::vec(0u64..128, 1..200),
        fifo in any::<bool>(),
    ) {
        let repl = if fifo { Replacement::Fifo } else { Replacement::Lru };
        let mut c = Cache::new(CacheConfig::with_replacement(64 * 8, 2, repl));
        for op in ops {
            let a = BlockAddr::new(op);
            if !c.lookup(a, false).is_hit() {
                c.fill(a, false);
            }
        }
        prop_assert!(c.resident() <= 8);
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.hits + s.misses);
        prop_assert!(s.hit_ratio() <= 1.0);
    }
}
