//! The three-level data-cache hierarchy.

use plp_events::addr::BlockAddr;
use serde::{Deserialize, Serialize};

use crate::{Cache, CacheConfig};

/// Where a memory access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HitLevel {
    /// First-level cache.
    L1,
    /// Second-level cache.
    L2,
    /// Last-level cache.
    L3,
    /// Off-chip memory.
    Memory,
}

/// Outcome of a hierarchy access.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierOutcome {
    /// The level that satisfied the access.
    pub level: HitLevel,
    /// Dirty blocks pushed out of the last-level cache by this access;
    /// these must be written back to memory (and, in a secure system,
    /// routed through the security engine).
    pub memory_writebacks: Vec<BlockAddr>,
}

/// Write handling for stores.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WriteMode {
    /// Write-back with write-allocate (the `secure_WB` baseline and the
    /// intra-epoch behaviour of epoch persistency).
    #[default]
    WriteBack,
    /// Write-through: the line is updated but left *clean*; the caller
    /// persists the store itself (strict persistency, §VI "we
    /// implemented write through caches to persist each store in order
    /// to the MC").
    WriteThrough,
}

/// A three-level inclusive-fill cache hierarchy (L1/L2/L3).
///
/// Evictions cascade: an L1 victim is installed in L2, an L2 victim in
/// L3, and dirty L3 victims surface as memory write-backs in the
/// returned [`HierOutcome`].
///
/// # Example
///
/// ```
/// use plp_cache::{CacheConfig, HitLevel, Hierarchy, WriteMode};
/// use plp_events::addr::BlockAddr;
///
/// let mut h = Hierarchy::new(
///     CacheConfig::new(64 << 10, 8),
///     CacheConfig::new(512 << 10, 16),
///     CacheConfig::new(4 << 20, 32),
/// );
/// let a = BlockAddr::new(100);
/// assert_eq!(h.load(a).level, HitLevel::Memory);
/// assert_eq!(h.load(a).level, HitLevel::L1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    l3: Cache,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new(l1: CacheConfig, l2: CacheConfig, l3: CacheConfig) -> Self {
        Hierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            l3: Cache::new(l3),
        }
    }

    /// The paper's Table III hierarchy: 64 KB/8-way L1, 512 KB/16-way
    /// L2, `llc_bytes` 32-way L3 (default 4 MB).
    pub fn paper_default(llc_bytes: usize) -> Self {
        Hierarchy::new(
            CacheConfig::new(64 << 10, 8),
            CacheConfig::new(512 << 10, 16),
            CacheConfig::new(llc_bytes, 32),
        )
    }

    /// Installs a block into a level, cascading the victim downward.
    /// Returns any dirty block evicted from L3 to memory.
    fn install(&mut self, addr: BlockAddr, dirty: bool, writebacks: &mut Vec<BlockAddr>) {
        if let Some(v1) = self.l1.fill(addr, dirty) {
            if let Some(v2) = self.l2.fill(v1.addr, v1.dirty) {
                if let Some(v3) = self.l3.fill(v2.addr, v2.dirty) {
                    if v3.dirty {
                        writebacks.push(v3.addr);
                    }
                }
            }
        }
    }

    /// Performs a load.
    pub fn load(&mut self, addr: BlockAddr) -> HierOutcome {
        self.access(addr, false, WriteMode::WriteBack)
    }

    /// Performs a store under the given write mode.
    pub fn store(&mut self, addr: BlockAddr, mode: WriteMode) -> HierOutcome {
        let write = mode == WriteMode::WriteBack;
        self.access(addr, write, mode)
    }

    fn access(&mut self, addr: BlockAddr, write: bool, mode: WriteMode) -> HierOutcome {
        let mut writebacks = Vec::new();
        let level;
        if self.l1.lookup(addr, write).is_hit() {
            level = HitLevel::L1;
        } else if self.l2.lookup(addr, write).is_hit() {
            // Promote to L1.
            let dirty = write || self.l2.is_dirty(addr);
            self.l2.invalidate(addr);
            self.install(addr, dirty, &mut writebacks);
            level = HitLevel::L2;
        } else if self.l3.lookup(addr, write).is_hit() {
            let dirty = write || self.l3.is_dirty(addr);
            self.l3.invalidate(addr);
            self.install(addr, dirty, &mut writebacks);
            level = HitLevel::L3;
        } else {
            // Fetch from memory and install.
            self.install(addr, write, &mut writebacks);
            level = HitLevel::Memory;
        }
        // Write-through stores leave lines clean: the caller persists.
        if mode == WriteMode::WriteThrough {
            self.l1.mark_clean(addr);
            self.l2.mark_clean(addr);
            self.l3.mark_clean(addr);
        }
        HierOutcome {
            level,
            memory_writebacks: writebacks,
        }
    }

    /// Marks `addr` clean at every level (used when an epoch flush or an
    /// eager write-back persists the block while it stays resident).
    pub fn mark_clean(&mut self, addr: BlockAddr) {
        self.l1.mark_clean(addr);
        self.l2.mark_clean(addr);
        self.l3.mark_clean(addr);
    }

    /// Drains every dirty block from all levels (a full flush),
    /// returning the deduplicated set of block addresses.
    pub fn drain_dirty(&mut self) -> Vec<BlockAddr> {
        let mut blocks = self.l1.drain_dirty();
        blocks.extend(self.l2.drain_dirty());
        blocks.extend(self.l3.drain_dirty());
        blocks.sort();
        blocks.dedup();
        blocks
    }

    /// Whether `addr` is dirty at any level.
    pub fn is_dirty(&self, addr: BlockAddr) -> bool {
        self.l1.is_dirty(addr) || self.l2.is_dirty(addr) || self.l3.is_dirty(addr)
    }

    /// Per-level caches for statistics inspection.
    pub fn levels(&self) -> [&Cache; 3] {
        [&self.l1, &self.l2, &self.l3]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        // L1: 1 set x 2 ways; L2: 2 sets x 2 ways; L3: 4 sets x 2 ways.
        Hierarchy::new(
            CacheConfig::new(64 * 2, 2),
            CacheConfig::new(64 * 4, 2),
            CacheConfig::new(64 * 8, 2),
        )
    }

    #[test]
    fn load_miss_then_hit() {
        let mut h = tiny();
        let a = BlockAddr::new(1);
        assert_eq!(h.load(a).level, HitLevel::Memory);
        assert_eq!(h.load(a).level, HitLevel::L1);
    }

    #[test]
    fn eviction_cascades_to_l2() {
        let mut h = tiny();
        // L1 has a single 2-way set; the third block evicts the first
        // into L2, where it then hits.
        for i in 0..3 {
            h.load(BlockAddr::new(i));
        }
        assert_eq!(h.load(BlockAddr::new(0)).level, HitLevel::L2);
    }

    #[test]
    fn dirty_block_survives_demotion() {
        let mut h = tiny();
        let a = BlockAddr::new(0);
        h.store(a, WriteMode::WriteBack);
        // Push `a` out of L1 (and further) with loads.
        for i in 1..10 {
            h.load(BlockAddr::new(i));
        }
        assert!(h.is_dirty(a), "dirtiness lost during demotion");
    }

    #[test]
    fn llc_dirty_eviction_reaches_memory() {
        let mut h = tiny();
        let a = BlockAddr::new(0);
        h.store(a, WriteMode::WriteBack);
        // Flood with enough conflicting blocks to push `a` out of L3.
        let mut writebacks = Vec::new();
        for i in 1..40 {
            writebacks.extend(h.load(BlockAddr::new(i * 8)).memory_writebacks);
        }
        // `a` maps to set 0 everywhere (index 0); conflict misses on
        // multiples of 8 hit the same sets.
        assert!(writebacks.contains(&a), "dirty block never written back");
        assert!(!h.is_dirty(a));
    }

    #[test]
    fn write_through_leaves_clean() {
        let mut h = tiny();
        let a = BlockAddr::new(5);
        h.store(a, WriteMode::WriteThrough);
        assert!(!h.is_dirty(a));
        // The line is still resident for subsequent loads.
        assert_eq!(h.load(a).level, HitLevel::L1);
    }

    #[test]
    fn drain_dirty_dedupes_across_levels() {
        let mut h = tiny();
        h.store(BlockAddr::new(1), WriteMode::WriteBack);
        h.store(BlockAddr::new(2), WriteMode::WriteBack);
        let drained = h.drain_dirty();
        assert_eq!(drained, vec![BlockAddr::new(1), BlockAddr::new(2)]);
        assert!(h.drain_dirty().is_empty());
    }

    #[test]
    fn mark_clean_prevents_future_writeback() {
        let mut h = tiny();
        let a = BlockAddr::new(0);
        h.store(a, WriteMode::WriteBack);
        h.mark_clean(a);
        let mut writebacks = Vec::new();
        for i in 1..40 {
            writebacks.extend(h.load(BlockAddr::new(i * 8)).memory_writebacks);
        }
        assert!(!writebacks.contains(&a));
    }

    #[test]
    fn paper_default_shapes() {
        let h = Hierarchy::paper_default(4 << 20);
        let [l1, l2, l3] = h.levels();
        assert_eq!(l1.config().size_bytes(), 64 << 10);
        assert_eq!(l2.config().size_bytes(), 512 << 10);
        assert_eq!(l3.config().size_bytes(), 4 << 20);
    }
}
