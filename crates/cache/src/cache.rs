//! The set-associative cache model.

use plp_events::addr::BlockAddr;
use serde::{Deserialize, Serialize};

use crate::{CacheConfig, Replacement};

/// A line evicted from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evicted {
    /// Address of the evicted block.
    pub addr: BlockAddr,
    /// Whether the line was dirty (needs a write-back).
    pub dirty: bool,
}

/// Hit/miss outcome of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Lookup {
    /// The block was present.
    Hit,
    /// The block was absent.
    Miss,
}

impl Lookup {
    /// Whether this is a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, Lookup::Hit)
    }
}

/// Running hit/miss/eviction statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Evicted lines that were dirty.
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 if no lookups.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Line {
    addr: BlockAddr,
    dirty: bool,
    /// LRU timestamp (bigger = more recent) or FIFO insertion stamp.
    stamp: u64,
}

/// A set-associative cache tracking presence and dirtiness of 64-byte
/// blocks.
///
/// Contents are modelled elsewhere (the functional stores live in
/// `plp-core`); the cache answers the *timing-relevant* questions: was
/// this block resident, and which dirty victim does an insertion push
/// out.
///
/// # Example
///
/// ```
/// use plp_cache::{Cache, CacheConfig, Lookup};
/// use plp_events::addr::BlockAddr;
///
/// let mut c = Cache::new(CacheConfig::new(64 * 2 * 2, 2)); // 2 sets, 2 ways
/// let a = BlockAddr::new(0);
/// assert_eq!(c.lookup(a, false), Lookup::Miss);
/// c.fill(a, false);
/// assert_eq!(c.lookup(a, false), Lookup::Hit);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        Cache {
            config,
            sets: vec![Vec::with_capacity(config.ways()); config.sets()],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_index(&self, addr: BlockAddr) -> usize {
        (addr.index() as usize) & (self.config.sets() - 1)
    }

    /// Looks up `addr`, updating recency and (for writes) dirtiness.
    /// Records a hit or miss in the statistics. A miss does *not*
    /// allocate; call [`Cache::fill`] to bring the block in.
    pub fn lookup(&mut self, addr: BlockAddr, write: bool) -> Lookup {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(addr);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.addr == addr) {
            if self.config.replacement() == Replacement::Lru {
                line.stamp = tick;
            }
            if write {
                line.dirty = true;
            }
            self.stats.hits += 1;
            Lookup::Hit
        } else {
            self.stats.misses += 1;
            Lookup::Miss
        }
    }

    /// Whether `addr` is resident, with no side effects.
    pub fn probe(&self, addr: BlockAddr) -> bool {
        let set = self.set_index(addr);
        self.sets[set].iter().any(|l| l.addr == addr)
    }

    /// Inserts `addr` (e.g. after a miss fill), evicting a victim if
    /// the set is full. Returns the victim, if any.
    ///
    /// If the block is already resident this just updates dirtiness and
    /// recency and returns `None`.
    pub fn fill(&mut self, addr: BlockAddr, dirty: bool) -> Option<Evicted> {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_index(addr);
        let ways = self.config.ways();
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.addr == addr) {
            line.dirty |= dirty;
            line.stamp = tick;
            return None;
        }
        // Evict the line with the smallest stamp (LRU or FIFO-oldest).
        // `min_by_key` is only `None` for an empty set, which cannot be
        // at capacity (ways >= 1), so the victim lookup stays total.
        let victim_idx = if set.len() >= ways {
            set.iter()
                .enumerate()
                .min_by_key(|(_, l)| l.stamp)
                .map(|(i, _)| i)
        } else {
            None
        };
        let victim = if let Some(i) = victim_idx {
            let v = set.swap_remove(i);
            self.stats.evictions += 1;
            if v.dirty {
                self.stats.dirty_evictions += 1;
            }
            Some(Evicted {
                addr: v.addr,
                dirty: v.dirty,
            })
        } else {
            None
        };
        set.push(Line {
            addr,
            dirty,
            stamp: tick,
        });
        victim
    }

    /// Removes `addr` from the cache, returning its line if present.
    pub fn invalidate(&mut self, addr: BlockAddr) -> Option<Evicted> {
        let set_idx = self.set_index(addr);
        let set = &mut self.sets[set_idx];
        let i = set.iter().position(|l| l.addr == addr)?;
        let l = set.swap_remove(i);
        Some(Evicted {
            addr: l.addr,
            dirty: l.dirty,
        })
    }

    /// Marks `addr` clean (it was written back), if present.
    pub fn mark_clean(&mut self, addr: BlockAddr) {
        let set_idx = self.set_index(addr);
        if let Some(line) = self.sets[set_idx].iter_mut().find(|l| l.addr == addr) {
            line.dirty = false;
        }
    }

    /// Whether `addr` is resident and dirty.
    pub fn is_dirty(&self, addr: BlockAddr) -> bool {
        let set = self.set_index(addr);
        self.sets[set]
            .iter()
            .any(|l| l.addr == addr && l.dirty)
    }

    /// Drains every dirty line (marking them clean), returning their
    /// addresses — the model of a full cache flush.
    pub fn drain_dirty(&mut self) -> Vec<BlockAddr> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for line in set.iter_mut() {
                if line.dirty {
                    line.dirty = false;
                    out.push(line.addr);
                }
            }
        }
        out.sort();
        out
    }

    /// Number of resident lines.
    pub fn resident(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(CacheConfig::new(64 * 4, 2))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let a = BlockAddr::new(4);
        assert!(!c.lookup(a, false).is_hit());
        assert_eq!(c.fill(a, false), None);
        assert!(c.lookup(a, false).is_hit());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Addresses 0, 2, 4 all map to set 0 (even indices).
        let (a0, a2, a4) = (BlockAddr::new(0), BlockAddr::new(2), BlockAddr::new(4));
        c.fill(a0, false);
        c.fill(a2, false);
        // Touch a0 so a2 becomes LRU.
        c.lookup(a0, false);
        let evicted = c.fill(a4, false).expect("set was full");
        assert_eq!(evicted.addr, a2);
        assert!(!evicted.dirty);
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = Cache::new(CacheConfig::with_replacement(64 * 4, 2, Replacement::Fifo));
        let (a0, a2, a4) = (BlockAddr::new(0), BlockAddr::new(2), BlockAddr::new(4));
        c.fill(a0, false);
        c.fill(a2, false);
        c.lookup(a0, false); // does not refresh under FIFO
        let evicted = c.fill(a4, false).expect("set was full");
        assert_eq!(evicted.addr, a0);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small();
        let (a0, a2, a4) = (BlockAddr::new(0), BlockAddr::new(2), BlockAddr::new(4));
        c.fill(a0, true);
        c.fill(a2, false);
        c.lookup(a2, false);
        let evicted = c.fill(a4, false).unwrap();
        assert_eq!(evicted.addr, a0);
        assert!(evicted.dirty);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn write_sets_dirty_and_clean_clears() {
        let mut c = small();
        let a = BlockAddr::new(8);
        c.fill(a, false);
        assert!(!c.is_dirty(a));
        c.lookup(a, true);
        assert!(c.is_dirty(a));
        c.mark_clean(a);
        assert!(!c.is_dirty(a));
    }

    #[test]
    fn refill_merges_dirty() {
        let mut c = small();
        let a = BlockAddr::new(8);
        c.fill(a, true);
        assert_eq!(c.fill(a, false), None);
        assert!(c.is_dirty(a), "refill must not lose dirtiness");
    }

    #[test]
    fn drain_dirty_flushes_everything() {
        let mut c = small();
        c.fill(BlockAddr::new(0), true);
        c.fill(BlockAddr::new(1), true);
        c.fill(BlockAddr::new(2), false);
        let drained = c.drain_dirty();
        assert_eq!(drained, vec![BlockAddr::new(0), BlockAddr::new(1)]);
        assert!(c.drain_dirty().is_empty());
        assert_eq!(c.resident(), 3);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        let a = BlockAddr::new(3);
        c.fill(a, true);
        let ev = c.invalidate(a).unwrap();
        assert!(ev.dirty);
        assert!(!c.probe(a));
        assert_eq!(c.invalidate(a), None);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = small();
        for i in 0..100 {
            c.lookup(BlockAddr::new(i), true);
            c.fill(BlockAddr::new(i), true);
        }
        assert!(c.resident() <= c.config().lines());
        assert!(c.stats().hit_ratio() < 1.0);
    }
}
