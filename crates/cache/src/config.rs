//! Cache configuration.

use plp_events::addr::CACHE_BLOCK_SIZE;
use serde::{Deserialize, Serialize};

/// Replacement policy for a set-associative cache.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Replacement {
    /// Least-recently-used (the paper's configuration).
    #[default]
    Lru,
    /// First-in first-out.
    Fifo,
}

/// Geometry and policy of one cache.
///
/// # Example
///
/// ```
/// use plp_cache::CacheConfig;
///
/// // The paper's L3: 4 MB, 32-way, 64 B blocks -> 2048 sets.
/// let c = CacheConfig::new(4 << 20, 32);
/// assert_eq!(c.sets(), 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    size_bytes: usize,
    ways: usize,
    replacement: Replacement,
}

impl CacheConfig {
    /// Creates a configuration with LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics unless the size is a positive multiple of
    /// `ways * CACHE_BLOCK_SIZE` and the resulting set count is a power
    /// of two (so set indexing is a mask).
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        Self::with_replacement(size_bytes, ways, Replacement::Lru)
    }

    /// Creates a configuration with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Same conditions as [`CacheConfig::new`].
    pub fn with_replacement(size_bytes: usize, ways: usize, replacement: Replacement) -> Self {
        assert!(ways > 0, "cache must have at least one way");
        let way_bytes = ways * CACHE_BLOCK_SIZE;
        assert!(
            size_bytes > 0 && size_bytes.is_multiple_of(way_bytes),
            "cache size must be a positive multiple of ways * block size"
        );
        let sets = size_bytes / way_bytes;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig {
            size_bytes,
            ways,
            replacement,
        }
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * CACHE_BLOCK_SIZE)
    }

    /// Total line capacity.
    pub fn lines(&self) -> usize {
        self.size_bytes / CACHE_BLOCK_SIZE
    }

    /// The replacement policy.
    pub fn replacement(&self) -> Replacement {
        self.replacement
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs() {
        // Table III: L1 64KB 8-way; L2 512KB 16-way; L3 4MB 32-way;
        // metadata caches 128KB 8-way.
        assert_eq!(CacheConfig::new(64 << 10, 8).sets(), 128);
        assert_eq!(CacheConfig::new(512 << 10, 16).sets(), 512);
        assert_eq!(CacheConfig::new(4 << 20, 32).sets(), 2048);
        assert_eq!(CacheConfig::new(128 << 10, 8).sets(), 256);
    }

    #[test]
    fn accessors() {
        let c = CacheConfig::with_replacement(64 << 10, 8, Replacement::Fifo);
        assert_eq!(c.size_bytes(), 64 << 10);
        assert_eq!(c.ways(), 8);
        assert_eq!(c.lines(), 1024);
        assert_eq!(c.replacement(), Replacement::Fifo);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        let _ = CacheConfig::new(3 * 64 * 8, 8);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_misaligned_size() {
        let _ = CacheConfig::new(1000, 8);
    }
}
