//! Cache models for the PLP simulator.
//!
//! Provides the set-associative [`Cache`] used both for the data
//! hierarchy and for the three discrete security-metadata caches the
//! paper assumes (§V: a counter cache, a MAC cache and a BMT cache),
//! plus the three-level [`Hierarchy`] with cascading evictions and
//! write-back / write-through store handling.
//!
//! Caches here track *presence and dirtiness* — the timing-relevant
//! state. Functional contents (ciphertexts, counters, tree nodes) live
//! in the backing stores of `plp-core`, which keeps each model simple
//! and independently testable.
//!
//! # Example
//!
//! ```
//! use plp_cache::{Cache, CacheConfig};
//! use plp_events::addr::BlockAddr;
//!
//! // The paper's default BMT cache: 128 KB, 8-way.
//! let mut mtcache = Cache::new(CacheConfig::new(128 << 10, 8));
//! let node_block = BlockAddr::new(42);
//! assert!(!mtcache.lookup(node_block, false).is_hit());
//! mtcache.fill(node_block, false);
//! assert!(mtcache.lookup(node_block, false).is_hit());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[allow(clippy::module_inception)]
mod cache;
mod config;
mod hierarchy;

pub use cache::{Cache, CacheStats, Evicted, Lookup};
pub use config::{CacheConfig, Replacement};
pub use hierarchy::{HierOutcome, Hierarchy, HitLevel, WriteMode};
