//! Split-counter organization (Yan et al., as adopted by the paper).
//!
//! One 64-byte counter block covers one 4 KiB encryption page: a 64-bit
//! per-page *major* counter co-located with 64 per-block 7-bit *minor*
//! counters (Fig. 1 of the paper). A block's encryption counter γ is the
//! concatenation `(major, minor)`. When a minor counter saturates, the
//! major counter increments, every minor resets, and the whole page must
//! be re-encrypted — the classic split-counter overflow cost.

use plp_events::addr::{BlockAddr, BLOCKS_PER_PAGE, CACHE_BLOCK_SIZE};
use serde::{Deserialize, Serialize};

/// Maximum value of a 7-bit minor counter.
pub const MINOR_MAX: u8 = 127;

/// The encryption counter γ for one block: the concatenation of its
/// page's major counter and its own minor counter.
///
/// # Example
///
/// ```
/// use plp_crypto::CounterValue;
///
/// let c = CounterValue::new(3, 17);
/// assert_eq!(c.major(), 3);
/// assert_eq!(c.minor(), 17);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct CounterValue {
    major: u64,
    minor: u8,
}

impl CounterValue {
    /// Creates a counter value.
    ///
    /// # Panics
    ///
    /// Panics if `minor` exceeds [`MINOR_MAX`].
    pub fn new(major: u64, minor: u8) -> Self {
        assert!(minor <= MINOR_MAX, "minor counter is 7 bits");
        CounterValue { major, minor }
    }

    /// The page-level major counter.
    pub fn major(self) -> u64 {
        self.major
    }

    /// The block-level minor counter.
    pub fn minor(self) -> u8 {
        self.minor
    }

    /// Packs the counter into a single word for hashing (major in the
    /// high 57 bits, minor in the low 7).
    pub fn as_word(self) -> u64 {
        (self.major << 7) | self.minor as u64
    }
}

/// Result of bumping a block's counter before a write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CounterBump {
    /// The minor counter incremented; only this block re-encrypts.
    Minor(CounterValue),
    /// The minor counter overflowed: the major counter incremented, all
    /// minors reset, and the whole page must re-encrypt with the new
    /// major counter.
    PageOverflow(CounterValue),
}

impl CounterBump {
    /// The new counter value for the written block, regardless of
    /// overflow.
    pub fn value(self) -> CounterValue {
        match self {
            CounterBump::Minor(v) | CounterBump::PageOverflow(v) => v,
        }
    }

    /// Whether the bump overflowed the minor counter.
    pub fn overflowed(self) -> bool {
        matches!(self, CounterBump::PageOverflow(_))
    }
}

/// A 64-byte split-counter block covering one encryption page.
///
/// Layout when serialized: 8-byte little-endian major counter followed
/// by 64 minor counters, one byte each with the top bit clear. (The real
/// hardware packs 7-bit minors; a byte-per-minor layout with an asserted
/// invariant keeps the model simple while preserving the 64-byte
/// *accounting* size used for traffic and cache modelling.)
///
/// # Example
///
/// ```
/// use plp_crypto::{CounterBlock, MINOR_MAX};
///
/// let mut cb = CounterBlock::new();
/// let bump = cb.bump(5);
/// assert_eq!(bump.value().minor(), 1);
/// assert!(!bump.overflowed());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CounterBlock {
    major: u64,
    #[serde(with = "crate::serde64")]
    minors: [u8; BLOCKS_PER_PAGE],
}

impl Default for CounterBlock {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterBlock {
    /// A fresh counter block: major 0, all minors 0.
    pub fn new() -> Self {
        CounterBlock {
            major: 0,
            minors: [0; BLOCKS_PER_PAGE],
        }
    }

    /// The page's major counter.
    pub fn major(&self) -> u64 {
        self.major
    }

    /// The counter value of the block at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 64`.
    pub fn value(&self, slot: usize) -> CounterValue {
        CounterValue::new(self.major, self.minors[slot])
    }

    /// The counter value for a block address (using its slot within the
    /// page; callers are responsible for having looked up the right
    /// page's counter block).
    pub fn value_for(&self, block: BlockAddr) -> CounterValue {
        self.value(block.slot_in_page())
    }

    /// Increments the minor counter at `slot` for a write-back,
    /// handling page overflow.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 64`.
    pub fn bump(&mut self, slot: usize) -> CounterBump {
        if self.minors[slot] == MINOR_MAX {
            self.major += 1;
            self.minors = [0; BLOCKS_PER_PAGE];
            self.minors[slot] = 1;
            CounterBump::PageOverflow(CounterValue::new(self.major, 1))
        } else {
            self.minors[slot] += 1;
            CounterBump::Minor(CounterValue::new(self.major, self.minors[slot]))
        }
    }

    /// Serializes to the 64-byte wire format plus the major overflow
    /// word (72 bytes total: 8-byte major + 64 minors).
    pub fn to_bytes(&self) -> [u8; 8 + BLOCKS_PER_PAGE] {
        let mut out = [0u8; 8 + BLOCKS_PER_PAGE];
        out[..8].copy_from_slice(&self.major.to_le_bytes());
        out[8..].copy_from_slice(&self.minors);
        out
    }

    /// Deserializes from the wire format produced by
    /// [`CounterBlock::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns an error if any minor counter has its top bit set (not a
    /// valid 7-bit value).
    pub fn from_bytes(bytes: &[u8; 8 + BLOCKS_PER_PAGE]) -> Result<Self, InvalidCounterBlock> {
        // lint: allow(no-panic-lib) an 8-byte slice of a fixed-size array always converts
        let major = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let mut minors = [0u8; BLOCKS_PER_PAGE];
        minors.copy_from_slice(&bytes[8..]);
        if minors.iter().any(|&m| m > MINOR_MAX) {
            return Err(InvalidCounterBlock);
        }
        Ok(CounterBlock { major, minors })
    }

    /// Hashable content words: the major counter followed by the minors
    /// packed 8 per word. This is the BMT leaf input for the page.
    pub fn content_words(&self) -> [u64; 1 + BLOCKS_PER_PAGE / 8] {
        let mut words = [0u64; 1 + BLOCKS_PER_PAGE / 8];
        words[0] = self.major;
        for (i, chunk) in self.minors.chunks_exact(8).enumerate() {
            // lint: allow(no-panic-lib) chunks_exact(8) yields 8-byte chunks by definition
            words[1 + i] = u64::from_le_bytes(chunk.try_into().expect("8 minors"));
        }
        words
    }
}

/// Error returned when decoding a counter block with an out-of-range
/// minor counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidCounterBlock;

impl std::fmt::Display for InvalidCounterBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "minor counter exceeds 7 bits")
    }
}

impl std::error::Error for InvalidCounterBlock {}

/// Compile-time check that a counter block's accounting footprint is
/// one cache block (the split-counter design goal).
pub const COUNTER_BLOCK_ACCOUNTING_SIZE: usize = CACHE_BLOCK_SIZE;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_zero() {
        let cb = CounterBlock::new();
        assert_eq!(cb.major(), 0);
        for slot in 0..BLOCKS_PER_PAGE {
            assert_eq!(cb.value(slot), CounterValue::new(0, 0));
        }
    }

    #[test]
    fn bump_increments_only_target_slot() {
        let mut cb = CounterBlock::new();
        let b = cb.bump(10);
        assert_eq!(b, CounterBump::Minor(CounterValue::new(0, 1)));
        assert_eq!(cb.value(10).minor(), 1);
        assert_eq!(cb.value(11).minor(), 0);
        assert!(!b.overflowed());
    }

    #[test]
    fn overflow_resets_page() {
        let mut cb = CounterBlock::new();
        for _ in 0..127 {
            assert!(!cb.bump(3).overflowed());
        }
        cb.bump(5); // some other slot has history too
        let b = cb.bump(3);
        assert!(b.overflowed());
        assert_eq!(b.value(), CounterValue::new(1, 1));
        assert_eq!(cb.major(), 1);
        // Every other slot was reset by the overflow.
        assert_eq!(cb.value(5).minor(), 0);
    }

    #[test]
    fn counter_value_word_packing() {
        let c = CounterValue::new(1, 1);
        assert_eq!(c.as_word(), 129);
        // Distinct (major, minor) pairs yield distinct words.
        assert_ne!(
            CounterValue::new(1, 0).as_word(),
            CounterValue::new(0, MINOR_MAX).as_word()
        );
    }

    #[test]
    #[should_panic(expected = "7 bits")]
    fn counter_value_range_checked() {
        let _ = CounterValue::new(0, 128);
    }

    #[test]
    fn wire_round_trip() {
        let mut cb = CounterBlock::new();
        for slot in [0usize, 7, 63] {
            for _ in 0..slot + 1 {
                cb.bump(slot);
            }
        }
        let bytes = cb.to_bytes();
        assert_eq!(CounterBlock::from_bytes(&bytes).unwrap(), cb);
    }

    #[test]
    fn wire_rejects_bad_minor() {
        let mut bytes = CounterBlock::new().to_bytes();
        bytes[8] = 200;
        assert_eq!(
            CounterBlock::from_bytes(&bytes),
            Err(InvalidCounterBlock)
        );
        assert!(!InvalidCounterBlock.to_string().is_empty());
    }

    #[test]
    fn content_words_reflect_state() {
        let mut cb = CounterBlock::new();
        let before = cb.content_words();
        cb.bump(0);
        let after = cb.content_words();
        assert_ne!(before, after);
        assert_eq!(after[0], 0); // major unchanged
        assert_eq!(after[1] & 0xff, 1); // slot 0 minor is 1
    }

    #[test]
    fn value_for_uses_slot_in_page() {
        let mut cb = CounterBlock::new();
        cb.bump(2);
        let block = plp_events::addr::PageAddr::new(9).block(2);
        assert_eq!(cb.value_for(block).minor(), 1);
    }
}
