//! A from-scratch implementation of the SipHash-2-4 keyed pseudorandom
//! function.
//!
//! SipHash is used throughout the workspace as the single cryptographic
//! primitive: the counter-mode keystream generator, the stateful MAC,
//! and the BMT node hash are all built on it. SipHash-2-4 is a real,
//! published PRF (Aumasson & Bernstein, 2012) with strong avalanche
//! behaviour at 64-bit output width, which is exactly the paper's hash
//! output size ("64B to 8B hash", Fig. 1).
//!
//! The paper treats crypto units as black boxes with a configurable
//! latency; this module provides the *functional* half so that
//! tampering, verification and crash recovery behave like the real
//! system, while the timing half lives in the engine models.

use serde::{Deserialize, Serialize};

/// A 128-bit key for the SipHash PRF.
///
/// # Example
///
/// ```
/// use plp_crypto::SipKey;
///
/// let k = SipKey::new(0x0706050403020100, 0x0f0e0d0c0b0a0908);
/// assert_ne!(k.hash_bytes(b"hello"), k.hash_bytes(b"hellp"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SipKey {
    k0: u64,
    k1: u64,
}

impl SipKey {
    /// Creates a key from two 64-bit halves.
    pub const fn new(k0: u64, k1: u64) -> Self {
        SipKey { k0, k1 }
    }

    /// Derives a distinct subkey for a named domain (e.g. "mac",
    /// "encrypt", "bmt"), so the three uses of the PRF never collide.
    pub fn derive(self, domain: &str) -> SipKey {
        let d = self.hash_bytes(domain.as_bytes());
        SipKey::new(self.k0 ^ d, self.k1 ^ d.rotate_left(32))
    }

    /// Hashes a byte slice to a 64-bit tag with SipHash-2-4.
    pub fn hash_bytes(self, data: &[u8]) -> u64 {
        let mut state = SipState::new(self);
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            // lint: allow(no-panic-lib) chunks_exact(8) yields 8-byte chunks by definition
            let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            state.compress(m);
        }
        // Final block: remaining bytes plus the length in the top byte,
        // as the SipHash specification requires.
        let rem = chunks.remainder();
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        last[7] = data.len() as u8;
        state.compress(u64::from_le_bytes(last));
        state.finalize()
    }

    /// Hashes a slice of 64-bit words (a fast path for fixed-layout
    /// inputs like `(address, counter, index)` tuples).
    pub fn hash_words(self, words: &[u64]) -> u64 {
        let mut state = SipState::new(self);
        for &w in words {
            state.compress(w);
        }
        // Length block, mirroring the byte variant.
        state.compress((words.len() as u64) << 56);
        state.finalize()
    }
}

/// The four-lane SipHash internal state.
#[derive(Debug, Clone, Copy)]
struct SipState {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
}

impl SipState {
    fn new(key: SipKey) -> Self {
        SipState {
            v0: key.k0 ^ 0x736f6d6570736575,
            v1: key.k1 ^ 0x646f72616e646f6d,
            v2: key.k0 ^ 0x6c7967656e657261,
            v3: key.k1 ^ 0x7465646279746573,
        }
    }

    #[inline]
    fn round(&mut self) {
        self.v0 = self.v0.wrapping_add(self.v1);
        self.v1 = self.v1.rotate_left(13);
        self.v1 ^= self.v0;
        self.v0 = self.v0.rotate_left(32);
        self.v2 = self.v2.wrapping_add(self.v3);
        self.v3 = self.v3.rotate_left(16);
        self.v3 ^= self.v2;
        self.v0 = self.v0.wrapping_add(self.v3);
        self.v3 = self.v3.rotate_left(21);
        self.v3 ^= self.v0;
        self.v2 = self.v2.wrapping_add(self.v1);
        self.v1 = self.v1.rotate_left(17);
        self.v1 ^= self.v2;
        self.v2 = self.v2.rotate_left(32);
    }

    #[inline]
    fn compress(&mut self, m: u64) {
        self.v3 ^= m;
        self.round();
        self.round();
        self.v0 ^= m;
    }

    fn finalize(mut self) -> u64 {
        self.v2 ^= 0xff;
        for _ in 0..4 {
            self.round();
        }
        self.v0 ^ self.v1 ^ self.v2 ^ self.v3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference key from the SipHash paper: 000102...0f.
    fn ref_key() -> SipKey {
        SipKey::new(0x0706050403020100, 0x0f0e0d0c0b0a0908)
    }

    #[test]
    fn matches_reference_vector_empty() {
        // SipHash-2-4 official test vector: key 00..0f, empty input.
        assert_eq!(ref_key().hash_bytes(&[]), 0x726fdb47dd0e0e31);
    }

    #[test]
    fn matches_reference_vector_incremental() {
        // Official vectors for inputs 00, 00 01, 00 01 02, ...
        let expected: [u64; 8] = [
            0x74f839c593dc67fd,
            0x0d6c8009d9a94f5a,
            0x85676696d7fb7e2d,
            0xcf2794e0277187b7,
            0x18765564cd99a68d,
            0xcbc9466e58fee3ce,
            0xab0200f58b01d137,
            0x93f5f5799a932462,
        ];
        let data: Vec<u8> = (0u8..8).collect();
        for (len, want) in expected.iter().enumerate() {
            assert_eq!(
                ref_key().hash_bytes(&data[..=len.min(7)][..len + 1]),
                *want,
                "vector at length {}",
                len + 1
            );
        }
    }

    #[test]
    fn longer_reference_vector() {
        // 15-byte input vector from the reference implementation.
        let data: Vec<u8> = (0u8..15).collect();
        assert_eq!(ref_key().hash_bytes(&data), 0xa129ca6149be45e5);
    }

    #[test]
    fn key_sensitivity() {
        let a = SipKey::new(1, 2).hash_bytes(b"block");
        let b = SipKey::new(1, 3).hash_bytes(b"block");
        assert_ne!(a, b);
    }

    #[test]
    fn derive_separates_domains() {
        let k = SipKey::new(42, 43);
        let mac = k.derive("mac");
        let enc = k.derive("encrypt");
        assert_ne!(mac, enc);
        assert_ne!(mac.hash_words(&[7]), enc.hash_words(&[7]));
        // Derivation is deterministic.
        assert_eq!(k.derive("mac"), mac);
    }

    #[test]
    fn words_and_length_matter() {
        let k = ref_key();
        assert_ne!(k.hash_words(&[0]), k.hash_words(&[0, 0]));
        assert_ne!(k.hash_words(&[1, 2]), k.hash_words(&[2, 1]));
    }

    #[test]
    fn avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output
        // bits; require at least 16 of 64 as a loose sanity bound.
        let k = ref_key();
        let base = k.hash_words(&[0xdeadbeef, 77]);
        for bit in 0..64 {
            let flipped = k.hash_words(&[0xdeadbeefu64 ^ (1 << bit), 77]);
            assert!(
                (base ^ flipped).count_ones() >= 16,
                "weak avalanche at bit {bit}"
            );
        }
    }
}
