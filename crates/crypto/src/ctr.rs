//! Counter-mode memory encryption.
//!
//! The engine encrypts a 64-byte cache block by XOR-ing it with a
//! one-time pad derived from the key, the block *address* (spatial
//! uniqueness) and the block's *counter* (temporal uniqueness), exactly
//! the seed structure of §II of the paper. Decryption is the same XOR,
//! so `decrypt(encrypt(p)) == p` whenever the same `(address, counter)`
//! seed is used — and produces garbage otherwise, which is what the
//! crash-recovery tests rely on.

use plp_events::addr::{BlockAddr, CACHE_BLOCK_SIZE};
use serde::{Deserialize, Serialize};

use crate::{CounterValue, SipKey};

/// A 64-byte memory block (plaintext or ciphertext).
///
/// # Example
///
/// ```
/// use plp_crypto::DataBlock;
///
/// let b = DataBlock::from_fill(0xab);
/// assert_eq!(b.as_bytes()[63], 0xab);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataBlock {
    #[serde(with = "crate::serde64")]
    bytes: [u8; CACHE_BLOCK_SIZE],
}

impl Default for DataBlock {
    fn default() -> Self {
        DataBlock::zeroed()
    }
}

impl DataBlock {
    /// An all-zero block.
    pub const fn zeroed() -> Self {
        DataBlock {
            bytes: [0; CACHE_BLOCK_SIZE],
        }
    }

    /// A block filled with one byte value.
    pub const fn from_fill(fill: u8) -> Self {
        DataBlock {
            bytes: [fill; CACHE_BLOCK_SIZE],
        }
    }

    /// A block from raw bytes.
    pub const fn from_bytes(bytes: [u8; CACHE_BLOCK_SIZE]) -> Self {
        DataBlock { bytes }
    }

    /// A block whose first 8 bytes hold `value` little-endian; handy for
    /// writing recognizable sentinels in tests and examples.
    pub fn from_u64(value: u64) -> Self {
        let mut bytes = [0; CACHE_BLOCK_SIZE];
        bytes[..8].copy_from_slice(&value.to_le_bytes());
        DataBlock { bytes }
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; CACHE_BLOCK_SIZE] {
        &self.bytes
    }

    /// The first 8 bytes as a little-endian word.
    pub fn as_u64(&self) -> u64 {
        // lint: allow(no-panic-lib) an 8-byte slice of a fixed-size array always converts
        u64::from_le_bytes(self.bytes[..8].try_into().expect("8 bytes"))
    }

    /// The block content as eight 64-bit words for hashing.
    pub fn words(&self) -> [u64; CACHE_BLOCK_SIZE / 8] {
        let mut words = [0u64; CACHE_BLOCK_SIZE / 8];
        for (i, chunk) in self.bytes.chunks_exact(8).enumerate() {
            // lint: allow(no-panic-lib) chunks_exact(8) yields 8-byte chunks by definition
            words[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        }
        words
    }
}

/// The counter-mode encryption engine.
///
/// # Example
///
/// ```
/// use plp_crypto::{CounterValue, CtrEngine, DataBlock, SipKey};
/// use plp_events::addr::BlockAddr;
///
/// let engine = CtrEngine::new(SipKey::new(1, 2));
/// let addr = BlockAddr::new(100);
/// let ctr = CounterValue::new(0, 1);
/// let plain = DataBlock::from_u64(0xfeed);
///
/// let cipher = engine.encrypt(plain, addr, ctr);
/// assert_ne!(cipher, plain);
/// assert_eq!(engine.decrypt(cipher, addr, ctr), plain);
/// // Decrypting with a stale counter does not recover the plaintext.
/// assert_ne!(engine.decrypt(cipher, addr, CounterValue::new(0, 0)), plain);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtrEngine {
    key: SipKey,
}

impl CtrEngine {
    /// Creates an engine, deriving an encryption-domain subkey.
    pub fn new(master: SipKey) -> Self {
        CtrEngine {
            key: master.derive("encrypt"),
        }
    }

    fn pad(&self, addr: BlockAddr, counter: CounterValue) -> [u8; CACHE_BLOCK_SIZE] {
        let mut pad = [0u8; CACHE_BLOCK_SIZE];
        for (i, chunk) in pad.chunks_exact_mut(8).enumerate() {
            let word = self
                .key
                .hash_words(&[addr.index(), counter.as_word(), i as u64]);
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        pad
    }

    /// Encrypts a plaintext block with the seed `(address, counter)`.
    pub fn encrypt(&self, plain: DataBlock, addr: BlockAddr, counter: CounterValue) -> DataBlock {
        self.xor(plain, addr, counter)
    }

    /// Decrypts a ciphertext block with the seed `(address, counter)`.
    pub fn decrypt(&self, cipher: DataBlock, addr: BlockAddr, counter: CounterValue) -> DataBlock {
        self.xor(cipher, addr, counter)
    }

    fn xor(&self, block: DataBlock, addr: BlockAddr, counter: CounterValue) -> DataBlock {
        let pad = self.pad(addr, counter);
        let mut out = *block.as_bytes();
        for (b, p) in out.iter_mut().zip(pad.iter()) {
            *b ^= p;
        }
        DataBlock::from_bytes(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> CtrEngine {
        CtrEngine::new(SipKey::new(0x1234, 0x5678))
    }

    #[test]
    fn round_trip() {
        let e = engine();
        let p = DataBlock::from_u64(0xdead_beef);
        let a = BlockAddr::new(42);
        let c = CounterValue::new(3, 9);
        assert_eq!(e.decrypt(e.encrypt(p, a, c), a, c), p);
    }

    #[test]
    fn pad_is_spatially_unique() {
        let e = engine();
        let p = DataBlock::zeroed();
        let c = CounterValue::new(0, 1);
        let c1 = e.encrypt(p, BlockAddr::new(1), c);
        let c2 = e.encrypt(p, BlockAddr::new(2), c);
        assert_ne!(c1, c2, "same pad reused across addresses");
    }

    #[test]
    fn pad_is_temporally_unique() {
        let e = engine();
        let p = DataBlock::zeroed();
        let a = BlockAddr::new(1);
        let c1 = e.encrypt(p, a, CounterValue::new(0, 1));
        let c2 = e.encrypt(p, a, CounterValue::new(0, 2));
        let c3 = e.encrypt(p, a, CounterValue::new(1, 1));
        assert_ne!(c1, c2, "same pad reused across minor counters");
        assert_ne!(c1, c3, "same pad reused across major counters");
    }

    #[test]
    fn wrong_counter_garbles() {
        let e = engine();
        let p = DataBlock::from_fill(0x5a);
        let a = BlockAddr::new(7);
        let cipher = e.encrypt(p, a, CounterValue::new(0, 5));
        assert_ne!(e.decrypt(cipher, a, CounterValue::new(0, 4)), p);
    }

    #[test]
    fn data_block_helpers() {
        let b = DataBlock::from_u64(77);
        assert_eq!(b.as_u64(), 77);
        assert_eq!(b.words()[0], 77);
        assert_eq!(b.words()[1], 0);
        assert_eq!(DataBlock::default(), DataBlock::zeroed());
        assert_eq!(DataBlock::from_fill(1).as_bytes(), &[1u8; 64]);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        // The pad is never all-zero for a realistic key.
        let e = engine();
        let p = DataBlock::from_fill(0);
        let c = e.encrypt(p, BlockAddr::new(0), CounterValue::new(0, 0));
        assert_ne!(c, p);
    }
}
