//! Stateful message authentication codes.
//!
//! Following Rogers et al. (BMT) as described in §II of the paper, each
//! data block is protected by a *stateful* MAC computed over the
//! ciphertext, the block address and the encryption counter:
//! `M = MAC_K(C, A, γ)`. Because the counter is an input and the counter
//! itself is freshness-protected by the BMT, the MAC detects spoofing
//! and splicing while the tree detects replay — so the tree only needs
//! to cover counters.

use plp_events::addr::BlockAddr;
use serde::{Deserialize, Serialize};

use crate::{CounterValue, DataBlock, SipKey};

/// A 64-bit MAC tag.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct MacTag(u64);

impl MacTag {
    /// Creates a tag from its raw value (for storage models).
    pub const fn from_raw(raw: u64) -> Self {
        MacTag(raw)
    }

    /// The raw tag value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for MacTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mac:{:016x}", self.0)
    }
}

/// The stateful-MAC engine.
///
/// # Example
///
/// ```
/// use plp_crypto::{CounterValue, DataBlock, MacEngine, SipKey};
/// use plp_events::addr::BlockAddr;
///
/// let mac = MacEngine::new(SipKey::new(7, 8));
/// let c = DataBlock::from_u64(1);
/// let a = BlockAddr::new(2);
/// let g = CounterValue::new(0, 3);
///
/// let tag = mac.compute(&c, a, g);
/// assert!(mac.verify(&c, a, g, tag));
/// // Any input change invalidates the tag.
/// assert!(!mac.verify(&c, BlockAddr::new(9), g, tag));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacEngine {
    key: SipKey,
}

impl MacEngine {
    /// Creates an engine, deriving a MAC-domain subkey.
    pub fn new(master: SipKey) -> Self {
        MacEngine {
            key: master.derive("mac"),
        }
    }

    /// Computes the stateful MAC over `(ciphertext, address, counter)`.
    pub fn compute(&self, cipher: &DataBlock, addr: BlockAddr, counter: CounterValue) -> MacTag {
        let mut words = Vec::with_capacity(10);
        words.push(addr.index());
        words.push(counter.as_word());
        words.extend_from_slice(&cipher.words());
        MacTag(self.key.hash_words(&words))
    }

    /// Verifies a stored tag against recomputation.
    pub fn verify(
        &self,
        cipher: &DataBlock,
        addr: BlockAddr,
        counter: CounterValue,
        stored: MacTag,
    ) -> bool {
        self.compute(cipher, addr, counter) == stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MacEngine, DataBlock, BlockAddr, CounterValue) {
        (
            MacEngine::new(SipKey::new(11, 22)),
            DataBlock::from_u64(0xabcd),
            BlockAddr::new(5),
            CounterValue::new(2, 7),
        )
    }

    #[test]
    fn verify_accepts_genuine() {
        let (m, c, a, g) = setup();
        let tag = m.compute(&c, a, g);
        assert!(m.verify(&c, a, g, tag));
    }

    #[test]
    fn detects_data_tamper() {
        let (m, c, a, g) = setup();
        let tag = m.compute(&c, a, g);
        let mut bytes = *c.as_bytes();
        bytes[0] ^= 1;
        assert!(!m.verify(&DataBlock::from_bytes(bytes), a, g, tag));
    }

    #[test]
    fn detects_splicing() {
        // Moving a (ciphertext, tag) pair to a different address fails:
        // the address is a MAC input.
        let (m, c, a, g) = setup();
        let tag = m.compute(&c, a, g);
        assert!(!m.verify(&c, BlockAddr::new(6), g, tag));
    }

    #[test]
    fn detects_counter_replay_at_mac_level() {
        // Replaying an old counter fails MAC verification when the MAC
        // was computed with the new counter.
        let (m, c, a, _) = setup();
        let tag_new = m.compute(&c, a, CounterValue::new(2, 8));
        assert!(!m.verify(&c, a, CounterValue::new(2, 7), tag_new));
    }

    #[test]
    fn detects_tag_tamper() {
        let (m, c, a, g) = setup();
        let tag = m.compute(&c, a, g);
        let forged = MacTag::from_raw(tag.raw() ^ 1);
        assert!(!m.verify(&c, a, g, forged));
    }

    #[test]
    fn tag_display_and_raw() {
        let t = MacTag::from_raw(0xdead);
        assert_eq!(t.raw(), 0xdead);
        assert_eq!(t.to_string(), "mac:000000000000dead");
    }

    #[test]
    fn different_keys_different_tags() {
        let (_, c, a, g) = setup();
        let m1 = MacEngine::new(SipKey::new(1, 1));
        let m2 = MacEngine::new(SipKey::new(1, 2));
        assert_ne!(m1.compute(&c, a, g), m2.compute(&c, a, g));
    }
}
