//! Functional security-metadata models for secure NVMM.
//!
//! This crate implements, from scratch, the three cryptographic
//! mechanisms the paper's secure-memory model relies on (§II):
//!
//! * **Counter-mode encryption** ([`CtrEngine`]) with the seed
//!   `(address, counter)` for spatial/temporal pad uniqueness;
//! * **Split counters** ([`CounterBlock`]) — one 64-bit major counter
//!   per 4 KiB page co-located with 64 seven-bit minor counters, with
//!   page-overflow semantics;
//! * **Stateful MACs** ([`MacEngine`]) over
//!   `(ciphertext, address, counter)`, the construction that lets a
//!   Bonsai Merkle Tree cover only counters.
//!
//! All three are built on one keyed PRF: a from-scratch, test-vector
//! verified [SipHash-2-4](SipKey) implementation. Timing (MAC latency
//! etc.) is modelled separately by the engine crates; this crate is the
//! *functional* layer that makes tampering, verification failure and
//! crash-recovery checks real rather than mocked.
//!
//! # Example: the full write-back transformation
//!
//! ```
//! use plp_crypto::{CounterBlock, CtrEngine, DataBlock, MacEngine, SipKey};
//! use plp_events::addr::BlockAddr;
//!
//! let master = SipKey::new(0xfeed, 0xbead);
//! let enc = CtrEngine::new(master);
//! let mac = MacEngine::new(master);
//!
//! let addr = BlockAddr::new(1234);
//! let mut counters = CounterBlock::new();
//!
//! // A store persists: bump the counter, encrypt, MAC.
//! let gamma = counters.bump(addr.slot_in_page()).value();
//! let plain = DataBlock::from_u64(42);
//! let cipher = enc.encrypt(plain, addr, gamma);
//! let tag = mac.compute(&cipher, addr, gamma);
//!
//! // Recovery: verify then decrypt.
//! assert!(mac.verify(&cipher, addr, gamma, tag));
//! assert_eq!(enc.decrypt(cipher, addr, gamma), plain);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod ctr;
mod mac;
mod siphash;

/// Serde helpers for 64-byte arrays (serde's derive only covers arrays
/// up to 32 elements). The functions are referenced from
/// `#[serde(with = "crate::serde64")]` attributes, which the vendored
/// stub derive does not expand — hence the dead-code allowance.
#[allow(dead_code)]
pub(crate) mod serde64 {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(bytes: &[u8; 64], s: S) -> Result<S::Ok, S::Error> {
        bytes.as_slice().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<[u8; 64], D::Error> {
        let v = Vec::<u8>::deserialize(d)?;
        v.try_into()
            .map_err(|_| serde::de::Error::custom("expected 64 bytes"))
    }
}

pub use counter::{
    CounterBlock, CounterBump, CounterValue, InvalidCounterBlock, COUNTER_BLOCK_ACCOUNTING_SIZE,
    MINOR_MAX,
};
pub use ctr::{CtrEngine, DataBlock};
pub use mac::{MacEngine, MacTag};
pub use siphash::SipKey;
