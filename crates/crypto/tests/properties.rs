//! Property-based tests for the crypto layer.

use plp_crypto::{CounterBlock, CounterValue, CtrEngine, DataBlock, MacEngine, SipKey};
use plp_events::addr::{BlockAddr, BLOCKS_PER_PAGE};
use proptest::prelude::*;

fn arb_block() -> impl Strategy<Value = DataBlock> {
    prop::array::uniform32(any::<u8>()).prop_map(|half| {
        let mut bytes = [0u8; 64];
        bytes[..32].copy_from_slice(&half);
        bytes[32..].copy_from_slice(&half);
        // Perturb the second half so blocks aren't always mirrored.
        bytes[32] ^= 0x5a;
        DataBlock::from_bytes(bytes)
    })
}

fn arb_counter() -> impl Strategy<Value = CounterValue> {
    (any::<u32>(), 0u8..=127).prop_map(|(maj, min)| CounterValue::new(maj as u64, min))
}

proptest! {
    #[test]
    fn encrypt_decrypt_round_trip(
        plain in arb_block(),
        addr in any::<u32>(),
        ctr in arb_counter(),
        k0 in any::<u64>(),
        k1 in any::<u64>(),
    ) {
        let e = CtrEngine::new(SipKey::new(k0, k1));
        let a = BlockAddr::new(addr as u64);
        let c = e.encrypt(plain, a, ctr);
        prop_assert_eq!(e.decrypt(c, a, ctr), plain);
    }

    #[test]
    fn ciphertext_depends_on_counter(
        plain in arb_block(),
        addr in any::<u32>(),
        maj in any::<u32>(),
        min in 0u8..127,
    ) {
        let e = CtrEngine::new(SipKey::new(3, 4));
        let a = BlockAddr::new(addr as u64);
        let c1 = e.encrypt(plain, a, CounterValue::new(maj as u64, min));
        let c2 = e.encrypt(plain, a, CounterValue::new(maj as u64, min + 1));
        prop_assert_ne!(c1, c2);
    }

    #[test]
    fn mac_detects_any_single_byte_flip(
        plain in arb_block(),
        addr in any::<u32>(),
        ctr in arb_counter(),
        byte_idx in 0usize..64,
        flip in 1u8..=255,
    ) {
        let m = MacEngine::new(SipKey::new(9, 9));
        let a = BlockAddr::new(addr as u64);
        let tag = m.compute(&plain, a, ctr);
        let mut tampered = *plain.as_bytes();
        tampered[byte_idx] ^= flip;
        prop_assert!(!m.verify(&DataBlock::from_bytes(tampered), a, ctr, tag));
    }

    #[test]
    fn mac_detects_counter_substitution(
        plain in arb_block(),
        addr in any::<u32>(),
        c1 in arb_counter(),
        c2 in arb_counter(),
    ) {
        prop_assume!(c1 != c2);
        let m = MacEngine::new(SipKey::new(10, 20));
        let a = BlockAddr::new(addr as u64);
        let tag = m.compute(&plain, a, c1);
        prop_assert!(!m.verify(&plain, a, c2, tag));
    }

    #[test]
    fn counter_block_wire_round_trip(bumps in prop::collection::vec(0usize..BLOCKS_PER_PAGE, 0..300)) {
        let mut cb = CounterBlock::new();
        for slot in bumps {
            cb.bump(slot);
        }
        let bytes = cb.to_bytes();
        prop_assert_eq!(CounterBlock::from_bytes(&bytes).unwrap(), cb);
    }

    #[test]
    fn counter_bump_is_fresh(bumps in prop::collection::vec(0usize..BLOCKS_PER_PAGE, 1..300)) {
        // Across any bump sequence, the (major, minor) value returned
        // for a slot never repeats — the temporal-uniqueness invariant
        // of counter-mode encryption.
        let mut cb = CounterBlock::new();
        let mut seen = std::collections::HashSet::new();
        for slot in bumps {
            let v = cb.bump(slot).value();
            prop_assert!(seen.insert((slot, v)), "counter reuse at slot {}", slot);
        }
    }

    #[test]
    fn hash_words_injective_smoke(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let k = SipKey::new(5, 6);
        prop_assert_ne!(k.hash_words(&[a]), k.hash_words(&[b]));
    }
}
