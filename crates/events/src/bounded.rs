//! Capacity-limited FIFO queues with occupancy statistics.

use std::collections::VecDeque;

use crate::Cycle;

/// A bounded FIFO queue that tracks occupancy over simulated time.
///
/// Used for the write-pending queue (WPQ) in the memory controller and
/// the NVM read/write queues. Pushing into a full queue is a modelling
/// decision for the *caller* (stall, drop, or back-pressure), so
/// [`BoundedQueue::try_push`] reports fullness instead of panicking.
///
/// Occupancy statistics are integrated over time: each push/pop records
/// the queue length weighted by how long it was held, so
/// [`BoundedQueue::mean_occupancy`] is exact.
///
/// # Example
///
/// ```
/// use plp_events::{BoundedQueue, Cycle};
///
/// let mut wpq: BoundedQueue<u32> = BoundedQueue::new(2);
/// assert!(wpq.try_push(Cycle::new(0), 1).is_ok());
/// assert!(wpq.try_push(Cycle::new(0), 2).is_ok());
/// assert!(wpq.try_push(Cycle::new(0), 3).is_err()); // full
/// assert_eq!(wpq.pop(Cycle::new(10)), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    last_change: Cycle,
    occupancy_integral: u128,
    peak: usize,
    pushes: u64,
    rejected: u64,
}

impl<T> BoundedQueue<T> {
    /// Creates an empty queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            last_change: Cycle::ZERO,
            occupancy_integral: 0,
            peak: 0,
            pushes: 0,
            rejected: 0,
        }
    }

    fn account(&mut self, now: Cycle) {
        let span = now.saturating_sub(self.last_change).get() as u128;
        self.occupancy_integral += span * self.items.len() as u128;
        self.last_change = self.last_change.max(now);
    }

    /// Attempts to enqueue `item` at time `now`.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` (handing the item back) if the queue is full.
    pub fn try_push(&mut self, now: Cycle, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.rejected += 1;
            return Err(item);
        }
        self.account(now);
        self.items.push_back(item);
        self.pushes += 1;
        self.peak = self.peak.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest item at time `now`.
    pub fn pop(&mut self, now: Cycle) -> Option<T> {
        self.account(now);
        self.items.pop_front()
    }

    /// Removes and returns the first item matching `pred`, at time `now`.
    pub fn remove_first(&mut self, now: Cycle, pred: impl FnMut(&T) -> bool) -> Option<T> {
        let idx = self.items.iter().position(pred)?;
        self.account(now);
        self.items.remove(idx)
    }

    /// Returns a reference to the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Iterates over queued items from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Mutably iterates over queued items from oldest to newest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.items.iter_mut()
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest occupancy ever observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }

    /// Number of successful pushes.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Number of rejected (queue-full) pushes.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Mean occupancy over `[0, now]`, in items.
    pub fn mean_occupancy(&mut self, now: Cycle) -> f64 {
        self.account(now);
        if now == Cycle::ZERO {
            return self.items.len() as f64;
        }
        self.occupancy_integral as f64 / now.get() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(Cycle::ZERO, i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(Cycle::ZERO), Some(i));
        }
        assert_eq!(q.pop(Cycle::ZERO), None);
    }

    #[test]
    fn rejects_when_full() {
        let mut q = BoundedQueue::new(1);
        q.try_push(Cycle::ZERO, 'a').unwrap();
        assert!(q.is_full());
        assert_eq!(q.try_push(Cycle::ZERO, 'b'), Err('b'));
        assert_eq!(q.rejected(), 1);
        q.pop(Cycle::ZERO);
        assert!(q.try_push(Cycle::ZERO, 'b').is_ok());
        assert_eq!(q.pushes(), 2);
    }

    #[test]
    fn remove_first_matching() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(Cycle::ZERO, i).unwrap();
        }
        assert_eq!(q.remove_first(Cycle::ZERO, |&x| x == 3), Some(3));
        assert_eq!(q.remove_first(Cycle::ZERO, |&x| x == 3), None);
        let rest: Vec<_> = q.iter().copied().collect();
        assert_eq!(rest, vec![0, 1, 2, 4]);
    }

    #[test]
    fn occupancy_statistics() {
        let mut q = BoundedQueue::new(4);
        // Occupancy 0 over [0,10), 1 over [10,30), 2 over [30,40).
        q.try_push(Cycle::new(10), "x").unwrap();
        q.try_push(Cycle::new(30), "y").unwrap();
        let mean = q.mean_occupancy(Cycle::new(40));
        // Integral = 0*10 + 1*20 + 2*10 = 40; mean over 40 cycles = 1.0.
        assert!((mean - 1.0).abs() < 1e-12);
        assert_eq!(q.peak_occupancy(), 2);
    }

    #[test]
    fn front_and_iter_mut() {
        let mut q = BoundedQueue::new(3);
        q.try_push(Cycle::ZERO, 1).unwrap();
        q.try_push(Cycle::ZERO, 2).unwrap();
        assert_eq!(q.front(), Some(&1));
        for v in q.iter_mut() {
            *v *= 10;
        }
        assert_eq!(q.pop(Cycle::ZERO), Some(10));
        assert_eq!(q.pop(Cycle::ZERO), Some(20));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: BoundedQueue<u8> = BoundedQueue::new(0);
    }
}
