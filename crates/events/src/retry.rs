//! The workspace's one retry/backoff policy.
//!
//! Every component that retries a failed operation — the NVM device's
//! transient-read-fault controller, the experiment harness's run
//! supervisor — shares this implementation, canonically re-exported as
//! `plp_core::retry`. A [`RetryPolicy`] describes a bounded, optionally
//! jittered exponential backoff schedule; a [`RetryToken`] seeds the
//! jitter so that the whole schedule is a pure function of
//! `(policy, token)` and nothing else. There is no entropy source
//! anywhere: re-running a retry sequence with the same token replays
//! the same delays, which is what keeps faulted runs replayable and
//! harness chaos tests byte-deterministic.
//!
//! # Example
//!
//! ```
//! use plp_events::retry::{RetryPolicy, RetryToken};
//!
//! let policy = RetryPolicy::exponential(3, 100.0).with_jitter(0.25);
//! let token = RetryToken::new(7).mix_str("gcc|scheme=o3");
//! let schedule = policy.schedule(token);
//! assert_eq!(schedule.len(), 3);
//! // Deterministic: the same token always yields the same delays.
//! assert_eq!(schedule, policy.schedule(token));
//! // Bounded: no delay exceeds the cap even with jitter applied.
//! assert!(schedule.iter().all(|&d| d <= policy.max_delay_ns * 1.25));
//! ```

/// One splitmix64 step — the deterministic stream behind jitter.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of a retry schedule's jitter: a mixed-down identity of the
/// operation being retried (e.g. a run key plus a harness seed).
///
/// Tokens are plain values; mixing is associative-enough hashing (FNV-1a
/// over strings, splitmix finalization over integers), so a token built
/// from the same parts in the same order is always the same token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryToken(u64);

impl RetryToken {
    /// A token from a bare seed.
    pub fn new(seed: u64) -> Self {
        RetryToken(seed ^ 0x52_45_54_52_59_5F_54_4B) // "RETRY_TK"
    }

    /// Folds a string (e.g. a run key) into the token, FNV-1a style.
    pub fn mix_str(self, s: &str) -> Self {
        let mut h = self.0 ^ 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        RetryToken(h)
    }

    /// Folds an integer into the token.
    pub fn mix(self, v: u64) -> Self {
        let mut state = self.0 ^ v;
        RetryToken(splitmix(&mut state))
    }

    /// The raw mixed value.
    pub fn value(self) -> u64 {
        self.0
    }
}

/// A bounded, seeded, optionally jittered exponential backoff policy.
///
/// The schedule for retry `attempt` (1-based) is
/// `min(base_delay_ns * multiplier^(attempt-1), max_delay_ns)`,
/// stretched by a deterministic jitter factor drawn from the token:
/// with jitter `j`, the final delay lies in `[d*(1-j), d*(1+j))`.
/// `max_retries` bounds how many retries a caller may take; delays are
/// in nanoseconds because the NVM timing model works in datasheet
/// nanoseconds (the harness converts to `Duration`s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retry budget after the initial attempt.
    pub max_retries: u32,
    /// Backoff before the first retry, ns.
    pub base_delay_ns: f64,
    /// Growth factor between consecutive retries.
    pub multiplier: f64,
    /// Cap applied before jitter, ns.
    pub max_delay_ns: f64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a
    /// token-seeded factor in `[1-jitter, 1+jitter)`. Zero disables
    /// jitter entirely (the schedule ignores the token).
    pub jitter: f64,
}

impl RetryPolicy {
    /// No retries at all.
    pub const fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay_ns: 0.0,
            multiplier: 1.0,
            max_delay_ns: 0.0,
            jitter: 0.0,
        }
    }

    /// A constant backoff: `max_retries` retries of `delay_ns` each —
    /// the NVM read-fault controller's shape.
    pub const fn constant(max_retries: u32, delay_ns: f64) -> Self {
        RetryPolicy {
            max_retries,
            base_delay_ns: delay_ns,
            multiplier: 1.0,
            max_delay_ns: delay_ns,
            jitter: 0.0,
        }
    }

    /// A doubling backoff starting at `base_delay_ns`, capped at 32x
    /// the base. Add jitter with [`RetryPolicy::with_jitter`].
    pub const fn exponential(max_retries: u32, base_delay_ns: f64) -> Self {
        RetryPolicy {
            max_retries,
            base_delay_ns,
            multiplier: 2.0,
            max_delay_ns: base_delay_ns * 32.0,
            jitter: 0.0,
        }
    }

    /// Sets the jitter fraction (clamped to `[0, 1]`).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Sets the pre-jitter delay cap.
    pub const fn with_max_delay_ns(mut self, max_delay_ns: f64) -> Self {
        self.max_delay_ns = max_delay_ns;
        self
    }

    /// Sets the growth factor.
    pub const fn with_multiplier(mut self, multiplier: f64) -> Self {
        self.multiplier = multiplier;
        self
    }

    /// The backoff before retry `attempt` (1-based), in nanoseconds.
    /// Attempt 0 is the initial try and waits nothing; attempts beyond
    /// `max_retries` are out of budget and also return 0 (callers stop
    /// retrying, they don't wait).
    pub fn delay_ns(&self, token: RetryToken, attempt: u32) -> f64 {
        if attempt == 0 || attempt > self.max_retries || self.base_delay_ns <= 0.0 {
            return 0.0;
        }
        let grown = self.base_delay_ns * self.multiplier.powi(attempt.saturating_sub(1) as i32);
        let clamped = grown.min(self.max_delay_ns);
        if self.jitter <= 0.0 {
            return clamped;
        }
        let mut state = token.value() ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let unit = (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        clamped * (1.0 - self.jitter + 2.0 * self.jitter * unit)
    }

    /// The whole schedule: delays before retries `1..=max_retries`.
    pub fn schedule(&self, token: RetryToken) -> Vec<f64> {
        (1..=self.max_retries).map(|a| self.delay_ns(token, a)).collect()
    }

    /// Worst-case total backoff across the whole budget, ns — what a
    /// caller commits to waiting before declaring an operation dead.
    pub fn worst_case_total_ns(&self) -> f64 {
        f64::from(self.max_retries) * self.max_delay_ns * (1.0 + self.jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_policy_is_flat_and_token_blind() {
        let p = RetryPolicy::constant(3, 100.0);
        let a = RetryToken::new(1);
        let b = RetryToken::new(2).mix_str("other");
        for attempt in 1..=3 {
            assert_eq!(p.delay_ns(a, attempt), 100.0);
            assert_eq!(p.delay_ns(b, attempt), 100.0);
        }
        assert_eq!(p.delay_ns(a, 0), 0.0);
        assert_eq!(p.delay_ns(a, 4), 0.0, "out of budget waits nothing");
    }

    #[test]
    fn exponential_growth_respects_cap() {
        let p = RetryPolicy::exponential(8, 10.0).with_max_delay_ns(50.0);
        let t = RetryToken::new(0);
        assert_eq!(p.schedule(t), vec![10.0, 20.0, 40.0, 50.0, 50.0, 50.0, 50.0, 50.0]);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::exponential(5, 100.0).with_jitter(0.5);
        let t = RetryToken::new(42).mix_str("run-key");
        let s1 = p.schedule(t);
        let s2 = p.schedule(t);
        assert_eq!(s1, s2);
        for (i, d) in s1.iter().enumerate() {
            let base = (100.0 * 2f64.powi(i as i32)).min(p.max_delay_ns);
            assert!(*d >= base * 0.5 && *d < base * 1.5, "retry {i}: {d} vs {base}");
        }
        // A different token jitters differently somewhere.
        let other = p.schedule(RetryToken::new(43).mix_str("run-key"));
        assert_ne!(s1, other);
    }

    #[test]
    fn tokens_compose_purely() {
        let a = RetryToken::new(7).mix_str("gcc").mix(3);
        let b = RetryToken::new(7).mix_str("gcc").mix(3);
        assert_eq!(a, b);
        assert_ne!(a, RetryToken::new(7).mix_str("gcc").mix(4));
        assert_ne!(a, RetryToken::new(8).mix_str("gcc").mix(3));
    }

    #[test]
    fn none_never_waits() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_retries, 0);
        assert!(p.schedule(RetryToken::new(1)).is_empty());
        assert_eq!(p.worst_case_total_ns(), 0.0);
    }
}
