//! Statistics primitives used by every simulator component.
//!
//! Components report results through three simple types: [`Counter`]
//! (monotonic event counts), [`Histogram`] (power-of-two bucketed latency
//! distributions) and [`RunningMean`] (streaming mean/min/max). All are
//! `serde`-serializable so the benchmark harness can dump raw results.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use plp_events::stats::Counter;
///
/// let mut persists = Counter::new();
/// persists.inc();
/// persists.add(2);
/// assert_eq!(persists.get(), 3);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// This counter per thousand units of `denom` (e.g. persists per
    /// kilo-instruction). Returns 0.0 when `denom` is zero.
    pub fn per_kilo(self, denom: u64) -> f64 {
        if denom == 0 {
            0.0
        } else {
            self.0 as f64 * 1000.0 / denom as f64
        }
    }
}

/// A histogram with power-of-two buckets, suitable for latency
/// distributions spanning several orders of magnitude.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 also holds
/// zero-valued samples.
///
/// # Example
///
/// ```
/// use plp_events::stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(5);
/// h.record(6);
/// h.record(100);
/// assert_eq!(h.count(), 3);
/// assert!((h.mean() - 37.0).abs() < 1e-9);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            (63 - value.leading_zeros()) as usize
        };
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples; 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample; `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample; `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))`.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// An approximate quantile (bucket upper bound containing it).
    ///
    /// `q` is clamped to `[0, 1]`. Returns `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(1u64 << (i + 1));
            }
        }
        Some(self.max)
    }
}

/// A streaming mean with min/max, for real-valued series.
///
/// # Example
///
/// ```
/// use plp_events::stats::RunningMean;
///
/// let mut m = RunningMean::new();
/// m.push(1.0);
/// m.push(3.0);
/// assert!((m.mean() - 2.0).abs() < 1e-12);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunningMean {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningMean {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean of all observations; 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation; `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Geometric mean of a slice of strictly positive values, the standard
/// summary for normalized execution times (used by every figure in the
/// paper's evaluation).
///
/// Returns `None` if the slice is empty or any value is non-positive.
///
/// # Example
///
/// ```
/// use plp_events::stats::geometric_mean;
///
/// let gm = geometric_mean(&[1.0, 4.0]).unwrap();
/// assert!((gm - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// An accumulator for simulation throughput: how much simulated work
/// (runs, simulated cycles) got done in how much host wall-clock time.
///
/// The experiment harness merges one of these per worker thread to
/// report runs/sec and simulated cycles/sec for a whole matrix.
///
/// # Example
///
/// ```
/// use plp_events::stats::Throughput;
/// use std::time::Duration;
///
/// let mut t = Throughput::new();
/// t.record(1_000_000, Duration::from_millis(250));
/// t.record(3_000_000, Duration::from_millis(750));
/// assert_eq!(t.runs(), 2);
/// assert!((t.cycles_per_sec() - 4.0e6).abs() < 1.0);
/// assert!((t.runs_per_sec() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Throughput {
    runs: u64,
    sim_cycles: u64,
    wall_nanos: u64,
}

impl Throughput {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed run: its simulated length in cycles and
    /// the host wall-clock it took.
    pub fn record(&mut self, sim_cycles: u64, wall: std::time::Duration) {
        self.runs += 1;
        self.sim_cycles += sim_cycles;
        self.wall_nanos += wall.as_nanos() as u64;
    }

    /// Folds another accumulator in (e.g. one per worker thread).
    pub fn merge(&mut self, other: Throughput) {
        self.runs += other.runs;
        self.sim_cycles += other.sim_cycles;
        self.wall_nanos += other.wall_nanos;
    }

    /// Runs recorded.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Total simulated cycles across all recorded runs.
    pub fn sim_cycles(&self) -> u64 {
        self.sim_cycles
    }

    /// Total host wall-clock across all recorded runs. For per-worker
    /// accumulators this is *CPU-side* time: merged across N busy
    /// workers it can exceed the elapsed wall-clock by up to N×.
    pub fn wall(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.wall_nanos)
    }

    /// Simulated cycles per host second (0.0 before any time accrues).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.sim_cycles as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// Runs per host second (0.0 before any time accrues).
    pub fn runs_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.runs as f64 * 1e9 / self.wall_nanos as f64
        }
    }
}

/// Throughput broken down per shard, for sharded-topology sweeps.
///
/// Keys are shard ids in a `BTreeMap`, so iteration (and any report
/// rendered from it) is deterministic regardless of recording order.
/// Unsharded runs record under shard 0 and behave exactly like a plain
/// [`Throughput`].
///
/// # Example
///
/// ```
/// use plp_events::stats::ShardedThroughput;
/// use std::time::Duration;
///
/// let mut t = ShardedThroughput::new();
/// t.record(1, 2_000, Duration::from_millis(2));
/// t.record(0, 1_000, Duration::from_millis(1));
/// let shards: Vec<u32> = t.shards().map(|(s, _)| s).collect();
/// assert_eq!(shards, [0, 1]); // deterministic key order
/// assert_eq!(t.merged().sim_cycles(), 3_000);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardedThroughput {
    per_shard: BTreeMap<u32, Throughput>,
}

impl ShardedThroughput {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed run attributed to `shard`.
    pub fn record(&mut self, shard: u32, sim_cycles: u64, wall: std::time::Duration) {
        self.per_shard
            .entry(shard)
            .or_default()
            .record(sim_cycles, wall);
    }

    /// Folds another sharded accumulator in, shard by shard.
    pub fn merge(&mut self, other: &ShardedThroughput) {
        for (&shard, t) in &other.per_shard {
            self.per_shard.entry(shard).or_default().merge(*t);
        }
    }

    /// Per-shard accumulators in ascending shard-id order.
    pub fn shards(&self) -> impl Iterator<Item = (u32, &Throughput)> {
        self.per_shard.iter().map(|(&s, t)| (s, t))
    }

    /// Number of shards with at least one recorded run.
    pub fn shard_count(&self) -> usize {
        self.per_shard.len()
    }

    /// The merged total across every shard.
    pub fn merged(&self) -> Throughput {
        let mut total = Throughput::new();
        for t in self.per_shard.values() {
            total.merge(*t);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert!((c.per_kilo(1000) - 10.0).abs() < 1e-12);
        assert_eq!(c.per_kilo(0), 0.0);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        // 0 and 1 land in bucket 0; 2 and 3 in bucket 1; 4 in bucket 2.
        assert_eq!(h.buckets(), &[2, 2, 1]);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(4));
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn histogram_mean_and_quantile() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert!((h.mean() - 25.0).abs() < 1e-12);
        // Median falls in the bucket covering 16..32 -> upper bound 32.
        assert_eq!(h.quantile(0.5), Some(32));
        assert!(h.quantile(1.0).is_some());
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn running_mean_tracks_extremes() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.min(), None);
        for v in [2.0, 8.0, 5.0] {
            m.push(v);
        }
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(8.0));
    }

    #[test]
    fn geometric_mean_edge_cases() {
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[1.0, -3.0]), None);
        let gm = geometric_mean(&[2.0, 2.0, 2.0]).unwrap();
        assert!((gm - 2.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_merges_workers() {
        use std::time::Duration;
        let mut a = Throughput::new();
        a.record(500, Duration::from_secs(1));
        let mut b = Throughput::new();
        b.record(1500, Duration::from_secs(1));
        b.record(0, Duration::from_secs(2));
        a.merge(b);
        assert_eq!(a.runs(), 3);
        assert_eq!(a.sim_cycles(), 2000);
        assert_eq!(a.wall(), Duration::from_secs(4));
        assert!((a.cycles_per_sec() - 500.0).abs() < 1e-9);
        assert!((a.runs_per_sec() - 0.75).abs() < 1e-12);
        assert_eq!(Throughput::new().cycles_per_sec(), 0.0);
    }

    #[test]
    fn sharded_throughput_orders_and_merges() {
        use std::time::Duration;
        let mut t = ShardedThroughput::new();
        t.record(3, 300, Duration::from_millis(3));
        t.record(1, 100, Duration::from_millis(1));
        t.record(1, 100, Duration::from_millis(1));
        let mut u = ShardedThroughput::new();
        u.record(0, 50, Duration::from_millis(5));
        u.record(3, 300, Duration::from_millis(3));
        t.merge(&u);
        let shards: Vec<(u32, u64)> = t.shards().map(|(s, tp)| (s, tp.runs())).collect();
        assert_eq!(shards, [(0, 1), (1, 2), (3, 2)]);
        assert_eq!(t.shard_count(), 3);
        let merged = t.merged();
        assert_eq!(merged.runs(), 5);
        assert_eq!(merged.sim_cycles(), 850);
        assert_eq!(merged.wall(), Duration::from_millis(13));
    }
}
