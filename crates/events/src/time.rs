//! Simulated time: the [`Cycle`] clock type and [`Freq`] conversions.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, counted in processor clock cycles.
///
/// `Cycle` is also used for durations: the difference of two `Cycle`
/// values is a `Cycle`. All arithmetic is checked in debug builds and
/// saturating helpers are provided for the places where the simulator
/// computes slack.
///
/// # Example
///
/// ```
/// use plp_events::Cycle;
///
/// let start = Cycle::new(100);
/// let end = start + Cycle::new(40);
/// assert_eq!(end.get(), 140);
/// assert_eq!(end - start, Cycle::new(40));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);
    /// The largest representable time; used as "never".
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a cycle count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Subtracts, clamping at zero instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, other: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(other.0))
    }

    /// Adds, clamping at [`Cycle::MAX`] instead of overflowing.
    #[inline]
    pub fn saturating_add(self, other: Cycle) -> Cycle {
        Cycle(self.0.saturating_add(other.0))
    }

    /// Multiplies a duration by an integer factor.
    #[inline]
    pub fn scaled(self, factor: u64) -> Cycle {
        Cycle(self.0 * factor)
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        iter.fold(Cycle::ZERO, Add::add)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> u64 {
        c.0
    }
}

/// A clock frequency, used to convert wall-clock device timings
/// (nanoseconds, as NVM datasheets specify them) into processor cycles.
///
/// # Example
///
/// ```
/// use plp_events::Freq;
///
/// let cpu = Freq::ghz(4.0);
/// // A 150 ns NVM write occupies 600 CPU cycles at 4 GHz.
/// assert_eq!(cpu.cycles_for_ns(150.0).get(), 600);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Freq {
    hz: f64,
}

impl Freq {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive and finite.
    pub fn hz(hz: f64) -> Self {
        assert!(hz.is_finite() && hz > 0.0, "frequency must be positive");
        Freq { hz }
    }

    /// Creates a frequency from megahertz.
    pub fn mhz(mhz: f64) -> Self {
        Freq::hz(mhz * 1.0e6)
    }

    /// Creates a frequency from gigahertz.
    pub fn ghz(ghz: f64) -> Self {
        Freq::hz(ghz * 1.0e9)
    }

    /// Returns the frequency in hertz.
    pub fn as_hz(self) -> f64 {
        self.hz
    }

    /// Converts a duration in nanoseconds to clock cycles at this
    /// frequency, rounding up (a partially-used cycle is still busy).
    pub fn cycles_for_ns(self, ns: f64) -> Cycle {
        // Tolerate float noise: 12.5ns at 4GHz is exactly 50 cycles and
        // must not ceil to 51 because of a 1-ulp error in the product.
        let exact = ns * 1.0e-9 * self.hz;
        let rounded = exact.round();
        let cycles = if (exact - rounded).abs() < 1.0e-6 {
            rounded
        } else {
            exact.ceil()
        };
        Cycle::new(cycles as u64)
    }

    /// Converts a cycle count at this frequency to nanoseconds.
    pub fn ns_for_cycles(self, cycles: Cycle) -> f64 {
        cycles.get() as f64 / self.hz * 1.0e9
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hz >= 1.0e9 {
            write!(f, "{:.2}GHz", self.hz / 1.0e9)
        } else {
            write!(f, "{:.0}MHz", self.hz / 1.0e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle::new(10);
        let b = Cycle::new(4);
        assert_eq!((a + b).get(), 14);
        assert_eq!((a - b).get(), 6);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(b.saturating_sub(a), Cycle::ZERO);
        assert_eq!(Cycle::MAX.saturating_add(a), Cycle::MAX);
        assert_eq!(b.scaled(3).get(), 12);
    }

    #[test]
    fn cycle_assign_ops() {
        let mut c = Cycle::new(5);
        c += Cycle::new(5);
        assert_eq!(c.get(), 10);
        c -= Cycle::new(3);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn cycle_sum_and_conversions() {
        let total: Cycle = [1u64, 2, 3].into_iter().map(Cycle::new).sum();
        assert_eq!(total, Cycle::new(6));
        assert_eq!(u64::from(Cycle::from(9u64)), 9);
    }

    #[test]
    fn cycle_display() {
        assert_eq!(Cycle::new(42).to_string(), "42cy");
    }

    #[test]
    fn freq_conversions_round_up() {
        let f = Freq::ghz(4.0);
        // 12.5 ns at 4 GHz is exactly 50 cycles.
        assert_eq!(f.cycles_for_ns(12.5).get(), 50);
        // 12.6 ns must round *up* to 51 cycles.
        assert_eq!(f.cycles_for_ns(12.6).get(), 51);
        let ns = f.ns_for_cycles(Cycle::new(600));
        assert!((ns - 150.0).abs() < 1e-9);
    }

    #[test]
    fn freq_display_and_accessors() {
        assert_eq!(Freq::ghz(4.0).to_string(), "4.00GHz");
        assert_eq!(Freq::mhz(1200.0).to_string(), "1.20GHz");
        assert_eq!(Freq::mhz(800.0).to_string(), "800MHz");
        assert!((Freq::mhz(1200.0).as_hz() - 1.2e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn freq_rejects_zero() {
        let _ = Freq::hz(0.0);
    }
}
