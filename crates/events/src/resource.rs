//! Occupancy models for hardware resources.

use serde::{Deserialize, Serialize};

use crate::Cycle;

/// A single-server resource that serves one request at a time.
///
/// `BusyResource` models structures like a non-pipelined hash unit or a
/// memory bank: a request arriving at `now` starts at
/// `max(now, free_at)`, occupies the resource for its service time, and
/// leaves the resource busy until it finishes.
///
/// # Example
///
/// ```
/// use plp_events::{BusyResource, Cycle};
///
/// let mut mac_unit = BusyResource::new();
/// // First MAC starts immediately and finishes at cycle 40.
/// assert_eq!(mac_unit.reserve(Cycle::new(0), Cycle::new(40)), Cycle::new(40));
/// // A request arriving at cycle 10 must wait until cycle 40.
/// assert_eq!(mac_unit.reserve(Cycle::new(10), Cycle::new(40)), Cycle::new(80));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusyResource {
    free_at: Cycle,
    busy_cycles: Cycle,
    served: u64,
}

impl BusyResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the resource for `service` cycles starting no earlier
    /// than `now`, returning the completion time.
    pub fn reserve(&mut self, now: Cycle, service: Cycle) -> Cycle {
        let start = now.max(self.free_at);
        let done = start + service;
        self.free_at = done;
        self.busy_cycles += service;
        self.served += 1;
        done
    }

    /// The earliest time a new request could start service.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Whether the resource is idle at `now`.
    pub fn is_idle_at(&self, now: Cycle) -> bool {
        self.free_at <= now
    }

    /// Total cycles spent serving requests.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy_cycles
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

/// A pipelined unit with an initiation interval shorter than its latency.
///
/// Models structures like a pipelined MAC engine: a new operation can be
/// *issued* every `initiation_interval` cycles, and each operation
/// completes `latency` cycles after it issues. The paper's out-of-order
/// BMT update engine relies on exactly this property ("with OOO, a BMT
/// update can start at every cycle", §IV-B1).
///
/// # Example
///
/// ```
/// use plp_events::{Cycle, PipelinedUnit};
///
/// // 40-cycle latency, one issue per cycle.
/// let mut unit = PipelinedUnit::new(Cycle::new(40), Cycle::new(1));
/// assert_eq!(unit.issue(Cycle::new(0)), Cycle::new(40));
/// assert_eq!(unit.issue(Cycle::new(0)), Cycle::new(41)); // issues at cycle 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelinedUnit {
    latency: Cycle,
    initiation_interval: Cycle,
    next_issue: Cycle,
    issued: u64,
}

impl PipelinedUnit {
    /// Creates a pipelined unit.
    ///
    /// # Panics
    ///
    /// Panics if `initiation_interval` is zero (a unit must take at
    /// least one cycle between issues).
    pub fn new(latency: Cycle, initiation_interval: Cycle) -> Self {
        assert!(
            initiation_interval > Cycle::ZERO,
            "initiation interval must be at least one cycle"
        );
        PipelinedUnit {
            latency,
            initiation_interval,
            next_issue: Cycle::ZERO,
            issued: 0,
        }
    }

    /// Issues an operation at the earliest slot at or after `now`,
    /// returning its completion time.
    pub fn issue(&mut self, now: Cycle) -> Cycle {
        let start = now.max(self.next_issue);
        self.next_issue = start + self.initiation_interval;
        self.issued += 1;
        start + self.latency
    }

    /// The operation latency.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// The initiation interval.
    pub fn initiation_interval(&self) -> Cycle {
        self.initiation_interval
    }

    /// The earliest cycle at which the next operation may issue.
    pub fn next_issue_at(&self) -> Cycle {
        self.next_issue
    }

    /// Number of operations issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_resource_serializes_requests() {
        let mut r = BusyResource::new();
        let s = Cycle::new(80);
        assert_eq!(r.reserve(Cycle::new(0), s), Cycle::new(80));
        assert_eq!(r.reserve(Cycle::new(0), s), Cycle::new(160));
        assert_eq!(r.reserve(Cycle::new(500), s), Cycle::new(580));
        assert_eq!(r.served(), 3);
        assert_eq!(r.busy_cycles(), Cycle::new(240));
    }

    #[test]
    fn busy_resource_idle_gap() {
        let mut r = BusyResource::new();
        r.reserve(Cycle::new(0), Cycle::new(10));
        assert!(!r.is_idle_at(Cycle::new(5)));
        assert!(r.is_idle_at(Cycle::new(10)));
        assert_eq!(r.free_at(), Cycle::new(10));
    }

    #[test]
    fn pipelined_unit_throughput() {
        let mut u = PipelinedUnit::new(Cycle::new(40), Cycle::new(1));
        // Ten back-to-back issues at cycle 0 complete at 40..=49, not
        // 40, 80, ... — that is the whole point of pipelining.
        for i in 0..10u64 {
            assert_eq!(u.issue(Cycle::ZERO), Cycle::new(40 + i));
        }
        assert_eq!(u.issued(), 10);
    }

    #[test]
    fn pipelined_unit_respects_now() {
        let mut u = PipelinedUnit::new(Cycle::new(40), Cycle::new(4));
        assert_eq!(u.issue(Cycle::new(100)), Cycle::new(140));
        assert_eq!(u.next_issue_at(), Cycle::new(104));
        // Arriving later than next_issue: starts at arrival.
        assert_eq!(u.issue(Cycle::new(200)), Cycle::new(240));
        assert_eq!(u.latency(), Cycle::new(40));
        assert_eq!(u.initiation_interval(), Cycle::new(4));
    }

    #[test]
    fn unpipelined_equivalence() {
        // initiation interval == latency behaves like BusyResource.
        let mut u = PipelinedUnit::new(Cycle::new(40), Cycle::new(40));
        let mut b = BusyResource::new();
        for now in [0u64, 0, 10, 95, 300] {
            let now = Cycle::new(now);
            assert_eq!(u.issue(now), b.reserve(now, Cycle::new(40)));
        }
    }

    #[test]
    #[should_panic(expected = "initiation interval")]
    fn zero_initiation_interval_rejected() {
        let _ = PipelinedUnit::new(Cycle::new(40), Cycle::ZERO);
    }
}
