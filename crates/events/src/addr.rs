//! Shared simulated-machine address types.
//!
//! Every crate in the workspace reasons about 64-byte cache blocks and
//! 4 KiB pages (the paper's encryption-page granularity), so the address
//! newtypes live here in the base crate.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Size of a cache block / memory block in bytes.
pub const CACHE_BLOCK_SIZE: usize = 64;
/// Size of an encryption page in bytes (one split-counter block covers
/// one page).
pub const PAGE_SIZE: usize = 4096;
/// Number of cache blocks per encryption page.
pub const BLOCKS_PER_PAGE: usize = PAGE_SIZE / CACHE_BLOCK_SIZE;

/// The address of a 64-byte memory block, stored as a block *index*
/// (byte address divided by [`CACHE_BLOCK_SIZE`]).
///
/// # Example
///
/// ```
/// use plp_events::addr::{BlockAddr, BLOCKS_PER_PAGE};
///
/// let a = BlockAddr::from_byte_addr(0x1040);
/// assert_eq!(a.index(), 0x41);
/// assert_eq!(a.byte_addr(), 0x1040);
/// assert_eq!(a.page().index(), 0x41 / BLOCKS_PER_PAGE as u64);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a block index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        BlockAddr(index)
    }

    /// Creates a block address from a byte address (truncating to the
    /// containing block).
    #[inline]
    pub const fn from_byte_addr(byte: u64) -> Self {
        BlockAddr(byte / CACHE_BLOCK_SIZE as u64)
    }

    /// The block index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The byte address of the start of the block.
    #[inline]
    pub const fn byte_addr(self) -> u64 {
        self.0 * CACHE_BLOCK_SIZE as u64
    }

    /// The encryption page containing this block.
    #[inline]
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 / BLOCKS_PER_PAGE as u64)
    }

    /// The block's slot within its page, in `0..BLOCKS_PER_PAGE`.
    #[inline]
    pub const fn slot_in_page(self) -> usize {
        (self.0 % BLOCKS_PER_PAGE as u64) as usize
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.byte_addr())
    }
}

/// The address of a 4 KiB encryption page, stored as a page index.
///
/// One split-counter block (and therefore one BMT leaf) covers one page.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page address from a page index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        PageAddr(index)
    }

    /// The page index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The first block of this page.
    #[inline]
    pub const fn first_block(self) -> BlockAddr {
        BlockAddr(self.0 * BLOCKS_PER_PAGE as u64)
    }

    /// The block at `slot` within this page.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= BLOCKS_PER_PAGE`.
    #[inline]
    pub fn block(self, slot: usize) -> BlockAddr {
        assert!(slot < BLOCKS_PER_PAGE, "slot {slot} out of page range");
        BlockAddr(self.0 * BLOCKS_PER_PAGE as u64 + slot as u64)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{:#x}", self.0 * PAGE_SIZE as u64)
    }
}

/// Partitions the physical block address space across `shards` memory
/// controllers, page-granular so a split-counter block (one per 4 KiB
/// page) never straddles two shards.
///
/// Pages are dealt round-robin: page `p` belongs to shard
/// `p % shards`, and becomes local page `p / shards` there. With one
/// shard the map is the identity, so an unsharded run sees exactly the
/// addresses it always did.
///
/// # Example
///
/// ```
/// use plp_events::addr::{BlockAddr, ShardMap};
///
/// let map = ShardMap::new(4);
/// let a = BlockAddr::new(5 * 64 + 3); // page 5, slot 3
/// let (shard, local) = map.localize(a);
/// assert_eq!(shard, 1); // page 5 % 4
/// assert_eq!(local.page().index(), 1); // page 5 / 4
/// assert_eq!(local.slot_in_page(), 3);
/// assert_eq!(map.globalize(shard, local), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    shards: u32,
}

impl ShardMap {
    /// Creates a partitioner over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: u32) -> Self {
        assert!(shards >= 1, "shard map needs at least one shard");
        ShardMap { shards }
    }

    /// Number of shards in the partition.
    #[inline]
    pub const fn shards(self) -> u32 {
        self.shards
    }

    /// The shard owning `addr`'s page.
    #[inline]
    pub fn shard_of(self, addr: BlockAddr) -> u32 {
        (addr.page().index() % self.shards as u64) as u32
    }

    /// Maps a global block address to `(owning shard, shard-local
    /// address)`. The local address preserves the block's slot within
    /// its page, so per-page structures (counters, BMT leaves) keep
    /// their geometry inside each shard.
    #[inline]
    pub fn localize(self, addr: BlockAddr) -> (u32, BlockAddr) {
        let shard = self.shard_of(addr);
        let local_page = addr.page().index() / self.shards as u64;
        let local = BlockAddr::new(local_page * BLOCKS_PER_PAGE as u64 + addr.slot_in_page() as u64);
        (shard, local)
    }

    /// Inverse of [`localize`](Self::localize): reconstructs the global
    /// address from a shard id and a shard-local address.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[inline]
    pub fn globalize(self, shard: u32, local: BlockAddr) -> BlockAddr {
        assert!(shard < self.shards, "shard {shard} out of range");
        let global_page = local.page().index() * self.shards as u64 + shard as u64;
        BlockAddr::new(global_page * BLOCKS_PER_PAGE as u64 + local.slot_in_page() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_round_trips() {
        let a = BlockAddr::new(123);
        assert_eq!(BlockAddr::from_byte_addr(a.byte_addr()), a);
        assert_eq!(a.byte_addr(), 123 * 64);
    }

    #[test]
    fn byte_addr_truncates_into_block() {
        assert_eq!(BlockAddr::from_byte_addr(63).index(), 0);
        assert_eq!(BlockAddr::from_byte_addr(64).index(), 1);
        assert_eq!(BlockAddr::from_byte_addr(127).index(), 1);
    }

    #[test]
    fn page_relationships() {
        let p = PageAddr::new(5);
        assert_eq!(p.first_block().index(), 5 * 64);
        assert_eq!(p.block(63).index(), 5 * 64 + 63);
        assert_eq!(p.block(63).page(), p);
        assert_eq!(p.block(0).slot_in_page(), 0);
        assert_eq!(p.block(63).slot_in_page(), 63);
    }

    #[test]
    #[should_panic(expected = "out of page range")]
    fn page_block_bounds_checked() {
        let _ = PageAddr::new(0).block(64);
    }

    #[test]
    fn display_formats() {
        assert_eq!(BlockAddr::new(1).to_string(), "blk:0x40");
        assert_eq!(PageAddr::new(1).to_string(), "page:0x1000");
    }

    #[test]
    fn constants_consistent() {
        assert_eq!(BLOCKS_PER_PAGE, 64);
        assert_eq!(CACHE_BLOCK_SIZE * BLOCKS_PER_PAGE, PAGE_SIZE);
    }

    #[test]
    fn shard_map_single_shard_is_identity() {
        let map = ShardMap::new(1);
        for idx in [0u64, 1, 63, 64, 12345, 0x1_0000 * 64 + 17] {
            let a = BlockAddr::new(idx);
            assert_eq!(map.shard_of(a), 0);
            assert_eq!(map.localize(a), (0, a));
            assert_eq!(map.globalize(0, a), a);
        }
    }

    #[test]
    fn shard_map_round_trips() {
        for shards in [1u32, 2, 3, 4, 8] {
            let map = ShardMap::new(shards);
            for idx in 0..(shards as u64 * BLOCKS_PER_PAGE as u64 * 3 + 7) {
                let a = BlockAddr::new(idx);
                let (shard, local) = map.localize(a);
                assert!(shard < shards);
                assert_eq!(map.globalize(shard, local), a);
            }
        }
    }

    #[test]
    fn shard_map_keeps_pages_whole() {
        let map = ShardMap::new(4);
        let page = PageAddr::new(9);
        let owner = map.shard_of(page.first_block());
        for slot in 0..BLOCKS_PER_PAGE {
            let (shard, local) = map.localize(page.block(slot));
            assert_eq!(shard, owner);
            assert_eq!(local.slot_in_page(), slot);
        }
    }

    #[test]
    fn shard_map_compacts_local_pages() {
        // Round-robin dealing: consecutive global pages on one shard
        // become consecutive local pages, so each shard's footprint is
        // dense regardless of shard count.
        let map = ShardMap::new(4);
        let (s0, l0) = map.localize(PageAddr::new(2).first_block());
        let (s1, l1) = map.localize(PageAddr::new(6).first_block());
        assert_eq!(s0, s1);
        assert_eq!(l0.page().index(), 0);
        assert_eq!(l1.page().index(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn shard_map_rejects_zero() {
        let _ = ShardMap::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_map_globalize_bounds_checked() {
        let _ = ShardMap::new(2).globalize(2, BlockAddr::new(0));
    }
}
