//! Shared simulated-machine address types.
//!
//! Every crate in the workspace reasons about 64-byte cache blocks and
//! 4 KiB pages (the paper's encryption-page granularity), so the address
//! newtypes live here in the base crate.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Size of a cache block / memory block in bytes.
pub const CACHE_BLOCK_SIZE: usize = 64;
/// Size of an encryption page in bytes (one split-counter block covers
/// one page).
pub const PAGE_SIZE: usize = 4096;
/// Number of cache blocks per encryption page.
pub const BLOCKS_PER_PAGE: usize = PAGE_SIZE / CACHE_BLOCK_SIZE;

/// The address of a 64-byte memory block, stored as a block *index*
/// (byte address divided by [`CACHE_BLOCK_SIZE`]).
///
/// # Example
///
/// ```
/// use plp_events::addr::{BlockAddr, BLOCKS_PER_PAGE};
///
/// let a = BlockAddr::from_byte_addr(0x1040);
/// assert_eq!(a.index(), 0x41);
/// assert_eq!(a.byte_addr(), 0x1040);
/// assert_eq!(a.page().index(), 0x41 / BLOCKS_PER_PAGE as u64);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a block index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        BlockAddr(index)
    }

    /// Creates a block address from a byte address (truncating to the
    /// containing block).
    #[inline]
    pub const fn from_byte_addr(byte: u64) -> Self {
        BlockAddr(byte / CACHE_BLOCK_SIZE as u64)
    }

    /// The block index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The byte address of the start of the block.
    #[inline]
    pub const fn byte_addr(self) -> u64 {
        self.0 * CACHE_BLOCK_SIZE as u64
    }

    /// The encryption page containing this block.
    #[inline]
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 / BLOCKS_PER_PAGE as u64)
    }

    /// The block's slot within its page, in `0..BLOCKS_PER_PAGE`.
    #[inline]
    pub const fn slot_in_page(self) -> usize {
        (self.0 % BLOCKS_PER_PAGE as u64) as usize
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.byte_addr())
    }
}

/// The address of a 4 KiB encryption page, stored as a page index.
///
/// One split-counter block (and therefore one BMT leaf) covers one page.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page address from a page index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        PageAddr(index)
    }

    /// The page index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The first block of this page.
    #[inline]
    pub const fn first_block(self) -> BlockAddr {
        BlockAddr(self.0 * BLOCKS_PER_PAGE as u64)
    }

    /// The block at `slot` within this page.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= BLOCKS_PER_PAGE`.
    #[inline]
    pub fn block(self, slot: usize) -> BlockAddr {
        assert!(slot < BLOCKS_PER_PAGE, "slot {slot} out of page range");
        BlockAddr(self.0 * BLOCKS_PER_PAGE as u64 + slot as u64)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{:#x}", self.0 * PAGE_SIZE as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_round_trips() {
        let a = BlockAddr::new(123);
        assert_eq!(BlockAddr::from_byte_addr(a.byte_addr()), a);
        assert_eq!(a.byte_addr(), 123 * 64);
    }

    #[test]
    fn byte_addr_truncates_into_block() {
        assert_eq!(BlockAddr::from_byte_addr(63).index(), 0);
        assert_eq!(BlockAddr::from_byte_addr(64).index(), 1);
        assert_eq!(BlockAddr::from_byte_addr(127).index(), 1);
    }

    #[test]
    fn page_relationships() {
        let p = PageAddr::new(5);
        assert_eq!(p.first_block().index(), 5 * 64);
        assert_eq!(p.block(63).index(), 5 * 64 + 63);
        assert_eq!(p.block(63).page(), p);
        assert_eq!(p.block(0).slot_in_page(), 0);
        assert_eq!(p.block(63).slot_in_page(), 63);
    }

    #[test]
    #[should_panic(expected = "out of page range")]
    fn page_block_bounds_checked() {
        let _ = PageAddr::new(0).block(64);
    }

    #[test]
    fn display_formats() {
        assert_eq!(BlockAddr::new(1).to_string(), "blk:0x40");
        assert_eq!(PageAddr::new(1).to_string(), "page:0x1000");
    }

    #[test]
    fn constants_consistent() {
        assert_eq!(BLOCKS_PER_PAGE, 64);
        assert_eq!(CACHE_BLOCK_SIZE * BLOCKS_PER_PAGE, PAGE_SIZE);
    }
}
