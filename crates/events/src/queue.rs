//! The deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A time-ordered event queue with deterministic tie-breaking.
///
/// Events popped from the queue come out in non-decreasing time order;
/// events scheduled for the *same* cycle come out in the order they were
/// pushed (FIFO). This guarantee is what makes whole-simulation runs
/// reproducible bit-for-bit.
///
/// The payload type `E` needs no ordering of its own.
///
/// # Example
///
/// ```
/// use plp_events::{Cycle, EventQueue};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Fetch, Retire }
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(3), Ev::Retire);
/// q.push(Cycle::new(1), Ev::Fetch);
/// assert_eq!(q.pop(), Some((Cycle::new(1), Ev::Fetch)));
/// assert_eq!(q.peek_time(), Some(Cycle::new(3)));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so that the earliest time (and
        // for equal times, the lowest sequence number) is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty event queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: Cycle, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event only if it fires at or
    /// before `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, E)> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(7), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(5), "early");
        q.push(Cycle::new(15), "late");
        assert_eq!(q.pop_due(Cycle::new(4)), None);
        assert_eq!(q.pop_due(Cycle::new(5)), Some((Cycle::new(5), "early")));
        assert_eq!(q.pop_due(Cycle::new(10)), None);
        assert_eq!(q.pop_due(Cycle::new(20)), Some((Cycle::new(15), "late")));
    }

    #[test]
    fn len_empty_clear() {
        let mut q = EventQueue::default();
        assert!(q.is_empty());
        q.push(Cycle::ZERO, ());
        q.push(Cycle::ZERO, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), 'a');
        q.push(Cycle::new(5), 'b');
        assert_eq!(q.pop(), Some((Cycle::new(5), 'b')));
        q.push(Cycle::new(7), 'c');
        q.push(Cycle::new(6), 'd');
        assert_eq!(q.pop(), Some((Cycle::new(6), 'd')));
        assert_eq!(q.pop(), Some((Cycle::new(7), 'c')));
        assert_eq!(q.pop(), Some((Cycle::new(10), 'a')));
    }
}
