//! Deterministic discrete-event simulation kernel for the PLP simulator.
//!
//! This crate provides the time base and scheduling primitives shared by
//! every timing model in the workspace:
//!
//! * [`Cycle`] — the simulated clock, a strongly-typed `u64` cycle count;
//! * [`EventQueue`] — a time-ordered queue with deterministic FIFO
//!   tie-breaking for events scheduled at the same cycle;
//! * [`BusyResource`] and [`PipelinedUnit`] — occupancy models for
//!   single-server resources (e.g. a MAC unit) and pipelined units
//!   (initiation interval < latency);
//! * [`BoundedQueue`] — a capacity-limited FIFO with occupancy statistics,
//!   used for write-pending queues and memory-controller queues;
//! * [`stats`] — counters, histograms and running means used by every
//!   component to report results.
//!
//! The kernel is deliberately single-threaded and allocation-light: the
//! PLP experiments sweep many configurations and benchmarks, so
//! simulation determinism (bit-identical results for identical seeds)
//! matters more than parallel speed.
//!
//! # Example
//!
//! ```
//! use plp_events::{Cycle, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.push(Cycle::new(10), "b");
//! q.push(Cycle::new(5), "a");
//! q.push(Cycle::new(10), "c"); // same time as "b": FIFO order preserved
//!
//! assert_eq!(q.pop(), Some((Cycle::new(5), "a")));
//! assert_eq!(q.pop(), Some((Cycle::new(10), "b")));
//! assert_eq!(q.pop(), Some((Cycle::new(10), "c")));
//! assert_eq!(q.pop(), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
mod bounded;
mod queue;
mod resource;
pub mod retry;
pub mod stats;
mod time;

pub use bounded::BoundedQueue;
pub use queue::EventQueue;
pub use resource::{BusyResource, PipelinedUnit};
pub use time::{Cycle, Freq};
